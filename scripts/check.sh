#!/usr/bin/env bash
# CI-friendly smoke check: tier-1 tests plus one tiny end-to-end figure run.
#
# Usage:  scripts/check.sh        (or: make check)
#
# Completes in well under a minute on a laptop.  The figure run uses the
# smoke preset (a few training episodes on a 6-node topology) and bypasses
# the result cache so the full train -> evaluate -> figure path executes.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> tier-1 tests"
# With pytest-cov installed (CI installs it; it is optional locally), the
# same run enforces a line-coverage floor on the vectorized core and the
# substrate layer.  85% sits safely under the ~90% the tier-1 suite
# measures; src/repro/core/subproc.py reads lower than reality because
# forked-worker lines execute in child processes.
COV_ARGS=()
if python -c "import pytest_cov" >/dev/null 2>&1; then
    echo "    (pytest-cov found: enforcing >= 85% coverage on core/ + substrate/)"
    COV_ARGS=(--cov=repro.core --cov=repro.substrate
              --cov-report=term --cov-fail-under=85)
else
    echo "    (pytest-cov not installed: coverage floor skipped)"
fi
python -m pytest -x -q ${COV_ARGS[@]+"${COV_ARGS[@]}"}

echo "==> env-core perf smoke (vectorized vs per-query reference)"
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_envstep.py --smoke

echo "==> vec-env training-loop perf smoke (K=16 lanes vs serial trainer)"
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_vecenv.py --smoke

echo "==> batched policy-eval perf smoke (vectorized baselines vs per-request reference)"
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_policyeval.py --smoke

echo "==> subproc-env smoke (2 shared-memory workers vs sync, bitwise equivalence)"
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_subproc.py --smoke --workers 2

echo "==> serving-loop smoke (graceful degradation under 4x MMPP overload)"
PYTHONPATH="src:.${PYTHONPATH:+:$PYTHONPATH}" python benchmarks/bench_serving.py --smoke

echo "==> reprolint (project-contract static analysis, all rules enabled)"
# One invocation both gates the tree and refreshes the committed
# machine-readable payload that the schema gate below validates.  --cache
# skips unchanged files (content-hashed; output stays byte-identical to a
# cold run) and --format github surfaces findings as PR annotations when
# this script runs inside a workflow.
python -m repro.analysis src benchmarks tests \
    --cache --format github \
    --output benchmarks/results/reprolint.json

echo "==> committed benchmark-result schema gate"
python scripts/check_results_schema.py

echo "==> end-to-end smoke figure (training convergence, smoke preset)"
REPRO_NO_CACHE=1 python - <<'EOF'
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure_training_convergence

data = figure_training_convergence(ExperimentConfig.smoke())
episodes = len(data["x"])
assert episodes > 0 and len(data["series"]["episode_reward"]) == episodes
print(f"figure {data['figure']}: {episodes} training episodes, "
      f"final acceptance {data['series']['acceptance_ratio'][-1]:.2f}")
EOF

echo "==> OK"
