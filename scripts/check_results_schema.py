#!/usr/bin/env python
"""Schema gate for the committed benchmark result JSONs.

Every file under ``benchmarks/results/*.json`` is a committed artifact that
downstream plotting consumes; a benchmark change that silently drops a
required key would only surface when someone tries to plot.  This script
fails CI when any committed payload is stale-schema (missing required keys).

Usage::

    python scripts/check_results_schema.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"

#: Required top-level keys per engineering-benchmark payload.
ENGINEERING_SCHEMAS = {
    "hotpath.json": {"dqn_update", "replay_sampling"},
    "envstep.json": {"config", "env_step", "latency_lookups"},
    "vecenv.json": {
        "config",
        "env_steps",
        "training_loop",
        "speedups",
        "decomposition",
    },
    "policyeval.json": {
        "config",
        "decision_throughput",
        "aggregate_decision_speedup",
        "sweep_eval",
    },
    "subproc.json": {"config", "sync", "subproc", "speedups", "speedup_bar"},
    "serving.json": {"smoke", "soak"},
    # reprolint's committed JSON report (refreshed by scripts/check.sh).
    "reprolint.json": {
        "schema_version",
        "tool",
        "rules_enabled",
        "paths_scanned",
        "findings",
        "summary",
    },
}

#: Required keys of the reprolint payload's summary section (schema v2:
#: per-rule counts and the incremental-cache section joined in).
REPROLINT_SUMMARY_KEYS = {
    "files",
    "findings",
    "suppressed",
    "clean",
    "by_rule",
    "cache",
}

#: Required keys of summary.cache (hit/miss detail deliberately excluded —
#: it would differ between cold and warm runs of the same tree).
REPROLINT_CACHE_KEYS = {"enabled", "files"}

#: Minimum reprolint JSON schema version the gate understands.
REPROLINT_MIN_SCHEMA_VERSION = 2

#: Required nested keys of the vecenv payload's lean-step extensions: the
#: per-protocol cost-model fits plus the lean stepping series themselves.
VECENV_DECOMPOSITION_KEYS = {
    "model",
    "per_lane_us_bar",
    "full",
    "lean",
    "core",
    "kernel_timings_k64",
}
VECENV_ENV_STEPS_KEYS = {
    "reference",
    "soa",
    "soa_steady_state",
    "soa_steady_state_lean",
    "soa_scaling",
    "soa_scaling_full",
}

#: Required keys of every figure payload (``fig*.json`` / ``ablation*.json``).
FIGURE_KEYS = {"figure", "x_label", "y_label", "x", "series"}

#: Required keys of every table payload (``table*.json``).
TABLE_KEYS = {"table"}


def check_file(path: Path) -> list:
    """Return a list of problems found in one payload (empty when clean)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if path.name in ENGINEERING_SCHEMAS:
        required = ENGINEERING_SCHEMAS[path.name]
    elif path.name.startswith(("fig", "ablation")):
        required = FIGURE_KEYS
    elif path.name.startswith("table"):
        required = TABLE_KEYS
    else:
        return []  # unknown artifacts are not gated
    missing = sorted(required - set(payload))
    if missing:
        return [f"{path.name}: missing required keys {missing}"]
    problems = []
    if path.name == "reprolint.json":
        summary_missing = sorted(REPROLINT_SUMMARY_KEYS - set(payload["summary"]))
        if summary_missing:
            problems.append(
                f"{path.name}: summary missing keys {summary_missing}"
            )
        # A committed lint report with findings means the tree was shipped
        # dirty (or the artifact is stale): both are gate failures.
        elif not payload["summary"]["clean"]:
            problems.append(
                f"{path.name}: committed report is not clean "
                f"({payload['summary']['findings']} findings)"
            )
        else:
            if payload["schema_version"] < REPROLINT_MIN_SCHEMA_VERSION:
                problems.append(
                    f"{path.name}: stale schema_version "
                    f"{payload['schema_version']} "
                    f"(gate requires >= {REPROLINT_MIN_SCHEMA_VERSION}; "
                    "re-run scripts/check.sh to refresh)"
                )
            by_rule = payload["summary"]["by_rule"]
            if not isinstance(by_rule, dict) or not all(
                isinstance(count, int) for count in by_rule.values()
            ):
                problems.append(
                    f"{path.name}: summary.by_rule is not a per-rule count map"
                )
            elif set(payload["rules_enabled"]) - set(by_rule):
                problems.append(
                    f"{path.name}: summary.by_rule missing enabled rules "
                    f"{sorted(set(payload['rules_enabled']) - set(by_rule))}"
                )
            cache = payload["summary"]["cache"]
            cache_missing = sorted(REPROLINT_CACHE_KEYS - set(cache))
            if cache_missing:
                problems.append(
                    f"{path.name}: summary.cache missing keys {cache_missing}"
                )
    if path.name == "vecenv.json":
        for section, nested in (
            ("decomposition", VECENV_DECOMPOSITION_KEYS),
            ("env_steps", VECENV_ENV_STEPS_KEYS),
        ):
            nested_missing = sorted(nested - set(payload[section]))
            if nested_missing:
                problems.append(
                    f"{path.name}: {section} missing keys {nested_missing}"
                )
    return problems


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(f"results directory missing: {RESULTS_DIR}", file=sys.stderr)
        return 1
    problems = []
    checked = 0
    for path in sorted(RESULTS_DIR.glob("*.json")):
        checked += 1
        problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(f"STALE SCHEMA: {problem}", file=sys.stderr)
        return 1
    print(f"results schema OK ({checked} payloads checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
