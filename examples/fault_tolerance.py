#!/usr/bin/env python3
"""Evaluating placement policies under edge-node failures.

Geo-distributed edge sites are far less reliable than a hardened cloud
datacenter.  This example runs the online simulation with exponential node
failure/repair processes injected (``repro.sim.failures``) and compares how
different placement strategies cope: policies that concentrate chains on few
nearby nodes lose more accepted services when a node dies; policies that keep
some traffic in the (reliable) cloud are disrupted less.

Run with::

    python examples/fault_tolerance.py [--episodes 60] [--mttf 150]
"""

from __future__ import annotations

import argparse

from repro import (
    CloudOnlyPolicy,
    DQNConfig,
    EnvConfig,
    GreedyNearestPolicy,
    ManagerConfig,
    SimulationConfig,
    TrainingConfig,
    ViterbiPlacementPolicy,
    VNFManager,
    reference_scenario,
)
from repro.sim.failures import FailureConfig, FaultyNFVSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60, help="DRL training episodes")
    parser.add_argument("--mttf", type=float, default=150.0, help="mean time to failure per edge node")
    parser.add_argument("--mttr", type=float, default=20.0, help="mean time to repair")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = reference_scenario(arrival_rate=0.9, num_edge_nodes=8, horizon=400.0, seed=args.seed)
    failure_config = FailureConfig(
        mean_time_to_failure=args.mttf, mean_time_to_repair=args.mttr, seed=args.seed
    )
    print(
        f"scenario: {scenario.name}; per-edge-node steady-state availability "
        f"{failure_config.steady_state_availability:.3f}"
    )

    manager = VNFManager(
        scenario,
        config=ManagerConfig(
            training=TrainingConfig(num_episodes=args.episodes, evaluation_interval=20),
            env=EnvConfig(requests_per_episode=40),
            dqn=DQNConfig(hidden_layers=(64, 64), epsilon_decay_steps=args.episodes * 100),
        ),
        seed=args.seed,
    )
    manager.train(verbose=True)

    requests = scenario.generate_requests()
    simulation_config = SimulationConfig(horizon=scenario.workload_config.horizon)

    runs = {}
    drl_network = scenario.build_network()
    runs["drl"] = FaultyNFVSimulation(
        drl_network, manager.build_policy(drl_network), simulation_config, failure_config
    )
    runs["greedy_nearest"] = FaultyNFVSimulation(
        scenario.build_network(), GreedyNearestPolicy(), simulation_config, failure_config
    )
    runs["viterbi"] = FaultyNFVSimulation(
        scenario.build_network(),
        ViterbiPlacementPolicy(cost_weight=0.2, load_weight=0.2),
        simulation_config,
        failure_config,
    )
    runs["cloud_only"] = FaultyNFVSimulation(
        scenario.build_network(), CloudOnlyPolicy(), simulation_config, failure_config
    )

    print(f"\n{'policy':<16} {'accept':>8} {'failures':>9} {'disrupted':>10} {'disruption ratio':>17}")
    for name, simulation in runs.items():
        result = simulation.run(requests)
        report = simulation.report
        ratio = report.disruption_ratio(result.summary.accepted_requests)
        print(
            f"{name:<16} {result.summary.acceptance_ratio:>8.3f} "
            f"{report.failure_events:>9d} {report.disrupted_requests:>10d} {ratio:>17.3f}"
        )

    print(
        "\nExpected shape: cloud_only is never disrupted (the cloud does not fail"
        " in this model) but accepts the least latency-critical traffic;"
        " edge-packing policies see the most disruptions; the DRL controller"
        " lands in between — high acceptance with moderate disruption."
    )


if __name__ == "__main__":
    main()
