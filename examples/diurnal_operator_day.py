#!/usr/bin/env python3
"""A full operator day: diurnal traffic over the geo-distributed substrate.

Operator traffic follows a day/night cycle.  This example runs a simulated
day (1440 time units) of sinusoidally modulated arrivals through the online
simulator with several policies and reports how acceptance and edge
utilization evolve between the night trough and the evening peak — the
workload the paper's "geo-distributed edge" framing is really about.

Run with::

    python examples/diurnal_operator_day.py [--episodes 60]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DQNConfig,
    EnvConfig,
    GreedyLeastLoadedPolicy,
    ManagerConfig,
    NFVSimulation,
    SimulationConfig,
    TrainingConfig,
    VNFManager,
    ViterbiPlacementPolicy,
)
from repro.workloads.scenarios import diurnal_scenario


def peak_and_trough_acceptance(result, period: float = 1440.0):
    """Split request outcomes into day (peak) and night (trough) halves."""
    peak, trough = [], []
    for outcome in result.collector.outcomes:
        phase = (outcome.arrival_time % period) / period
        (peak if phase < 0.5 else trough).append(outcome.accepted)
    ratio = lambda xs: float(np.mean(xs)) if xs else 0.0
    return ratio(peak), ratio(trough)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = diurnal_scenario(base_rate=0.7, num_edge_nodes=8, horizon=1440.0, seed=args.seed)
    print(f"scenario: {scenario.name} — one simulated day of diurnal traffic")

    manager = VNFManager(
        scenario,
        config=ManagerConfig(
            training=TrainingConfig(num_episodes=args.episodes, evaluation_interval=20),
            env=EnvConfig(requests_per_episode=40),
            dqn=DQNConfig(hidden_layers=(64, 64), epsilon_decay_steps=args.episodes * 100),
        ),
        seed=args.seed,
    )
    manager.train(verbose=True)

    requests = scenario.generate_requests()
    print(f"generated {len(requests)} requests over the simulated day")
    config = SimulationConfig(horizon=1440.0, monitoring_interval=60.0)

    policies = {"greedy_least_loaded": GreedyLeastLoadedPolicy(), "viterbi": ViterbiPlacementPolicy(cost_weight=0.2, load_weight=0.2)}
    results = {}
    drl_network = scenario.build_network()
    results["drl"] = NFVSimulation(drl_network, manager.build_policy(drl_network), config).run(requests)
    for name, policy in policies.items():
        results[name] = NFVSimulation(scenario.build_network(), policy, config).run(requests)

    print(f"\n{'policy':<22} {'accept':>8} {'peak':>7} {'trough':>8} {'mean util':>10} {'profit':>10}")
    for name, result in results.items():
        summary = result.summary
        peak, trough = peak_and_trough_acceptance(result)
        print(
            f"{name:<22} {summary.acceptance_ratio:>8.3f} {peak:>7.3f} {trough:>8.3f} "
            f"{summary.mean_edge_utilization:>10.3f} {summary.profit:>10.1f}"
        )

    print(
        "\nExpected shape: every policy accepts nearly everything in the night"
        " trough; the gap between policies opens at the daytime peak, where"
        " edge capacity is scarce and placement decisions matter."
    )


if __name__ == "__main__":
    main()
