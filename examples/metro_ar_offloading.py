#!/usr/bin/env python3
"""Latency-critical AR/VR offloading in a metro edge deployment.

The scenario the paper's introduction motivates: augmented-reality clients
offload rendering pipelines (firewall → load balancer → transcoder) with a
10-25 ms end-to-end budget.  The central cloud cannot meet that budget, so
the controller has to ration scarce edge capacity between AR traffic and the
background service mix.

The example compares three strategies on an AR-heavy workload:

* the trained DRL controller,
* ``cloud_only`` (shows why the cloud alone fails latency-critical classes),
* ``greedy_nearest`` (shows how naive edge-packing collapses under load).

Run with::

    python examples/metro_ar_offloading.py [--episodes 80]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro import (
    CloudOnlyPolicy,
    DQNConfig,
    EnvConfig,
    GreedyNearestPolicy,
    ManagerConfig,
    NFVSimulation,
    SimulationConfig,
    TrainingConfig,
    VNFManager,
    default_catalog,
    default_chain_templates,
    reference_scenario,
)


def ar_heavy_scenario(seed: int = 0, arrival_rate: float = 1.2):
    """The reference scenario with the class mix skewed towards AR/VR."""
    scenario = reference_scenario(
        arrival_rate=arrival_rate, num_edge_nodes=8, horizon=300.0, seed=seed
    )
    templates = []
    for template in default_chain_templates():
        if template.name == "ar_vr_offload":
            templates.append(replace(template, weight=0.45))
        elif template.name == "voip":
            templates.append(replace(template, weight=0.25))
        else:
            templates.append(replace(template, weight=0.10))
    return replace(scenario, name="ar-heavy-metro", templates=templates, catalog=default_catalog())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = ar_heavy_scenario(seed=args.seed)
    print(f"scenario: {scenario.name} (AR/VR + VoIP ≈ 70% of requests)")

    manager = VNFManager(
        scenario,
        config=ManagerConfig(
            training=TrainingConfig(num_episodes=args.episodes, evaluation_interval=20),
            env=EnvConfig(requests_per_episode=40),
            dqn=DQNConfig(hidden_layers=(64, 64), epsilon_decay_steps=args.episodes * 100),
        ),
        seed=args.seed,
    )
    manager.train(verbose=True)

    requests = scenario.generate_requests()
    config = SimulationConfig(horizon=scenario.workload_config.horizon)

    results = {}
    drl_network = scenario.build_network()
    results["drl"] = NFVSimulation(
        drl_network, manager.build_policy(drl_network), config
    ).run(requests)
    results["cloud_only"] = NFVSimulation(
        scenario.build_network(), CloudOnlyPolicy(), config
    ).run(requests)
    results["greedy_nearest"] = NFVSimulation(
        scenario.build_network(), GreedyNearestPolicy(), config
    ).run(requests)

    print(f"\n{'policy':<16} {'overall accept':>14} {'AR accept':>10} {'VoIP accept':>12} {'latency':>9}")
    for name, result in results.items():
        summary = result.summary
        by_class = summary.acceptance_by_class
        print(
            f"{name:<16} {summary.acceptance_ratio:>14.3f} "
            f"{by_class.get('ar_vr_offload', 0.0):>10.3f} "
            f"{by_class.get('voip', 0.0):>12.3f} "
            f"{summary.mean_latency_ms:>9.2f}"
        )
    print(
        "\nExpected shape: cloud_only accepts almost no AR/VR traffic (WAN latency"
        " blows the 10-25 ms budget); the DRL controller keeps AR acceptance high"
        " by reserving nearby edge capacity and pushing tolerant classes outward."
    )


if __name__ == "__main__":
    main()
