#!/usr/bin/env python3
"""Compare learning algorithms on the VNF-placement MDP.

Trains DQN, Double DQN, Dueling DQN, tabular Q-learning and A2C on the same
scenario and prints their learning progress and final greedy performance —
the data behind the agent-ablation figure.

Run with::

    python examples/compare_agents.py [--episodes 60]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    A2CConfig,
    ActorCriticAgent,
    DQNConfig,
    EnvConfig,
    TabularQLearningAgent,
    Trainer,
    TrainingConfig,
    VNFPlacementEnv,
    make_dqn_variant,
    reference_scenario,
)


def build_env(scenario, requests_per_episode: int = 30) -> VNFPlacementEnv:
    """A fresh training environment over a fresh copy of the scenario substrate."""
    network = scenario.build_network()
    generator = scenario.build_generator(network)
    return VNFPlacementEnv(
        network=network,
        generator=generator,
        catalog=scenario.catalog,
        config=EnvConfig(requests_per_episode=requests_per_episode),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = reference_scenario(
        arrival_rate=1.0, num_edge_nodes=8, horizon=250.0, seed=args.seed
    )
    dqn_config = DQNConfig(hidden_layers=(64, 64), epsilon_decay_steps=args.episodes * 90)
    training_config = TrainingConfig(
        num_episodes=args.episodes, evaluation_interval=max(10, args.episodes // 3)
    )

    # Each entry builds an agent for the given (state_dim, num_actions).
    agent_factories = {
        "dqn": lambda s, a: make_dqn_variant("dqn", s, a, dqn_config, seed=args.seed),
        "double_dqn": lambda s, a: make_dqn_variant("double", s, a, dqn_config, seed=args.seed),
        "dueling_dqn": lambda s, a: make_dqn_variant("dueling", s, a, dqn_config, seed=args.seed),
        "tabular_q": lambda s, a: TabularQLearningAgent(s, a, seed=args.seed),
        "a2c": lambda s, a: ActorCriticAgent(
            s, a, config=A2CConfig(hidden_layers=(64, 64)), seed=args.seed
        ),
    }

    header = (
        f"{'agent':<22} {'first-10 reward':>16} {'last-10 reward':>15} "
        f"{'eval accept':>12} {'eval latency':>13}"
    )
    print(header)
    for name, factory in agent_factories.items():
        env = build_env(scenario)
        agent = factory(env.state_dim, env.num_actions)
        trainer = Trainer(env, agent, training_config)
        history = trainer.train()
        evaluation = trainer.evaluate(3)
        first = np.mean(history.episode_rewards[:10])
        last = np.mean(history.episode_rewards[-10:])
        print(
            f"{agent.name:<22} {first:>16.1f} {last:>15.1f} "
            f"{evaluation.mean_acceptance:>12.3f} {evaluation.mean_latency_ms:>13.2f}"
        )

    print(
        "\nExpected shape: all deep variants improve substantially over their"
        " first episodes; the tabular baseline plateaus early because the"
        " discretized state space cannot represent per-node load accurately."
    )


if __name__ == "__main__":
    main()
