#!/usr/bin/env python3
"""Quickstart: train a DRL VNF-placement controller and evaluate it online.

This is the smallest end-to-end use of the library:

1. build the reference geo-distributed scenario (edge metros + central cloud),
2. train a DQN-based placement controller on it,
3. deploy the controller in the online discrete-event simulator, and
4. compare it against a couple of classical baselines on the same trace.

Run with::

    python examples/quickstart.py [--episodes 80] [--edges 8] [--rate 1.0]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    DQNConfig,
    EnvConfig,
    FirstFitPolicy,
    GreedyNearestPolicy,
    ManagerConfig,
    NFVSimulation,
    SimulationConfig,
    TrainingConfig,
    VNFManager,
    reference_scenario,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=80, help="training episodes")
    parser.add_argument("--edges", type=int, default=8, help="number of edge nodes")
    parser.add_argument("--rate", type=float, default=1.0, help="request arrival rate")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # 1. The scenario bundles topology, VNF catalog, chain mix and workload.
    scenario = reference_scenario(
        arrival_rate=args.rate, num_edge_nodes=args.edges, horizon=300.0, seed=args.seed
    )
    print(f"scenario: {scenario.name}, arrival rate {args.rate}/time-unit")

    # 2. Train the DRL controller.
    manager = VNFManager(
        scenario,
        config=ManagerConfig(
            training=TrainingConfig(num_episodes=args.episodes, evaluation_interval=20),
            env=EnvConfig(requests_per_episode=40),
            dqn=DQNConfig(hidden_layers=(64, 64), epsilon_decay_steps=args.episodes * 100),
        ),
        seed=args.seed,
    )
    start = time.time()
    history = manager.train(verbose=True)
    print(
        f"trained {args.episodes} episodes in {time.time() - start:.1f}s; "
        f"final smoothed reward {history.moving_average_reward(10)[-1]:.1f}"
    )

    # 3 + 4. Evaluate the trained controller and two baselines on one trace.
    requests = scenario.generate_requests()
    config = SimulationConfig(horizon=scenario.workload_config.horizon)

    drl_network = scenario.build_network()
    drl_result = NFVSimulation(
        drl_network, manager.build_policy(drl_network), config
    ).run(requests)

    rows = [drl_result]
    for baseline in (GreedyNearestPolicy(), FirstFitPolicy()):
        rows.append(NFVSimulation(scenario.build_network(), baseline, config).run(requests))

    print(f"\n{'policy':<18} {'accept':>8} {'latency(ms)':>12} {'profit':>10}")
    for result in rows:
        summary = result.summary
        print(
            f"{result.policy_name:<18} {summary.acceptance_ratio:>8.3f} "
            f"{summary.mean_latency_ms:>12.2f} {summary.profit:>10.1f}"
        )


if __name__ == "__main__":
    main()
