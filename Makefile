# Convenience targets for the reproduction repo.  Everything assumes the
# bundled sources under src/ (no install step needed).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: check lint test test-diff bench-hotpath bench-envstep bench-vecenv bench-policyeval bench-subproc bench-serving bench-smoke bench clean-cache

## check: tier-1 tests + one tiny end-to-end figure run (< 1 minute)
check:
	bash scripts/check.sh

## lint: reprolint project-contract static analysis (see docs/ANALYSIS.md)
## Pass extra flags via LINT_ARGS, e.g. `make lint LINT_ARGS="--cache"`
## or `make lint LINT_ARGS="--select RPL204 --format json"`.
lint:
	python -m repro.analysis src benchmarks tests $(LINT_ARGS)

## test: the tier-1 test suite only
test:
	python -m pytest -x -q

## test-diff: the SoA-vs-reference differential equivalence suite only
test-diff:
	python -m pytest -x -q tests/test_soa_equivalence.py

## bench-hotpath: microbenchmark of the vectorized training hot path
bench-hotpath:
	PYTHONPATH=src:. python benchmarks/bench_hotpath.py

## bench-envstep: microbenchmark of the vectorized environment core
bench-envstep:
	PYTHONPATH=src:. python benchmarks/bench_envstep.py

## bench-vecenv: microbenchmark of the K-lane vectorized training loop
bench-vecenv:
	PYTHONPATH=src:. python benchmarks/bench_vecenv.py

## bench-policyeval: microbenchmark of batched vs serial baseline evaluation
bench-policyeval:
	PYTHONPATH=src:. python benchmarks/bench_policyeval.py

## bench-subproc: microbenchmark of the shared-memory worker env vs sync
bench-subproc:
	PYTHONPATH=src:. python benchmarks/bench_subproc.py

## bench-serving: 1M-request serving soak (memory-flat, ~25 minutes)
bench-serving:
	PYTHONPATH=src:. python benchmarks/bench_serving.py

## bench-smoke: fast perf regression guards (used by scripts/check.sh)
bench-smoke:
	PYTHONPATH=src:. python benchmarks/bench_envstep.py --smoke
	PYTHONPATH=src:. python benchmarks/bench_vecenv.py --smoke
	PYTHONPATH=src:. python benchmarks/bench_policyeval.py --smoke
	PYTHONPATH=src:. python benchmarks/bench_subproc.py --smoke --workers 2
	PYTHONPATH=src:. python benchmarks/bench_serving.py --smoke

## bench: the full figure/table benchmark suite (fast preset)
bench:
	python -m pytest benchmarks -o python_files='bench_*.py' \
		-o python_functions='bench_*' -q

## clean-cache: drop cached benchmark results (forces recomputation)
clean-cache:
	rm -rf benchmarks/results/cache
