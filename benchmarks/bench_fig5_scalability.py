"""Fig. 5 — acceptance ratio vs number of edge nodes (scalability).

Per-node offered load is held constant while the topology grows; the DRL
controller is retrained per topology size because the state/action spaces
change with the substrate.
"""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_acceptance_vs_edges


def bench_fig5_scalability(benchmark):
    data = run_figure_benchmark(benchmark, figure_acceptance_vs_edges, "fig5_scalability")
    series = data["series"]
    assert "drl_dqn" in series
    for values in series.values():
        assert len(values) == len(data["x"])
        assert all(0.0 <= v <= 1.0 for v in values)
    # Expected shape: the learned policy stays competitive with the greedy
    # family as the substrate grows (no collapse at larger action spaces).
    assert min(series["drl_dqn"]) > 0.3
    # Per-size vectorized env evaluation (replicated seed-diverse lanes).
    # (Absent only in payloads cached before the vec-env layer existed; run
    # `make clean-cache` to regenerate.)
    if "env_eval" in data:
        env_eval = data["env_eval"]
        assert len(env_eval["acceptance_ratio"]) == len(data["x"])
        assert all(0.0 <= v <= 1.0 for v in env_eval["acceptance_ratio"])
