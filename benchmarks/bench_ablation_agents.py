"""Ablation B — agent variants (DQN vs Double DQN vs Dueling DQN).

Each variant is trained on the same scenario and evaluated greedily; the
benchmark reports reward, acceptance and latency per variant.
"""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_agent_ablation


def bench_ablation_agent_variants(benchmark):
    data = run_figure_benchmark(benchmark, figure_agent_ablation, "ablation_agents")
    names = data["x"]
    assert set(names) == {"dqn", "double_dqn", "dueling_dqn"}
    acceptance = dict(zip(names, data["series"]["mean_acceptance"]))
    # Expected shape: every deep variant learns a policy that accepts a
    # substantial fraction of requests in greedy evaluation.
    assert all(value > 0.3 for value in acceptance.values())
