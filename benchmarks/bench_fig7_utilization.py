"""Fig. 7 — edge utilization and load balance per algorithm at reference load."""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_utilization


def bench_fig7_utilization(benchmark):
    data = run_figure_benchmark(benchmark, figure_utilization, "fig7_utilization")
    policies = data["x"]
    series = data["series"]
    assert "drl_dqn" in policies
    assert len(series["mean_edge_utilization"]) == len(policies)
    assert len(series["utilization_imbalance"]) == len(policies)
    utilization = dict(zip(policies, series["mean_edge_utilization"]))
    # Expected shape: cloud-only leaves the edge idle; every edge-using policy
    # shows non-trivial utilization at the reference load.
    assert utilization["cloud_only"] == 0.0
    assert utilization["drl_dqn"] > 0.05
