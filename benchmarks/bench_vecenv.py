"""Microbenchmark of the vectorized multi-environment training loop.

Two measurements over the same scenario family, as a function of the lane
count K (1, 4, 16):

* ``env_steps`` — raw environment throughput: masked-random actions driven
  through :class:`VecPlacementEnv` with no agent in the loop.  Lanes step
  serially in Python, so aggregate steps/s stays roughly flat in K; this
  isolates the vectorization overhead of the env layer itself.
* ``training_loop`` — the full DQN training decision loop (mask → batched
  ``select_actions`` → ``step`` → ``observe_batch`` → ``update``), i.e.
  exactly the per-step work of :class:`~repro.core.training.VecTrainer`.
  K=1 routes through the agent's serial paths and is the per-step work of the
  serial :class:`~repro.core.training.Trainer` baseline.  All K run the same
  number of *total environment steps*; the win comes from amortizing one
  batched forward pass and one replay update over K transitions.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_vecenv.py           # full
    PYTHONPATH=src:. python benchmarks/bench_vecenv.py --smoke   # seconds

Raw numbers are persisted to ``benchmarks/results/vecenv.json``; the script
asserts the K=16 training loop is at least 4x faster than serial.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.core.env import EnvConfig
from repro.core.vecenv import VecPlacementEnv
from repro.workloads.scenarios import Scenario, reference_scenario

#: Required speedup of the K=16 training loop over the serial baseline.
MIN_SPEEDUP_K16 = 4.0

K_VALUES = (1, 4, 16)
TOTAL_TRAINING_STEPS = 4000
WARMUP_STEPS = 600
ENV_ONLY_STEPS = 4000
SEED = 0


def _scenario() -> Scenario:
    return reference_scenario(
        arrival_rate=0.8, num_edge_nodes=6, horizon=200.0, seed=SEED
    )


def _make_venv(num_lanes: int) -> VecPlacementEnv:
    return VecPlacementEnv.from_scenario(
        _scenario(),
        num_lanes,
        seed=SEED,
        env_config=EnvConfig(requests_per_episode=40),
    )


def _make_agent(venv: VecPlacementEnv) -> DQNAgent:
    # Deliberately the reference network size: the point of the benchmark is
    # the real per-step agent cost that lane-parallelism amortizes.
    config = DQNConfig(
        hidden_layers=(128, 128),
        batch_size=64,
        min_replay_size=128,
        epsilon_decay_steps=5000,
    )
    return DQNAgent(venv.state_dim, venv.num_actions, config=config, seed=SEED)


def measure_env_steps(num_lanes: int, total_steps: int) -> Dict[str, float]:
    """Aggregate env transitions/s with masked-random actions (no agent)."""
    from benchmarks.common import measure_env_steps as shared_measure

    return shared_measure(_make_venv(num_lanes), total_steps, seed=SEED)


def measure_training_loop(num_lanes: int, total_steps: int, warmup_steps: int) -> Dict[str, float]:
    """Training-loop throughput at K lanes over ``total_steps`` transitions.

    The loop body is the decision loop of ``VecTrainer.run_episodes``; for
    K=1 every batched agent call routes to its serial implementation, making
    the measurement the per-step cost of the serial ``Trainer``.  Warmup
    steps (replay fill + first updates) run untimed so all K are compared in
    the steady learning regime.
    """
    venv = _make_venv(num_lanes)
    agent = _make_agent(venv)
    states = venv.reset()

    def drive(steps_target: int) -> int:
        steps = 0
        nonlocal states
        while steps < steps_target:
            masks = venv.valid_action_masks()
            actions = agent.select_actions(states, masks)
            next_states, rewards, dones, _ = venv.step(actions)
            next_masks = venv.valid_action_masks()
            agent.observe_batch(states, actions, rewards, next_states, dones, next_masks)
            agent.update()
            states = next_states
            steps += venv.num_lanes
        return steps

    drive(warmup_steps)
    updates_before = agent.training_steps
    start = time.perf_counter()
    steps = drive(total_steps)
    elapsed = time.perf_counter() - start
    return {
        "lanes": num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "agent_batches_per_s": (steps / num_lanes) / elapsed,
        "gradient_updates": agent.training_steps - updates_before,
        "episodes_completed": venv.episodes_completed,
    }


def run_vecenv_benchmark(
    total_steps: int = TOTAL_TRAINING_STEPS,
    env_only_steps: int = ENV_ONLY_STEPS,
    warmup_steps: int = WARMUP_STEPS,
    k_values=K_VALUES,
    check_speedup: bool = True,
) -> Dict[str, object]:
    """Run both measurements, persist the JSON and check the speedup bar."""
    results: Dict[str, object] = {
        "config": {
            "scenario": _scenario().name,
            "k_values": list(k_values),
            "total_training_steps": total_steps,
            "env_only_steps": env_only_steps,
            "warmup_steps": warmup_steps,
            "agent": "dqn(128x128, batch=64)",
            "seed": SEED,
        },
        "env_steps": {
            f"K={k}": measure_env_steps(k, env_only_steps) for k in k_values
        },
        "training_loop": {
            f"K={k}": measure_training_loop(k, total_steps, warmup_steps)
            for k in k_values
        },
    }
    serial = results["training_loop"][f"K={k_values[0]}"]["env_steps_per_s"]
    results["speedups"] = {
        f"training_K{k}_vs_serial": results["training_loop"][f"K={k}"][
            "env_steps_per_s"
        ]
        / serial
        for k in k_values[1:]
    }
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "vecenv.json")
    if check_speedup:
        top_k = k_values[-1]
        speedup = results["speedups"][f"training_K{top_k}_vs_serial"]
        assert speedup >= MIN_SPEEDUP_K16, (
            f"K={top_k} training loop is only {speedup:.1f}x faster than the "
            f"serial trainer (required: {MIN_SPEEDUP_K16}x)"
        )
    return results


def run_smoke() -> Dict[str, float]:
    """Seconds-fast perf regression guard for CI.

    Compares the serial training loop against K=16 over a few hundred steps
    and asserts a conservative 2x bar (the full benchmark's bar is 4x over a
    longer, steadier measurement).
    """
    serial = measure_training_loop(1, total_steps=400, warmup_steps=160)
    vec = measure_training_loop(16, total_steps=640, warmup_steps=160)
    speedup = vec["env_steps_per_s"] / serial["env_steps_per_s"]
    assert speedup >= 2.0, (
        f"K=16 training loop is only {speedup:.1f}x faster than serial on the "
        "smoke measurement (required: 2x)"
    )
    return {
        "serial_env_steps_per_s": serial["env_steps_per_s"],
        "vec16_env_steps_per_s": vec["env_steps_per_s"],
        "speedup": speedup,
    }


def bench_vecenv(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_vecenv_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    top_k = results["config"]["k_values"][-1]
    assert results["speedups"][f"training_K{top_k}_vs_serial"] >= MIN_SPEEDUP_K16


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        smoke = run_smoke()
        print(
            f"vec-env smoke: serial {smoke['serial_env_steps_per_s']:.0f} "
            f"env-steps/s vs K=16 {smoke['vec16_env_steps_per_s']:.0f} "
            f"env-steps/s ({smoke['speedup']:.1f}x, bar: >= 2x)"
        )
        return
    results = run_vecenv_benchmark()
    print("env-only throughput (masked-random actions, aggregate steps/s)")
    for key, row in results["env_steps"].items():
        print(f"  {key:5s}: {row['env_steps_per_s']:10.0f}")
    print("training-loop throughput (DQN decision loop, env transitions/s)")
    for key, row in results["training_loop"].items():
        print(
            f"  {key:5s}: {row['env_steps_per_s']:10.0f} env-steps/s "
            f"({row['agent_batches_per_s']:8.0f} agent batches/s, "
            f"{row['gradient_updates']} updates)"
        )
    for name, value in results["speedups"].items():
        print(f"  {name}: {value:.1f}x (bar at K={results['config']['k_values'][-1]}: "
              f">= {MIN_SPEEDUP_K16}x)")


if __name__ == "__main__":
    main()
