"""Microbenchmark of the vectorized environments and the training loop.

Three measurements over the same scenario family, as a function of the lane
count K:

* ``env_steps`` — aggregate environment throughput with masked-random
  actions (no agent), for both backends of
  :func:`~repro.core.subproc.make_vec_env`: the per-lane ``reference``
  backend (:class:`VecPlacementEnv`, lanes step serially in Python, so
  aggregate steps/s stays roughly flat in K) and the structure-of-arrays
  ``soa`` backend (:class:`SoAVecPlacementEnv`).  This protocol includes
  episode boundaries, where both backends pay the same per-lane O(K)
  workload-generation cost.
* ``env_steps.soa_steady_state`` — SoA **stepping** throughput measured
  inside one long episode, so the timed window contains no episode
  boundary.  Episode-boundary workload generation is backend-independent
  per-lane work (the reference backend samples the identical requests);
  timing it separately (``episode_reset_s``) isolates what the SoA core
  actually changes — the per-step mask/observe/step pipeline.
* ``env_steps.soa_scaling`` — the K=4 -> K=64 stepping-throughput ratio,
  measured as **interleaved window pairs** (see
  :func:`measure_soa_scaling_pairwise`): on shared hosts the effective CPU
  speed drifts by tens of percent over seconds, so back-to-back per-K
  sweeps can compare two different machine-speed phases.  The scaling bar
  below is asserted on the median pair ratio of this series.
* ``training_loop`` — the full DQN training decision loop (mask → batched
  ``select_actions`` → ``step`` → ``observe_batch`` → ``update``), i.e.
  exactly the per-step work of :class:`~repro.core.training.VecTrainer`.
  K=1 routes through the agent's serial paths and is the per-step work of
  the serial :class:`~repro.core.training.Trainer` baseline.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_vecenv.py           # full
    PYTHONPATH=src:. python benchmarks/bench_vecenv.py --smoke   # seconds

Raw numbers are persisted to ``benchmarks/results/vecenv.json``; the script
asserts the K=16 training loop is at least 4x faster than serial and that
SoA stepping scales at least ``MIN_SOA_SCALING_K4_K64`` from K=4 to K=64
(median interleaved pair ratio).
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.core.env import EnvConfig
from repro.core.soa import SoAVecPlacementEnv
from repro.core.vecenv import (
    VecPlacementEnv,
    lane_specs_from_scenarios,
    lane_workload_seed,
)
from repro.workloads.scenarios import Scenario, reference_scenario

#: Required speedup of the K=16 training loop over the serial baseline.
MIN_SPEEDUP_K16 = 4.0
#: Enforced floor on SoA stepping-throughput scaling from K=4 to K=64,
#: asserted on the median of the interleaved pairwise windows.  The measured
#: batch-step cost model is T(K) ~= f + p*K with f ~= 110 us of per-call
#: overhead (numpy kernel launches, action sampling) and p ~= 8 us of
#: per-lane bookkeeping (commit pipeline, per-lane info dicts), which puts
#: the true ratio near 3.5x on a quiet host; the floor leaves margin for
#: residual timer noise.  Reaching the 4x design target needs p <= 7 us —
#: the remaining per-lane Python work is itemized in ROADMAP.md.
MIN_SOA_SCALING_K4_K64 = 3.0

K_VALUES = (1, 4, 16)
ENV_K_VALUES = (1, 4, 16, 64)
SOA_K_VALUES = (1, 4, 16, 64, 256)
TOTAL_TRAINING_STEPS = 4000
WARMUP_STEPS = 600
ENV_ONLY_STEPS = 4000
#: Vectorized step() calls timed per K in the steady-state measurement.
STEADY_BATCH_STEPS = {1: 2000, 4: 1000, 16: 600, 64: 300, 256: 120}
STEADY_WARMUP_BATCH_STEPS = 10
#: Safety margin on the steady-state episode length: every request consumes
#: at least one step, so ``warmup + batch_steps + margin`` requests per
#: episode guarantee no lane's episode ends inside the timed window (which
#: the measurement additionally asserts via ``episodes_completed``).
STEADY_REQUEST_MARGIN = 50
#: Interleaved scaling measurement: window pairs and per-window step counts.
SCALING_PAIRS = 10
SCALING_WINDOW_BATCH_STEPS = {4: 400, 64: 150}
SEED = 0

_BACKENDS = {"reference": VecPlacementEnv, "soa": SoAVecPlacementEnv}


def _scenario() -> Scenario:
    return reference_scenario(
        arrival_rate=0.8, num_edge_nodes=6, horizon=200.0, seed=SEED
    )


def _lane_specs(scenario: Scenario, num_lanes: int, env_config: EnvConfig):
    """Explicit per-lane specs with the standard derived workload seeds.

    The lane seeds must come from :func:`lane_workload_seed` — *not* from
    the scenario seed itself, which would give every lane the same workload
    stream; the derivation is asserted here so the benchmark can never
    silently measure K copies of one lane.
    """
    specs = lane_specs_from_scenarios(
        [scenario] * num_lanes, seed=SEED, env_config=env_config
    )
    for index, spec in enumerate(specs):
        expected = lane_workload_seed(SEED, index, scenario.name)
        assert spec.workload_seed == expected, (
            f"lane {index} workload seed {spec.workload_seed} is not the "
            f"derived lane seed {expected}; lanes must not be re-seeded "
            "from the scenario seed"
        )
    assert len({spec.workload_seed for spec in specs}) == num_lanes, (
        "derived lane workload seeds collide; lanes would replay the same "
        "request stream"
    )
    return specs


def _make_venv(num_lanes: int, backend: str = "reference"):
    specs = _lane_specs(
        _scenario(), num_lanes, EnvConfig(requests_per_episode=40)
    )
    return _BACKENDS[backend].from_specs(specs)


def _make_agent(venv) -> DQNAgent:
    # Deliberately the reference network size: the point of the benchmark is
    # the real per-step agent cost that lane-parallelism amortizes.
    config = DQNConfig(
        hidden_layers=(128, 128),
        batch_size=64,
        min_replay_size=128,
        epsilon_decay_steps=5000,
    )
    return DQNAgent(venv.state_dim, venv.num_actions, config=config, seed=SEED)


def measure_env_steps(
    num_lanes: int, total_steps: int, backend: str = "reference"
) -> Dict[str, float]:
    """Aggregate env transitions/s with masked-random actions (no agent)."""
    from benchmarks.common import measure_env_steps as shared_measure

    return shared_measure(_make_venv(num_lanes, backend), total_steps, seed=SEED)


def measure_steady_state_env_steps(
    num_lanes: int,
    batch_steps: int,
    warmup_batch_steps: int = STEADY_WARMUP_BATCH_STEPS,
) -> Dict[str, float]:
    """SoA stepping throughput inside one episode (no boundary in-window).

    The untimed reset — per-lane workload generation plus request-view
    precomputation, identical work to what the reference backend spreads
    over its per-lane resets — is reported separately as
    ``episode_reset_s``.  The measurement refuses to report a window that
    crossed an episode boundary.
    """
    from benchmarks.common import masked_random_actions

    requests_per_episode = (
        batch_steps + warmup_batch_steps + STEADY_REQUEST_MARGIN
    )
    specs = _lane_specs(
        _scenario(),
        num_lanes,
        EnvConfig(requests_per_episode=requests_per_episode),
    )
    venv = SoAVecPlacementEnv.from_specs(specs)
    rng = np.random.default_rng(SEED)
    reset_start = time.perf_counter()
    venv.reset()
    reset_s = time.perf_counter() - reset_start
    for _ in range(warmup_batch_steps):
        venv.step(masked_random_actions(venv.valid_action_masks(), rng))
    episodes_before = venv.episodes_completed
    start = time.perf_counter()
    for _ in range(batch_steps):
        venv.step(masked_random_actions(venv.valid_action_masks(), rng))
    elapsed = time.perf_counter() - start
    assert venv.episodes_completed == episodes_before, (
        f"K={num_lanes}: the steady-state window crossed an episode "
        "boundary; raise STEADY_REQUEST_MARGIN"
    )
    steps = batch_steps * num_lanes
    return {
        "lanes": num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "episode_reset_s": reset_s,
        "requests_per_episode": requests_per_episode,
    }


def measure_soa_scaling_pairwise(
    k_low: int = 4,
    k_high: int = 64,
    pairs: int = SCALING_PAIRS,
    window_batch_steps: Dict[int, int] = SCALING_WINDOW_BATCH_STEPS,
) -> Dict[str, object]:
    """K-scaling of SoA stepping, measured in interleaved window pairs.

    On shared hosts the effective CPU speed drifts by tens of percent over
    seconds, so timing every ``k_low`` window and then every ``k_high``
    window can compare two different machine-speed phases and report an
    arbitrary ratio.  Both environments are therefore built once — with
    episodes long enough that no timed window crosses an episode boundary —
    and the two lane counts are timed in *adjacent* windows, pair by pair.
    Each pair yields one throughput ratio taken within one machine-speed
    phase; the distribution is summarized by its median (the asserted
    scaling number) and its best pair.
    """
    from benchmarks.common import masked_random_actions

    windows = {k: window_batch_steps[k] for k in (k_low, k_high)}
    envs = {}
    for k, batch_steps in windows.items():
        requests_per_episode = (
            pairs * batch_steps
            + STEADY_WARMUP_BATCH_STEPS
            + STEADY_REQUEST_MARGIN
        )
        specs = _lane_specs(
            _scenario(), k, EnvConfig(requests_per_episode=requests_per_episode)
        )
        envs[k] = SoAVecPlacementEnv.from_specs(specs)
        envs[k].reset()
    rng = np.random.default_rng(SEED)

    def run_window(k: int) -> float:
        venv = envs[k]
        batch_steps = windows[k]
        episodes_before = venv.episodes_completed
        start = time.perf_counter()
        for _ in range(batch_steps):
            venv.step(masked_random_actions(venv.valid_action_masks(), rng))
        elapsed = time.perf_counter() - start
        assert venv.episodes_completed == episodes_before, (
            f"K={k}: a scaling window crossed an episode boundary; raise "
            "STEADY_REQUEST_MARGIN"
        )
        return batch_steps * k / elapsed

    for k in (k_low, k_high):
        venv = envs[k]
        for _ in range(STEADY_WARMUP_BATCH_STEPS):
            venv.step(masked_random_actions(venv.valid_action_masks(), rng))
    low_rates, high_rates, ratios = [], [], []
    for _ in range(pairs):
        low = run_window(k_low)
        high = run_window(k_high)
        low_rates.append(low)
        high_rates.append(high)
        ratios.append(high / low)
    for venv in envs.values():
        venv.close()
    ordered = sorted(ratios)
    return {
        "k_low": k_low,
        "k_high": k_high,
        "pairs": pairs,
        "window_batch_steps": {str(k): v for k, v in windows.items()},
        "pair_ratios": ratios,
        "median_ratio": ordered[len(ordered) // 2],
        "best_ratio": ordered[-1],
        "median_env_steps_per_s": {
            str(k_low): sorted(low_rates)[len(low_rates) // 2],
            str(k_high): sorted(high_rates)[len(high_rates) // 2],
        },
    }


def measure_training_loop(num_lanes: int, total_steps: int, warmup_steps: int) -> Dict[str, float]:
    """Training-loop throughput at K lanes over ``total_steps`` transitions.

    The loop body is the decision loop of ``VecTrainer.run_episodes``; for
    K=1 every batched agent call routes to its serial implementation, making
    the measurement the per-step cost of the serial ``Trainer``.  Warmup
    steps (replay fill + first updates) run untimed so all K are compared in
    the steady learning regime.
    """
    venv = _make_venv(num_lanes)
    agent = _make_agent(venv)
    states = venv.reset()

    def drive(steps_target: int) -> int:
        steps = 0
        nonlocal states
        while steps < steps_target:
            masks = venv.valid_action_masks()
            actions = agent.select_actions(states, masks)
            next_states, rewards, dones, _ = venv.step(actions)
            next_masks = venv.valid_action_masks()
            agent.observe_batch(states, actions, rewards, next_states, dones, next_masks)
            agent.update()
            states = next_states
            steps += venv.num_lanes
        return steps

    drive(warmup_steps)
    updates_before = agent.training_steps
    start = time.perf_counter()
    steps = drive(total_steps)
    elapsed = time.perf_counter() - start
    return {
        "lanes": num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "agent_batches_per_s": (steps / num_lanes) / elapsed,
        "gradient_updates": agent.training_steps - updates_before,
        "episodes_completed": venv.episodes_completed,
    }


def run_vecenv_benchmark(
    total_steps: int = TOTAL_TRAINING_STEPS,
    env_only_steps: int = ENV_ONLY_STEPS,
    warmup_steps: int = WARMUP_STEPS,
    k_values=K_VALUES,
    check_speedup: bool = True,
) -> Dict[str, object]:
    """Run all measurements, persist the JSON and check the speedup bars."""
    results: Dict[str, object] = {
        "config": {
            "scenario": _scenario().name,
            "k_values": list(k_values),
            "env_k_values": list(ENV_K_VALUES),
            "soa_k_values": list(SOA_K_VALUES),
            "total_training_steps": total_steps,
            "env_only_steps": env_only_steps,
            "warmup_steps": warmup_steps,
            "steady_state_batch_steps": dict(
                sorted((str(k), v) for k, v in STEADY_BATCH_STEPS.items())
            ),
            "steady_state_request_margin": STEADY_REQUEST_MARGIN,
            "scaling_pairs": SCALING_PAIRS,
            "scaling_window_batch_steps": {
                str(k): v for k, v in sorted(SCALING_WINDOW_BATCH_STEPS.items())
            },
            "agent": "dqn(128x128, batch=64)",
            "seed": SEED,
        },
        "env_steps": {
            "reference": {
                f"K={k}": measure_env_steps(
                    k, max(env_only_steps, 60 * k), backend="reference"
                )
                for k in ENV_K_VALUES
            },
            "soa": {
                f"K={k}": measure_env_steps(
                    k, max(env_only_steps, 60 * k), backend="soa"
                )
                for k in SOA_K_VALUES
            },
            "soa_steady_state": {
                f"K={k}": measure_steady_state_env_steps(k, STEADY_BATCH_STEPS[k])
                for k in SOA_K_VALUES
            },
            "soa_scaling": measure_soa_scaling_pairwise(),
        },
        "training_loop": {
            f"K={k}": measure_training_loop(k, total_steps, warmup_steps)
            for k in k_values
        },
    }
    serial = results["training_loop"][f"K={k_values[0]}"]["env_steps_per_s"]
    env_steps = results["env_steps"]
    scaling_row = env_steps["soa_scaling"]
    speedups = {
        f"training_K{k}_vs_serial": results["training_loop"][f"K={k}"][
            "env_steps_per_s"
        ]
        / serial
        for k in k_values[1:]
    }
    speedups["env_steps_soa_K64_vs_K4"] = scaling_row["median_ratio"]
    speedups["env_steps_soa_K64_vs_K4_best_pair"] = scaling_row["best_ratio"]
    speedups["env_steps_soa_vs_reference_K64"] = (
        env_steps["soa"]["K=64"]["env_steps_per_s"]
        / env_steps["reference"]["K=64"]["env_steps_per_s"]
    )
    results["speedups"] = speedups
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "vecenv.json")
    if check_speedup:
        top_k = k_values[-1]
        speedup = speedups[f"training_K{top_k}_vs_serial"]
        assert speedup >= MIN_SPEEDUP_K16, (
            f"K={top_k} training loop is only {speedup:.1f}x faster than the "
            f"serial trainer (required: {MIN_SPEEDUP_K16}x)"
        )
        scaling = speedups["env_steps_soa_K64_vs_K4"]
        assert scaling >= MIN_SOA_SCALING_K4_K64, (
            f"SoA stepping scales only {scaling:.1f}x from K=4 to K=64 "
            f"(median interleaved pair ratio; required: "
            f"{MIN_SOA_SCALING_K4_K64}x)"
        )
    return results


def run_smoke() -> Dict[str, float]:
    """Seconds-fast perf regression guard for CI.

    Compares the serial training loop against K=16 over a few hundred steps
    (conservative 2x bar) and checks SoA stepping scales from K=4 to K=64
    with a three-pair interleaved measurement (conservative 2.5x bar on the
    median; the full benchmark's bar is ``MIN_SOA_SCALING_K4_K64`` over
    more and longer window pairs).  Lane construction goes through
    :func:`_lane_specs`, which asserts every lane's workload seed is the
    derived ``lane_workload_seed`` — not a re-seed from the scenario seed.
    """
    serial = measure_training_loop(1, total_steps=400, warmup_steps=160)
    vec = measure_training_loop(16, total_steps=640, warmup_steps=160)
    speedup = vec["env_steps_per_s"] / serial["env_steps_per_s"]
    assert speedup >= 2.0, (
        f"K=16 training loop is only {speedup:.1f}x faster than serial on the "
        "smoke measurement (required: 2x)"
    )
    scaling_row = measure_soa_scaling_pairwise(
        pairs=3, window_batch_steps={4: 200, 64: 60}
    )
    scaling = scaling_row["median_ratio"]
    assert scaling >= 2.5, (
        f"SoA stepping scales only {scaling:.1f}x from K=4 to K=64 on the "
        "smoke measurement (median of 3 interleaved pairs; required: 2.5x)"
    )
    return {
        "serial_env_steps_per_s": serial["env_steps_per_s"],
        "vec16_env_steps_per_s": vec["env_steps_per_s"],
        "speedup": speedup,
        "soa4_env_steps_per_s": scaling_row["median_env_steps_per_s"]["4"],
        "soa64_env_steps_per_s": scaling_row["median_env_steps_per_s"]["64"],
        "soa_scaling": scaling,
    }


def bench_vecenv(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_vecenv_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    top_k = results["config"]["k_values"][-1]
    assert results["speedups"][f"training_K{top_k}_vs_serial"] >= MIN_SPEEDUP_K16
    assert results["speedups"]["env_steps_soa_K64_vs_K4"] >= MIN_SOA_SCALING_K4_K64


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        smoke = run_smoke()
        print(
            f"vec-env smoke: serial {smoke['serial_env_steps_per_s']:.0f} "
            f"env-steps/s vs K=16 {smoke['vec16_env_steps_per_s']:.0f} "
            f"env-steps/s ({smoke['speedup']:.1f}x, bar: >= 2x); "
            f"soa stepping K=4 {smoke['soa4_env_steps_per_s']:.0f} vs "
            f"K=64 {smoke['soa64_env_steps_per_s']:.0f} "
            f"({smoke['soa_scaling']:.1f}x median of interleaved pairs, "
            "bar: >= 2.5x)"
        )
        return
    results = run_vecenv_benchmark()
    print("env-only throughput (masked-random actions, aggregate steps/s)")
    for backend in ("reference", "soa"):
        for key, row in results["env_steps"][backend].items():
            print(f"  {backend:9s} {key:6s}: {row['env_steps_per_s']:10.0f}")
    print("soa steady-state stepping (episode boundaries excluded)")
    for key, row in results["env_steps"]["soa_steady_state"].items():
        print(
            f"  {key:6s}: {row['env_steps_per_s']:10.0f} steps/s "
            f"(episode reset {row['episode_reset_s']*1e3:.0f} ms, untimed)"
        )
    scaling_row = results["env_steps"]["soa_scaling"]
    print(
        f"soa K={scaling_row['k_low']} -> K={scaling_row['k_high']} scaling "
        f"({scaling_row['pairs']} interleaved window pairs): "
        f"median {scaling_row['median_ratio']:.2f}x, "
        f"best {scaling_row['best_ratio']:.2f}x"
    )
    print("training-loop throughput (DQN decision loop, env transitions/s)")
    for key, row in results["training_loop"].items():
        print(
            f"  {key:5s}: {row['env_steps_per_s']:10.0f} env-steps/s "
            f"({row['agent_batches_per_s']:8.0f} agent batches/s, "
            f"{row['gradient_updates']} updates)"
        )
    for name, value in results["speedups"].items():
        print(f"  {name}: {value:.1f}x")
    print(
        f"  bars: training K={results['config']['k_values'][-1]} >= "
        f"{MIN_SPEEDUP_K16}x, soa K=64/K=4 median pair ratio >= "
        f"{MIN_SOA_SCALING_K4_K64}x"
    )


if __name__ == "__main__":
    main()
