"""Microbenchmark of the vectorized environments and the training loop.

Three measurements over the same scenario family, as a function of the lane
count K:

* ``env_steps`` — aggregate environment throughput with masked-random
  actions (no agent), for both backends of
  :func:`~repro.core.subproc.make_vec_env`: the per-lane ``reference``
  backend (:class:`VecPlacementEnv`, lanes step serially in Python, so
  aggregate steps/s stays roughly flat in K) and the structure-of-arrays
  ``soa`` backend (:class:`SoAVecPlacementEnv`).  This protocol includes
  episode boundaries, where both backends pay the same per-lane O(K)
  workload-generation cost.
* ``env_steps.soa_steady_state`` — SoA **stepping** throughput measured
  inside one long episode, so the timed window contains no episode
  boundary.  Episode-boundary workload generation is backend-independent
  per-lane work (the reference backend samples the identical requests);
  timing it separately (``episode_reset_s``) isolates what the SoA core
  actually changes — the per-step mask/observe/step pipeline.
* ``env_steps.soa_scaling`` — the K=4 -> K=64 stepping-throughput ratio,
  measured as **interleaved window pairs** (see
  :func:`measure_soa_scaling_pairwise`): on shared hosts the effective CPU
  speed drifts by tens of percent over seconds, so back-to-back per-K
  sweeps can compare two different machine-speed phases.  The scaling bar
  below is asserted on the median pair ratio of the **lean**-protocol
  series (``info=False`` — the protocol ``VecTrainer`` actually runs);
  the full-protocol series is reported alongside for comparison.
* ``decomposition`` — the measured cost model T(K) ~= f + p*K of one
  batched step, solved per interleaved window pair (t4 = f + 4p,
  t64 = f + 64p, so machine-speed drift between pairs cannot skew the
  fit) for each step protocol (full / lean / core), plus the per-phase
  kernel timers of a profiled K=64 run.  The per-lane bar below is
  asserted on the core protocol's best pair (timer noise is one-sided:
  slow machine phases only ever inflate p).
* ``training_loop`` — the full DQN training decision loop (mask → batched
  ``select_actions`` → ``step`` → ``observe_batch`` → ``update``), i.e.
  exactly the per-step work of :class:`~repro.core.training.VecTrainer`.
  K=1 routes through the agent's serial paths and is the per-step work of
  the serial :class:`~repro.core.training.Trainer` baseline.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_vecenv.py           # full
    PYTHONPATH=src:. python benchmarks/bench_vecenv.py --smoke   # seconds

Raw numbers are persisted to ``benchmarks/results/vecenv.json``; the script
asserts the K=16 training loop is at least 4x faster than serial and that
SoA stepping scales at least ``MIN_SOA_SCALING_K4_K64`` from K=4 to K=64
(median interleaved pair ratio).
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.core.env import EnvConfig
from repro.core.soa import SoAVecPlacementEnv
from repro.core.vecenv import (
    VecPlacementEnv,
    lane_specs_from_scenarios,
    lane_workload_seed,
)
from repro.workloads.scenarios import Scenario, reference_scenario

#: Required speedup of the K=16 training loop over the serial baseline.
MIN_SPEEDUP_K16 = 4.0
#: Enforced floor on SoA stepping-throughput scaling from K=4 to K=64,
#: asserted on the median of the interleaved pairwise windows of the
#: lean-step series (``info=False``, the protocol ``VecTrainer`` runs).
#: The measured batch-step cost model is T(K) ~= f + p*K; the batched
#: commit pipeline moved most commit work into per-call grouped array ops
#: (raising f, which the ratio amortizes over K) and the lazy-info
#: protocol stopped building K info dicts per step, which together push
#: the lean median pair ratio to ~4.8x on this host — the floor leaves
#: margin for residual timer noise.
MIN_SOA_SCALING_K4_K64 = 4.0
#: Enforced ceiling on the SoA core's per-lane stepping cost p (us), from
#: the pairwise decomposition of the ``core`` protocol (``observe=False,
#: info=False`` — mask + decide + commit, the heuristic-evaluation fast
#: path).  Asserted on the *best* pair: per-window noise is one-sided
#: (slow machine phases inflate both t4 and t64), so the best pair is the
#: closest observation of the true cost.
MAX_SOA_CORE_PER_LANE_US = 7.0

K_VALUES = (1, 4, 16)
ENV_K_VALUES = (1, 4, 16, 64)
SOA_K_VALUES = (1, 4, 16, 64, 256)
TOTAL_TRAINING_STEPS = 4000
WARMUP_STEPS = 600
ENV_ONLY_STEPS = 4000
#: Vectorized step() calls timed per K in the steady-state measurement.
STEADY_BATCH_STEPS = {1: 2000, 4: 1000, 16: 600, 64: 300, 256: 120}
STEADY_WARMUP_BATCH_STEPS = 10
#: Safety margin on the steady-state episode length: every request consumes
#: at least one step, so ``warmup + batch_steps + margin`` requests per
#: episode guarantee no lane's episode ends inside the timed window (which
#: the measurement additionally asserts via ``episodes_completed``).
STEADY_REQUEST_MARGIN = 50
#: Interleaved scaling measurement: window pairs and per-window step counts.
SCALING_PAIRS = 10
#: The core-protocol row feeds the asserted ``p_us_best`` statistic — a min
#: over pairs, so extra pairs strictly improve robustness against host-speed
#: drift (each pair is one more chance to sample a fast host phase).  Pairs
#: inside one burst land in the same host phase, so when a whole burst is
#: slow the measurement is re-attempted after a pause: timing noise is
#: one-sided (contention only ever inflates the measurement), so taking the
#: best fit across time-separated attempts converges on the true cost.
CORE_SCALING_PAIRS = 16
CORE_SCALING_ATTEMPTS = 4
CORE_SCALING_RETRY_PAUSE_S = 5.0
SCALING_WINDOW_BATCH_STEPS = {4: 400, 64: 150}
SEED = 0

_BACKENDS = {"reference": VecPlacementEnv, "soa": SoAVecPlacementEnv}


def _scenario() -> Scenario:
    return reference_scenario(
        arrival_rate=0.8, num_edge_nodes=6, horizon=200.0, seed=SEED
    )


def _lane_specs(scenario: Scenario, num_lanes: int, env_config: EnvConfig):
    """Explicit per-lane specs with the standard derived workload seeds.

    The lane seeds must come from :func:`lane_workload_seed` — *not* from
    the scenario seed itself, which would give every lane the same workload
    stream; the derivation is asserted here so the benchmark can never
    silently measure K copies of one lane.
    """
    specs = lane_specs_from_scenarios(
        [scenario] * num_lanes, seed=SEED, env_config=env_config
    )
    for index, spec in enumerate(specs):
        expected = lane_workload_seed(SEED, index, scenario.name)
        assert spec.workload_seed == expected, (
            f"lane {index} workload seed {spec.workload_seed} is not the "
            f"derived lane seed {expected}; lanes must not be re-seeded "
            "from the scenario seed"
        )
    assert len({spec.workload_seed for spec in specs}) == num_lanes, (
        "derived lane workload seeds collide; lanes would replay the same "
        "request stream"
    )
    return specs


def _make_venv(num_lanes: int, backend: str = "reference"):
    specs = _lane_specs(
        _scenario(), num_lanes, EnvConfig(requests_per_episode=40)
    )
    return _BACKENDS[backend].from_specs(specs)


def _make_agent(venv) -> DQNAgent:
    # Deliberately the reference network size: the point of the benchmark is
    # the real per-step agent cost that lane-parallelism amortizes.
    config = DQNConfig(
        hidden_layers=(128, 128),
        batch_size=64,
        min_replay_size=128,
        epsilon_decay_steps=5000,
    )
    return DQNAgent(venv.state_dim, venv.num_actions, config=config, seed=SEED)


def measure_env_steps(
    num_lanes: int, total_steps: int, backend: str = "reference"
) -> Dict[str, float]:
    """Aggregate env transitions/s with masked-random actions (no agent)."""
    from benchmarks.common import measure_env_steps as shared_measure

    return shared_measure(_make_venv(num_lanes, backend), total_steps, seed=SEED)


def measure_steady_state_env_steps(
    num_lanes: int,
    batch_steps: int,
    warmup_batch_steps: int = STEADY_WARMUP_BATCH_STEPS,
    protocol: str = "full",
) -> Dict[str, float]:
    """SoA stepping throughput inside one episode (no boundary in-window).

    The untimed reset — per-lane workload generation plus request-view
    precomputation, identical work to what the reference backend spreads
    over its per-lane resets — is reported separately as
    ``episode_reset_s``.  The measurement refuses to report a window that
    crossed an episode boundary.  ``protocol`` selects the step keyword
    arguments (full / lean / core, see ``benchmarks.common.STEP_PROTOCOLS``).
    """
    from benchmarks.common import STEP_PROTOCOLS, masked_random_actions

    step_kwargs = STEP_PROTOCOLS[protocol]
    requests_per_episode = (
        batch_steps + warmup_batch_steps + STEADY_REQUEST_MARGIN
    )
    specs = _lane_specs(
        _scenario(),
        num_lanes,
        EnvConfig(requests_per_episode=requests_per_episode),
    )
    venv = SoAVecPlacementEnv.from_specs(specs)
    rng = np.random.default_rng(SEED)
    reset_start = time.perf_counter()
    venv.reset()
    reset_s = time.perf_counter() - reset_start
    for _ in range(warmup_batch_steps):
        venv.step(
            masked_random_actions(venv.valid_action_masks(), rng),
            **step_kwargs,
        )
    episodes_before = venv.episodes_completed
    start = time.perf_counter()
    for _ in range(batch_steps):
        venv.step(
            masked_random_actions(venv.valid_action_masks(), rng),
            **step_kwargs,
        )
    elapsed = time.perf_counter() - start
    assert venv.episodes_completed == episodes_before, (
        f"K={num_lanes}: the steady-state window crossed an episode "
        "boundary; raise STEADY_REQUEST_MARGIN"
    )
    steps = batch_steps * num_lanes
    return {
        "lanes": num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "episode_reset_s": reset_s,
        "requests_per_episode": requests_per_episode,
        "protocol": protocol,
    }


def measure_soa_scaling_pairwise(
    k_low: int = 4,
    k_high: int = 64,
    pairs: int = SCALING_PAIRS,
    window_batch_steps: Dict[int, int] = SCALING_WINDOW_BATCH_STEPS,
    protocol: str = "full",
) -> Dict[str, object]:
    """K-scaling of SoA stepping, measured in interleaved window pairs.

    On shared hosts the effective CPU speed drifts by tens of percent over
    seconds, so timing every ``k_low`` window and then every ``k_high``
    window can compare two different machine-speed phases and report an
    arbitrary ratio.  Both environments are therefore built once — with
    episodes long enough that no timed window crosses an episode boundary —
    and the two lane counts are timed in *adjacent* windows, pair by pair.
    Each pair yields one throughput ratio taken within one machine-speed
    phase; the distribution is summarized by its median (the asserted
    scaling number) and its best pair.  ``protocol`` selects the step
    keyword arguments (full / lean / core).
    """
    from benchmarks.common import STEP_PROTOCOLS, masked_random_actions

    step_kwargs = STEP_PROTOCOLS[protocol]
    windows = {k: window_batch_steps[k] for k in (k_low, k_high)}
    envs = {}
    for k, batch_steps in windows.items():
        requests_per_episode = (
            pairs * batch_steps
            + STEADY_WARMUP_BATCH_STEPS
            + STEADY_REQUEST_MARGIN
        )
        specs = _lane_specs(
            _scenario(), k, EnvConfig(requests_per_episode=requests_per_episode)
        )
        envs[k] = SoAVecPlacementEnv.from_specs(specs)
        envs[k].reset()
    rng = np.random.default_rng(SEED)

    def run_window(k: int) -> float:
        venv = envs[k]
        batch_steps = windows[k]
        episodes_before = venv.episodes_completed
        start = time.perf_counter()
        for _ in range(batch_steps):
            venv.step(
                masked_random_actions(venv.valid_action_masks(), rng),
                **step_kwargs,
            )
        elapsed = time.perf_counter() - start
        assert venv.episodes_completed == episodes_before, (
            f"K={k}: a scaling window crossed an episode boundary; raise "
            "STEADY_REQUEST_MARGIN"
        )
        return batch_steps * k / elapsed

    for k in (k_low, k_high):
        venv = envs[k]
        for _ in range(STEADY_WARMUP_BATCH_STEPS):
            venv.step(
                masked_random_actions(venv.valid_action_masks(), rng),
                **step_kwargs,
            )
    low_rates, high_rates, ratios = [], [], []
    for _ in range(pairs):
        low = run_window(k_low)
        high = run_window(k_high)
        low_rates.append(low)
        high_rates.append(high)
        ratios.append(high / low)
    for venv in envs.values():
        venv.close()
    ordered = sorted(ratios)
    return {
        "k_low": k_low,
        "k_high": k_high,
        "pairs": pairs,
        "window_batch_steps": {str(k): v for k, v in windows.items()},
        "protocol": protocol,
        "pair_ratios": ratios,
        "pair_env_steps_per_s": {
            str(k_low): low_rates,
            str(k_high): high_rates,
        },
        "median_ratio": ordered[len(ordered) // 2],
        "best_ratio": ordered[-1],
        "median_env_steps_per_s": {
            str(k_low): sorted(low_rates)[len(low_rates) // 2],
            str(k_high): sorted(high_rates)[len(high_rates) // 2],
        },
    }


def decompose_scaling_row(row: Dict[str, object]) -> Dict[str, object]:
    """Solve T(K) = f + p*K per interleaved window pair of a scaling row.

    Each pair times K_low and K_high in adjacent windows, so the two-point
    solve ``p = (t_high - t_low) / (k_high - k_low)``, ``f = t_low -
    k_low * p`` happens within one machine-speed phase — drift between
    pairs widens the spread but cannot bias a pair.  ``p_us_best`` (the
    smallest pair) is the assertion statistic: timing noise only ever
    *adds* time, so the best pair is the closest observation of the true
    per-lane cost.
    """
    k_low, k_high = row["k_low"], row["k_high"]
    rates = row["pair_env_steps_per_s"]
    p_list, f_list = [], []
    for low_rate, high_rate in zip(rates[str(k_low)], rates[str(k_high)]):
        t_low = k_low / low_rate * 1e6
        t_high = k_high / high_rate * 1e6
        p = (t_high - t_low) / (k_high - k_low)
        p_list.append(p)
        f_list.append(t_low - k_low * p)
    return {
        "protocol": row["protocol"],
        "pairs": row["pairs"],
        "p_us_pairs": p_list,
        "f_us_pairs": f_list,
        "p_us_median": sorted(p_list)[len(p_list) // 2],
        "p_us_best": min(p_list),
        "f_us_median": sorted(f_list)[len(f_list) // 2],
    }


def measure_kernel_timings(
    num_lanes: int = 64,
    batch_steps: int = 200,
    protocol: str = "lean",
) -> Dict[str, float]:
    """Per-phase kernel timers of a profiled SoA run (us per batch step).

    Builds the environment with ``profile=True`` so the mask / observe /
    commit / info phase spans accumulate (see
    ``SoAVecPlacementEnv.kernel_timings``), then reports each phase in
    microseconds per batched step plus the per-lane share of the whole
    step.  Instrumentation overhead is a few percent; the numbers feed the
    decomposition payload as a *qualitative* phase breakdown, not an
    asserted quantity.
    """
    from benchmarks.common import STEP_PROTOCOLS, masked_random_actions

    step_kwargs = STEP_PROTOCOLS[protocol]
    requests_per_episode = (
        batch_steps + STEADY_WARMUP_BATCH_STEPS + STEADY_REQUEST_MARGIN
    )
    specs = _lane_specs(
        _scenario(),
        num_lanes,
        EnvConfig(requests_per_episode=requests_per_episode),
    )
    venv = SoAVecPlacementEnv.from_specs(specs, profile=True)
    rng = np.random.default_rng(SEED)
    venv.reset()
    for _ in range(STEADY_WARMUP_BATCH_STEPS):
        venv.step(
            masked_random_actions(venv.valid_action_masks(), rng),
            **step_kwargs,
        )
    baseline = venv.kernel_timings()
    for _ in range(batch_steps):
        venv.step(
            masked_random_actions(venv.valid_action_masks(), rng),
            **step_kwargs,
        )
    timings = venv.kernel_timings()
    window = {key: timings[key] - baseline[key] for key in timings}
    steps = window.pop("steps")
    venv.close()
    per_batch_us = {
        f"{key[:-2]}_us": value / steps * 1e6 for key, value in window.items()
    }
    per_batch_us["lanes"] = num_lanes
    per_batch_us["batch_steps"] = steps
    per_batch_us["protocol"] = protocol
    per_batch_us["per_lane_us"] = per_batch_us["step_us"] / num_lanes
    return per_batch_us


def measure_training_loop(num_lanes: int, total_steps: int, warmup_steps: int) -> Dict[str, float]:
    """Training-loop throughput at K lanes over ``total_steps`` transitions.

    The loop body is the decision loop of ``VecTrainer.run_episodes``; for
    K=1 every batched agent call routes to its serial implementation, making
    the measurement the per-step cost of the serial ``Trainer``.  Warmup
    steps (replay fill + first updates) run untimed so all K are compared in
    the steady learning regime.
    """
    venv = _make_venv(num_lanes)
    agent = _make_agent(venv)
    states = venv.reset()

    def drive(steps_target: int) -> int:
        steps = 0
        nonlocal states
        while steps < steps_target:
            masks = venv.valid_action_masks()
            actions = agent.select_actions(states, masks)
            next_states, rewards, dones, _ = venv.step(actions)
            next_masks = venv.valid_action_masks()
            agent.observe_batch(states, actions, rewards, next_states, dones, next_masks)
            agent.update()
            states = next_states
            steps += venv.num_lanes
        return steps

    drive(warmup_steps)
    updates_before = agent.training_steps
    start = time.perf_counter()
    steps = drive(total_steps)
    elapsed = time.perf_counter() - start
    return {
        "lanes": num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "agent_batches_per_s": (steps / num_lanes) / elapsed,
        "gradient_updates": agent.training_steps - updates_before,
        "episodes_completed": venv.episodes_completed,
    }


def run_vecenv_benchmark(
    total_steps: int = TOTAL_TRAINING_STEPS,
    env_only_steps: int = ENV_ONLY_STEPS,
    warmup_steps: int = WARMUP_STEPS,
    k_values=K_VALUES,
    check_speedup: bool = True,
) -> Dict[str, object]:
    """Run all measurements, persist the JSON and check the speedup bars."""
    results: Dict[str, object] = {
        "config": {
            "scenario": _scenario().name,
            "k_values": list(k_values),
            "env_k_values": list(ENV_K_VALUES),
            "soa_k_values": list(SOA_K_VALUES),
            "total_training_steps": total_steps,
            "env_only_steps": env_only_steps,
            "warmup_steps": warmup_steps,
            "steady_state_batch_steps": dict(
                sorted((str(k), v) for k, v in STEADY_BATCH_STEPS.items())
            ),
            "steady_state_request_margin": STEADY_REQUEST_MARGIN,
            "scaling_pairs": SCALING_PAIRS,
            "scaling_window_batch_steps": {
                str(k): v for k, v in sorted(SCALING_WINDOW_BATCH_STEPS.items())
            },
            "agent": "dqn(128x128, batch=64)",
            "seed": SEED,
        },
        "env_steps": {
            "reference": {
                f"K={k}": measure_env_steps(
                    k, max(env_only_steps, 60 * k), backend="reference"
                )
                for k in ENV_K_VALUES
            },
            "soa": {
                f"K={k}": measure_env_steps(
                    k, max(env_only_steps, 60 * k), backend="soa"
                )
                for k in SOA_K_VALUES
            },
            "soa_steady_state": {
                f"K={k}": measure_steady_state_env_steps(k, STEADY_BATCH_STEPS[k])
                for k in SOA_K_VALUES
            },
            "soa_steady_state_lean": {
                f"K={k}": measure_steady_state_env_steps(
                    k, STEADY_BATCH_STEPS[k], protocol="lean"
                )
                for k in SOA_K_VALUES
            },
            # The asserted scaling series runs the lean protocol — the one
            # the vectorized trainer actually drives; the full-protocol
            # series rides along for comparison.
            "soa_scaling": measure_soa_scaling_pairwise(protocol="lean"),
            "soa_scaling_full": measure_soa_scaling_pairwise(protocol="full"),
        },
        "training_loop": {
            f"K={k}": measure_training_loop(k, total_steps, warmup_steps)
            for k in k_values
        },
    }
    # The asserted core fit is the best across time-separated attempts —
    # pairs within one burst share the host phase, and the noise is strictly
    # one-sided, so re-sampling after a pause only ever sharpens the fit.
    core_fit = None
    for attempt in range(1, CORE_SCALING_ATTEMPTS + 1):
        candidate = decompose_scaling_row(
            measure_soa_scaling_pairwise(
                protocol="core", pairs=CORE_SCALING_PAIRS
            )
        )
        if core_fit is None or candidate["p_us_best"] < core_fit["p_us_best"]:
            core_fit = candidate
        if core_fit["p_us_best"] <= MAX_SOA_CORE_PER_LANE_US:
            break
        if attempt < CORE_SCALING_ATTEMPTS:
            time.sleep(CORE_SCALING_RETRY_PAUSE_S)
    core_fit["attempts"] = attempt
    results["decomposition"] = {
        "model": "t_batch_us(K) = f_us + p_us * K, solved per interleaved pair",
        "per_lane_us_bar": MAX_SOA_CORE_PER_LANE_US,
        "asserted_on": "core.p_us_best",
        "full": decompose_scaling_row(results["env_steps"]["soa_scaling_full"]),
        "lean": decompose_scaling_row(results["env_steps"]["soa_scaling"]),
        "core": core_fit,
        "kernel_timings_k64": measure_kernel_timings(),
    }
    serial = results["training_loop"][f"K={k_values[0]}"]["env_steps_per_s"]
    env_steps = results["env_steps"]
    scaling_row = env_steps["soa_scaling"]
    speedups = {
        f"training_K{k}_vs_serial": results["training_loop"][f"K={k}"][
            "env_steps_per_s"
        ]
        / serial
        for k in k_values[1:]
    }
    speedups["env_steps_soa_K64_vs_K4"] = scaling_row["median_ratio"]
    speedups["env_steps_soa_K64_vs_K4_best_pair"] = scaling_row["best_ratio"]
    speedups["env_steps_soa_K64_vs_K4_full"] = env_steps["soa_scaling_full"][
        "median_ratio"
    ]
    speedups["env_steps_soa_vs_reference_K64"] = (
        env_steps["soa"]["K=64"]["env_steps_per_s"]
        / env_steps["reference"]["K=64"]["env_steps_per_s"]
    )
    results["speedups"] = speedups
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "vecenv.json")
    if check_speedup:
        top_k = k_values[-1]
        speedup = speedups[f"training_K{top_k}_vs_serial"]
        assert speedup >= MIN_SPEEDUP_K16, (
            f"K={top_k} training loop is only {speedup:.1f}x faster than the "
            f"serial trainer (required: {MIN_SPEEDUP_K16}x)"
        )
        scaling = speedups["env_steps_soa_K64_vs_K4"]
        assert scaling >= MIN_SOA_SCALING_K4_K64, (
            f"SoA stepping scales only {scaling:.1f}x from K=4 to K=64 "
            f"(median interleaved pair ratio, lean protocol; required: "
            f"{MIN_SOA_SCALING_K4_K64}x)"
        )
        per_lane = results["decomposition"]["core"]["p_us_best"]
        assert per_lane <= MAX_SOA_CORE_PER_LANE_US, (
            f"SoA core per-lane stepping cost is {per_lane:.1f} us on the "
            f"best interleaved pair (required: <= "
            f"{MAX_SOA_CORE_PER_LANE_US} us)"
        )
    return results


def check_lean_equivalence_probe(steps: int = 50, num_lanes: int = 8) -> int:
    """Assert a lean drive is bitwise-equal to a full drive, step by step.

    Two identically-seeded SoA environments are driven with the same
    action stream — one through the full protocol, one through
    ``info=False`` — and every step's rewards, dones, outcome codes and
    request-done flags (lean accessors vs info dicts) plus the final lane
    statistics must match exactly.  Returns the number of compared steps.
    """
    from benchmarks.common import masked_random_actions

    specs = _lane_specs(
        _scenario(), num_lanes, EnvConfig(requests_per_episode=10)
    )
    full_env = SoAVecPlacementEnv.from_specs(specs)
    lean_env = SoAVecPlacementEnv.from_specs(
        _lane_specs(_scenario(), num_lanes, EnvConfig(requests_per_episode=10))
    )
    rng_full = np.random.default_rng(SEED)
    rng_lean = np.random.default_rng(SEED)
    np.testing.assert_array_equal(full_env.reset(), lean_env.reset())
    from repro.core.vecenv import OUTCOME_CODE

    for _ in range(steps):
        masks = full_env.valid_action_masks()
        np.testing.assert_array_equal(masks, lean_env.valid_action_masks())
        actions = masked_random_actions(masks, rng_full)
        np.testing.assert_array_equal(
            actions, masked_random_actions(masks, rng_lean)
        )
        _, rewards_f, dones_f, infos = full_env.step(actions)
        _, rewards_l, dones_l, none_infos = lean_env.step(actions, info=False)
        assert none_infos is None
        np.testing.assert_array_equal(rewards_f, rewards_l)
        np.testing.assert_array_equal(dones_f, dones_l)
        codes = lean_env.last_outcome_codes()
        req_done = lean_env.last_request_done()
        for lane, info in enumerate(infos):
            assert codes[lane] == OUTCOME_CODE[info["outcome"]]
            assert bool(req_done[lane]) == bool(info["request_done"])
            if dones_f[lane]:
                assert (
                    lean_env.last_episode_stats(lane) == info["episode_stats"]
                )
    for stats_f, stats_l in zip(full_env.lane_stats(), lean_env.lane_stats()):
        assert stats_f.as_dict() == stats_l.as_dict()
    full_env.close()
    lean_env.close()
    return steps


def run_smoke() -> Dict[str, float]:
    """Seconds-fast perf regression guard for CI.

    Compares the serial training loop against K=16 over a few hundred steps
    (conservative 2x bar), checks lean-protocol SoA stepping scales from
    K=4 to K=64 with a three-pair interleaved measurement (the full
    ``MIN_SOA_SCALING_K4_K64`` floor on the median — the full benchmark
    asserts the same floor over more and longer window pairs), and runs
    the lean-vs-full equivalence probe (lean steps must be bitwise
    identical to full steps, not just faster).  Lane construction goes
    through :func:`_lane_specs`, which asserts every lane's workload seed
    is the derived ``lane_workload_seed`` — not a re-seed from the
    scenario seed.
    """
    serial = measure_training_loop(1, total_steps=400, warmup_steps=160)
    vec = measure_training_loop(16, total_steps=640, warmup_steps=160)
    speedup = vec["env_steps_per_s"] / serial["env_steps_per_s"]
    assert speedup >= 2.0, (
        f"K=16 training loop is only {speedup:.1f}x faster than serial on the "
        "smoke measurement (required: 2x)"
    )
    scaling_row = measure_soa_scaling_pairwise(
        pairs=3, window_batch_steps={4: 200, 64: 60}, protocol="lean"
    )
    scaling = scaling_row["median_ratio"]
    assert scaling >= MIN_SOA_SCALING_K4_K64, (
        f"SoA lean stepping scales only {scaling:.1f}x from K=4 to K=64 on "
        f"the smoke measurement (median of 3 interleaved pairs; required: "
        f"{MIN_SOA_SCALING_K4_K64}x)"
    )
    equivalence_steps = check_lean_equivalence_probe()
    return {
        "serial_env_steps_per_s": serial["env_steps_per_s"],
        "vec16_env_steps_per_s": vec["env_steps_per_s"],
        "speedup": speedup,
        "soa4_env_steps_per_s": scaling_row["median_env_steps_per_s"]["4"],
        "soa64_env_steps_per_s": scaling_row["median_env_steps_per_s"]["64"],
        "soa_scaling": scaling,
        "lean_equivalence_steps": equivalence_steps,
    }


def bench_vecenv(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_vecenv_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    top_k = results["config"]["k_values"][-1]
    assert results["speedups"][f"training_K{top_k}_vs_serial"] >= MIN_SPEEDUP_K16
    assert results["speedups"]["env_steps_soa_K64_vs_K4"] >= MIN_SOA_SCALING_K4_K64
    assert (
        results["decomposition"]["core"]["p_us_best"]
        <= MAX_SOA_CORE_PER_LANE_US
    )


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        smoke = run_smoke()
        print(
            f"vec-env smoke: serial {smoke['serial_env_steps_per_s']:.0f} "
            f"env-steps/s vs K=16 {smoke['vec16_env_steps_per_s']:.0f} "
            f"env-steps/s ({smoke['speedup']:.1f}x, bar: >= 2x); "
            f"soa stepping K=4 {smoke['soa4_env_steps_per_s']:.0f} vs "
            f"K=64 {smoke['soa64_env_steps_per_s']:.0f} "
            f"({smoke['soa_scaling']:.1f}x median of interleaved pairs, "
            f"bar: >= {MIN_SOA_SCALING_K4_K64}x, lean protocol); "
            f"lean-vs-full equivalence probe: "
            f"{smoke['lean_equivalence_steps']} bitwise-equal steps"
        )
        return
    results = run_vecenv_benchmark()
    print("env-only throughput (masked-random actions, aggregate steps/s)")
    for backend in ("reference", "soa"):
        for key, row in results["env_steps"][backend].items():
            print(f"  {backend:9s} {key:6s}: {row['env_steps_per_s']:10.0f}")
    print("soa steady-state stepping (episode boundaries excluded)")
    for series in ("soa_steady_state", "soa_steady_state_lean"):
        for key, row in results["env_steps"][series].items():
            print(
                f"  {row['protocol']:4s} {key:6s}: "
                f"{row['env_steps_per_s']:10.0f} steps/s "
                f"(episode reset {row['episode_reset_s']*1e3:.0f} ms, untimed)"
            )
    for series in ("soa_scaling", "soa_scaling_full"):
        scaling_row = results["env_steps"][series]
        print(
            f"soa K={scaling_row['k_low']} -> K={scaling_row['k_high']} "
            f"scaling, {scaling_row['protocol']} protocol "
            f"({scaling_row['pairs']} interleaved window pairs): "
            f"median {scaling_row['median_ratio']:.2f}x, "
            f"best {scaling_row['best_ratio']:.2f}x"
        )
    decomposition = results["decomposition"]
    print("per-step cost model t_batch_us(K) = f_us + p_us * K")
    for protocol in ("full", "lean", "core"):
        fit = decomposition[protocol]
        print(
            f"  {protocol:4s}: p median {fit['p_us_median']:5.2f} us, "
            f"best {fit['p_us_best']:5.2f} us; "
            f"f median {fit['f_us_median']:6.1f} us"
        )
    kernels = decomposition["kernel_timings_k64"]
    print(
        f"  K=64 {kernels['protocol']} phases (us/batch step): "
        f"mask {kernels['mask_us']:.0f}, observe {kernels['observe_us']:.0f}, "
        f"commit {kernels['commit_us']:.0f}, info {kernels['info_us']:.0f}, "
        f"step {kernels['step_us']:.0f} "
        f"({kernels['per_lane_us']:.1f} us/lane)"
    )
    print("training-loop throughput (DQN decision loop, env transitions/s)")
    for key, row in results["training_loop"].items():
        print(
            f"  {key:5s}: {row['env_steps_per_s']:10.0f} env-steps/s "
            f"({row['agent_batches_per_s']:8.0f} agent batches/s, "
            f"{row['gradient_updates']} updates)"
        )
    for name, value in results["speedups"].items():
        print(f"  {name}: {value:.1f}x")
    print(
        f"  bars: training K={results['config']['k_values'][-1]} >= "
        f"{MIN_SPEEDUP_K16}x, soa lean K=64/K=4 median pair ratio >= "
        f"{MIN_SOA_SCALING_K4_K64}x, core per-lane best-pair p <= "
        f"{MAX_SOA_CORE_PER_LANE_US} us"
    )


if __name__ == "__main__":
    main()
