"""Soak benchmark of the online serving loop (`repro.serving`).

Replays an MMPP trace with a sustained 4x-overload phase through a two-tier
budgeted fallback chain (slow learned-stand-in -> fast greedy) with
correlated fault-domain chaos injected mid-stream, and checks the robustness
contract end to end:

* the decision queue stays bounded at the admission high watermark,
* shed rate rises under the overload phase and *recovers* (hysteresis:
  shedding mode is both entered and exited),
* the fallback chain preempts over-budget decisions — some requests are won
  by the fallback tier — and decision latency never exceeds the summed tier
  budgets (p99 is checked against the budget at histogram-bin resolution),
* chains disrupted by an injected domain failure are re-placed or declared
  lost/expired within the bounded retry budget (every disruption resolves),
* the soak is memory-flat: the full run streams the trace lazily and traced
  heap growth between the early and late phase of the run stays bounded.

Decision latencies are synthetic (a deterministic per-request latency model
on each tier) so the timeout/fallback machinery is exercised reproducibly
and the full soak's wall-clock stays dominated by real placement work.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_serving.py            # full soak
    PYTHONPATH=src:. python benchmarks/bench_serving.py --smoke    # seconds
    PYTHONPATH=src:. python benchmarks/bench_serving.py --requests 200000

Raw numbers are persisted to ``benchmarks/results/serving.json``.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Dict, Iterable, Iterator, List, Optional

from repro.baselines import GreedyLeastLoadedPolicy, GreedyNearestPolicy
from repro.core.timeout import BudgetedPolicy
from repro.nfv.sfc import SFCRequest
from repro.serving import (
    AdmissionConfig,
    FallbackChain,
    OnlinePlacementService,
    ServingConfig,
    ServingReport,
)
from repro.sim.arrivals import MMPPProcess
from repro.sim.failures import (
    DomainFailureConfig,
    DomainFailureInjector,
    fault_domains_from_network,
)
from repro.utils.rng import derive_seed
from repro.workloads.scenarios import reference_scenario

SEED = 20260808

#: Histogram bins are geometric at 20/decade, so a quantile read from a bin
#: upper edge can exceed the true value by at most 10^(1/20) ~ 1.122x.
HISTOGRAM_BIN_TOLERANCE = 1.125

#: Primary tier: 12 ms typical, 80 ms (over its 50 ms budget) on every 4th
#: request — a stand-in for a learned policy with a heavy-tail forward pass.
PRIMARY_BUDGET_S = 0.05
FALLBACK_BUDGET_S = 0.02


def primary_latency(request: SFCRequest) -> float:
    return 0.08 if request.request_id % 4 == 0 else 0.012


def fallback_latency(request: SFCRequest) -> float:
    return 0.004


def build_chain() -> FallbackChain:
    """The two-tier budgeted chain every mode of this benchmark serves with."""
    primary = BudgetedPolicy(
        GreedyLeastLoadedPolicy(),
        budget_s=PRIMARY_BUDGET_S,
        latency_model=primary_latency,
    )
    fallback = BudgetedPolicy(
        GreedyNearestPolicy(),
        budget_s=FALLBACK_BUDGET_S,
        latency_model=fallback_latency,
    )
    return FallbackChain([primary, fallback])


def build_service(
    horizon: float, queue_high: int = 24, queue_low: int = 6
) -> OnlinePlacementService:
    """Service over the reference topology with domain chaos injected.

    ``decision_time_scale=10`` maps the ~24 ms mean charged decision into
    ~0.24 virtual seconds of server occupancy, i.e. a decision-server
    capacity of ~4 req/s — which the MMPP high phase (16 req/s) overloads 4x.
    """
    scenario = reference_scenario(seed=SEED)
    network = scenario.build_network()
    chaos = DomainFailureInjector(
        fault_domains_from_network(network),
        DomainFailureConfig(
            mean_time_to_failure=250.0,
            mean_time_to_repair=60.0,
            seed=derive_seed(SEED, "chaos"),
        ),
    )
    config = ServingConfig(
        horizon=horizon,
        decision_time_scale=10.0,
        monitoring_interval=10.0,
        retry_base_delay=2.0,
        retry_backoff=2.0,
        retry_max_attempts=4,
        admission=AdmissionConfig(
            tokens_per_second=6.0,
            bucket_capacity=12.0,
            queue_high_watermark=queue_high,
            queue_low_watermark=queue_low,
        ),
    )
    return OnlinePlacementService(network, build_chain(), config, chaos=chaos)


def overload_trace(horizon: float) -> Iterator[SFCRequest]:
    """Stream an MMPP trace whose high phase runs at 4x service capacity."""
    scenario = reference_scenario(seed=SEED)
    generator = scenario.build_generator()
    process = MMPPProcess(
        low_rate=2.0,
        high_rate=16.0,
        mean_low_duration=120.0,
        mean_high_duration=60.0,
        seed=derive_seed(SEED, "arrivals"),
    )
    return generator.iter_trace(arrival_process=process, horizon=horizon)


def check_degradation(report: ServingReport, queue_high: int) -> List[str]:
    """The graceful-degradation contract; returns the assertion labels checked."""
    chain_budget = PRIMARY_BUDGET_S + FALLBACK_BUDGET_S
    latency = report.decision_latency
    admission = report.admission or {}
    assert report.arrivals > 0 and report.accepted > 0
    assert report.max_queue_depth <= queue_high, (
        f"queue depth {report.max_queue_depth} exceeded the admission "
        f"high watermark {queue_high}"
    )
    assert report.shed > 0, "overload phase never triggered shedding"
    assert admission.get("shed_mode_entries", 0) >= 1, "shedding mode never entered"
    assert admission.get("shed_mode_exits", 0) >= 1, (
        "shedding mode never exited — shed rate did not recover with hysteresis"
    )
    assert latency.max <= chain_budget + 1e-9, (
        f"decision latency {latency.max:.4f}s exceeded the summed tier "
        f"budgets {chain_budget:.4f}s"
    )
    assert latency.quantile(0.99) <= chain_budget * HISTOGRAM_BIN_TOLERANCE, (
        f"p99 decision latency {latency.quantile(0.99):.4f}s is over the "
        f"chain budget {chain_budget:.4f}s (bin tolerance included)"
    )
    timeouts = sum(report.tier_timeouts.values())
    assert timeouts > 0, "no tier ever blew its budget — fallback path untested"
    fallback_wins = report.tier_wins.get("1:greedy_nearest", 0)
    assert fallback_wins > 0, "the fallback tier never won a request"
    assert report.disrupted > 0, "domain chaos never disrupted a running chain"
    resolved = report.replaced + report.lost + report.expired
    assert resolved == report.disrupted, (
        f"{report.disrupted} disruptions but only {resolved} resolved "
        "(replaced + lost + expired) within the retry budget"
    )
    return [
        "queue_bounded",
        "shed_rises_and_recovers",
        "p99_under_budget",
        "fallback_fires",
        "disruptions_resolved",
    ]


def run_smoke() -> Dict[str, object]:
    """Seconds-fast serving smoke: short trace, every robustness path fires."""
    horizon = 600.0
    queue_high, queue_low = 24, 6
    service = build_service(horizon, queue_high, queue_low)
    start = time.perf_counter()
    report = service.run(overload_trace(horizon))
    elapsed = time.perf_counter() - start
    checked = check_degradation(report, queue_high)
    return {
        "mode": "smoke",
        "config": _config_dict(horizon),
        "report": report.as_dict(),
        "assertions": checked,
        "wall_clock_s": elapsed,
        "arrivals_per_s": report.arrivals / elapsed if elapsed > 0 else 0.0,
    }


class _MemorySampler:
    """Samples traced heap size every ``stride`` requests of a stream."""

    def __init__(self, stride: int) -> None:
        self.stride = stride
        self.samples: List[int] = []

    def wrap(self, stream: Iterable[SFCRequest]) -> Iterator[SFCRequest]:
        for count, request in enumerate(stream):
            if count % self.stride == 0:
                self.samples.append(tracemalloc.get_traced_memory()[0])
            yield request


def run_soak(target_requests: int = 1_000_000) -> Dict[str, object]:
    """The full soak: >= ``target_requests`` served memory-flat.

    The MMPP mean rate is ~8.7 req/s, so the horizon is sized from the
    target; memory flatness is asserted on traced-heap samples taken every
    2% of the stream (late-run samples must not drift above the early-run
    level by more than 20% + 4 MB slack).
    """
    mean_rate = (2.0 * 120.0 + 16.0 * 60.0) / (120.0 + 60.0)
    horizon = target_requests / mean_rate
    queue_high, queue_low = 24, 6
    service = build_service(horizon, queue_high, queue_low)
    sampler = _MemorySampler(stride=max(1, target_requests // 50))
    tracemalloc.start()
    try:
        start = time.perf_counter()
        report = service.run(sampler.wrap(overload_trace(horizon)))
        elapsed = time.perf_counter() - start
    finally:
        tracemalloc.stop()
    checked = check_degradation(report, queue_high)
    assert report.arrivals >= target_requests * 0.9, (
        f"soak produced only {report.arrivals} arrivals "
        f"(target {target_requests})"
    )
    samples = sampler.samples
    # Skip the warm-up samples (imports, first allocations); compare the
    # median of the second quarter against the maximum of the last quarter.
    quarter = max(1, len(samples) // 4)
    early = sorted(samples[quarter : 2 * quarter])[quarter // 2]
    late = max(samples[-quarter:])
    flat = late <= early * 1.2 + 4 * 1024 * 1024
    assert flat, (
        f"traced heap grew from {early / 1e6:.1f} MB (early) to "
        f"{late / 1e6:.1f} MB (late) over the soak — not memory-flat"
    )
    return {
        "mode": "soak",
        "config": _config_dict(horizon),
        "report": report.as_dict(),
        "assertions": checked + ["memory_flat"],
        "wall_clock_s": elapsed,
        "arrivals_per_s": report.arrivals / elapsed if elapsed > 0 else 0.0,
        "memory": {
            "samples_bytes": samples,
            "early_bytes": early,
            "late_bytes": late,
        },
    }


def _config_dict(horizon: float) -> Dict[str, object]:
    return {
        "seed": SEED,
        "horizon": horizon,
        "tier_budgets_s": [PRIMARY_BUDGET_S, FALLBACK_BUDGET_S],
        "decision_time_scale": 10.0,
        "mmpp": {
            "low_rate": 2.0,
            "high_rate": 16.0,
            "mean_low_duration": 120.0,
            "mean_high_duration": 60.0,
        },
        "admission": {
            "tokens_per_second": 6.0,
            "bucket_capacity": 12.0,
            "queue_high_watermark": 24,
            "queue_low_watermark": 6,
        },
        "chaos": {"mean_time_to_failure": 250.0, "mean_time_to_repair": 60.0},
        "retry": {"base_delay": 2.0, "backoff": 2.0, "max_attempts": 4},
    }


def _save(section: str, results: Dict[str, object]) -> None:
    """Update one section of ``serving.json``, preserving the other.

    The committed artifact carries both the CI-asserted smoke run and the
    full >= 1M-request soak; each mode refreshes only its own section.
    """
    import json

    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    path = RESULTS_DIR / "serving.json"
    payload: Dict[str, object] = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload[section] = results
    save_json(payload, path)


def bench_serving(benchmark) -> None:
    """pytest-benchmark entry point matching the other engineering benches."""
    results = benchmark.pedantic(
        run_soak, args=(200_000,), rounds=1, iterations=1, warmup_rounds=0
    )
    _save("soak", results)


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        results = run_smoke()
        _save("smoke", results)
        report = results["report"]
        print(
            f"serving smoke: {report['arrivals']} arrivals, "
            f"shed {report['shed_ratio']:.0%}, "
            f"accepted {report['accepted']}, "
            f"p99 decision {report['decision_latency_s']['p99'] * 1e3:.1f} ms "
            f"(budget {(PRIMARY_BUDGET_S + FALLBACK_BUDGET_S) * 1e3:.0f} ms), "
            f"disrupted {report['disrupted']} -> "
            f"replaced {report['replaced']} / lost {report['lost']} / "
            f"expired {report['expired']}; "
            f"assertions: {', '.join(results['assertions'])}"
        )
        return
    target = 1_000_000
    if "--requests" in sys.argv:
        target = int(sys.argv[sys.argv.index("--requests") + 1])
    results = run_soak(target)
    _save("soak", results)
    report = results["report"]
    print(
        f"serving soak: {report['arrivals']} arrivals in "
        f"{results['wall_clock_s']:.1f}s "
        f"({results['arrivals_per_s']:.0f} arrivals/s), "
        f"shed {report['shed_ratio']:.0%}, accepted {report['accepted']}, "
        f"max queue {report['max_queue_depth']}, "
        f"p99 decision {report['decision_latency_s']['p99'] * 1e3:.1f} ms, "
        f"disrupted {report['disrupted']} -> replaced {report['replaced']} / "
        f"lost {report['lost']} / expired {report['expired']}"
    )
    memory = results["memory"]
    print(
        f"memory: early {memory['early_bytes'] / 1e6:.1f} MB, "
        f"late {memory['late_bytes'] / 1e6:.1f} MB (flat)"
    )


if __name__ == "__main__":
    main()
