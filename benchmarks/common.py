"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one table or figure of the reconstructed
evaluation: it runs the corresponding ``repro.experiments`` function once
under ``pytest-benchmark`` (wall-clock of the full experiment), prints the
same rows/series the paper reports, and persists the raw data as JSON under
``benchmarks/results/``.

The benchmarks use :meth:`ExperimentConfig.fast` so the whole suite completes
in minutes on a laptop; pass ``REPRO_BENCH_PRESET=paper`` in the environment
to run the full-scale settings instead.

Result caching
--------------
Completed figure/table payloads are cached under ``benchmarks/results/cache``
keyed by a hash of the experiment configuration
(:class:`repro.experiments.parallel.ResultCache`).  Re-running a benchmark
with unchanged settings loads the cached series instead of retraining, which
makes iterating on assertions or plotting free.  Set ``REPRO_NO_CACHE=1`` to
always recompute (e.g. when measuring real experiment wall-clock).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ResultCache
from repro.experiments.reporting import print_figure, print_table
from repro.utils.serialization import save_json

#: Directory where each benchmark persists its raw series/rows.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def masked_random_actions(masks, rng):
    """One uniformly-random valid action per ``(K, A)`` mask row.

    The vectorized inverse-CDF draw the batched epsilon-greedy uses; shared
    by every env-throughput benchmark so the "random driver" costs the same
    everywhere.  Rows must have at least one valid action (placement masks
    always keep reject valid).
    """
    draws = (rng.random(masks.shape[0]) * masks.sum(axis=1)).astype(int)
    return (masks.cumsum(axis=1) > draws[:, None]).argmax(axis=1)


#: step() keyword arguments of each lean-step measurement protocol.  "full"
#: is the historical default; "lean" skips info-dict construction (the
#: trainer's protocol, see VecTrainer.run_episodes); "core" additionally
#: skips observation encoding (the heuristic-evaluation protocol).
STEP_PROTOCOLS = {
    "full": {},
    "lean": {"info": False},
    "core": {"observe": False, "info": False},
}


def measure_env_steps(
    venv, total_steps: int, seed: int = 0, protocol: str = "full"
) -> Dict[str, float]:
    """Aggregate env transitions/s with masked-random actions (no agent).

    The one measurement loop every env-throughput benchmark shares — sync or
    subprocess-backed, any lane count — so backend comparisons always time
    the identical protocol (reset, then masks → random actions → step until
    ``total_steps`` transitions).  ``protocol`` selects the step keyword
    arguments from :data:`STEP_PROTOCOLS`.
    """
    import time

    import numpy as np

    step_kwargs = STEP_PROTOCOLS[protocol]
    rng = np.random.default_rng(seed)
    venv.reset()
    steps = 0
    start = time.perf_counter()
    while steps < total_steps:
        venv.step(
            masked_random_actions(venv.valid_action_masks(), rng),
            **step_kwargs,
        )
        steps += venv.num_lanes
    elapsed = time.perf_counter() - start
    return {
        "lanes": venv.num_lanes,
        "env_steps": steps,
        "elapsed_s": elapsed,
        "env_steps_per_s": steps / elapsed,
        "protocol": protocol,
    }

#: Config-hash-keyed cache of completed figure/table payloads.
CACHE = ResultCache(RESULTS_DIR / "cache")


def bench_config() -> ExperimentConfig:
    """The experiment preset used by the benchmarks (fast by default)."""
    preset = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    if preset == "paper":
        return ExperimentConfig.paper()
    if preset == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.fast()


def _run_cached(
    benchmark, function: Callable[[ExperimentConfig], Dict], name: str
) -> Dict:
    """Run ``function`` under the benchmark timer, consulting the cache.

    On a cache hit the timed callable is the (near-instant) cached-payload
    return, so a re-run of the benchmark completes without retraining any
    agent; on a miss the full experiment runs and its payload is stored.
    """
    config = bench_config()
    cached = CACHE.load(name, config)
    if cached is not None:
        compute: Callable[[ExperimentConfig], Dict] = lambda _config: cached
    else:
        compute = function
    data = benchmark.pedantic(
        compute, args=(config,), rounds=1, iterations=1, warmup_rounds=0
    )
    if cached is None:
        CACHE.store(name, data, config)
    return data


def run_figure_benchmark(
    benchmark, figure_function: Callable[[ExperimentConfig], Dict], name: str
) -> Dict:
    """Run a figure-reproduction function once, print and persist its series."""
    data = _run_cached(benchmark, figure_function, name)
    print()
    print_figure(data)
    save_json(data, RESULTS_DIR / f"{name}.json")
    return data


def run_table_benchmark(
    benchmark, table_function: Callable[[ExperimentConfig], Dict], name: str
) -> Dict:
    """Run a table-reproduction function once, print and persist its rows."""
    data = _run_cached(benchmark, table_function, name)
    print()
    print_table(data)
    save_json(data, RESULTS_DIR / f"{name}.json")
    return data
