"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one table or figure of the reconstructed
evaluation: it runs the corresponding ``repro.experiments`` function once
under ``pytest-benchmark`` (wall-clock of the full experiment), prints the
same rows/series the paper reports, and persists the raw data as JSON under
``benchmarks/results/``.

The benchmarks use :meth:`ExperimentConfig.fast` so the whole suite completes
in minutes on a laptop; pass ``REPRO_BENCH_PRESET=paper`` in the environment
to run the full-scale settings instead.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import print_figure, print_table
from repro.utils.serialization import save_json

#: Directory where each benchmark persists its raw series/rows.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_config() -> ExperimentConfig:
    """The experiment preset used by the benchmarks (fast by default)."""
    preset = os.environ.get("REPRO_BENCH_PRESET", "fast").lower()
    if preset == "paper":
        return ExperimentConfig.paper()
    if preset == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.fast()


def run_figure_benchmark(
    benchmark, figure_function: Callable[[ExperimentConfig], Dict], name: str
) -> Dict:
    """Run a figure-reproduction function once, print and persist its series."""
    config = bench_config()
    data = benchmark.pedantic(
        figure_function, args=(config,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print_figure(data)
    save_json(data, RESULTS_DIR / f"{name}.json")
    return data


def run_table_benchmark(
    benchmark, table_function: Callable[[ExperimentConfig], Dict], name: str
) -> Dict:
    """Run a table-reproduction function once, print and persist its rows."""
    config = bench_config()
    data = benchmark.pedantic(
        table_function, args=(config,), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print_table(data)
    save_json(data, RESULTS_DIR / f"{name}.json")
    return data
