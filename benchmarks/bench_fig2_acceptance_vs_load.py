"""Fig. 2 — acceptance ratio vs request arrival rate, DRL vs baselines."""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_acceptance_vs_arrival


def bench_fig2_acceptance_vs_load(benchmark):
    data = run_figure_benchmark(benchmark, figure_acceptance_vs_arrival, "fig2_acceptance_vs_load")
    series = data["series"]
    assert "drl_dqn" in series
    # Every series is a valid acceptance-ratio curve.
    for values in series.values():
        assert len(values) == len(data["x"])
        assert all(0.0 <= v <= 1.0 for v in values)
    # Expected shape: acceptance does not improve as the load grows.
    drl = series["drl_dqn"]
    assert drl[-1] <= drl[0] + 0.1
    # Expected shape: the learned policy dominates first-fit across the sweep.
    assert sum(series["drl_dqn"]) >= sum(series["first_fit"])
    # The scenario-diverse vectorized env evaluation covers every load point
    # in one batched pass.  (Absent only in payloads cached before the vec-env
    # layer existed; run `make clean-cache` to regenerate.)
    if "env_eval" in data:
        env_eval = data["env_eval"]
        assert len(env_eval["acceptance_ratio"]) == len(data["x"])
        assert all(0.0 <= v <= 1.0 for v in env_eval["acceptance_ratio"])
