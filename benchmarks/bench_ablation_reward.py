"""Ablation A — reward-weight variants of the DRL controller.

Trains the controller under balanced, latency-focused, cost-focused and
acceptance-focused reward configurations and reports how each shifts the
acceptance/latency/cost operating point.
"""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_reward_ablation


def bench_ablation_reward_weights(benchmark):
    data = run_figure_benchmark(benchmark, figure_reward_ablation, "ablation_reward")
    variants = data["x"]
    assert set(variants) == {
        "balanced",
        "latency_focused",
        "cost_focused",
        "acceptance_focused",
    }
    for metric, values in data["series"].items():
        assert len(values) == len(variants), metric
    acceptance = dict(zip(variants, data["series"]["acceptance_ratio"]))
    # Every variant must still learn a usable policy at the fast preset.
    assert all(value > 0.2 for value in acceptance.values())
