"""Table I — simulation settings of the reference scenario.

Regenerates the static parameters table (topology, VNF catalog, chain
templates, workload and training settings) directly from the library objects.
"""

from benchmarks.common import run_table_benchmark
from repro.experiments.tables import table_simulation_settings


def bench_table1_simulation_settings(benchmark):
    data = run_table_benchmark(benchmark, table_simulation_settings, "table1_settings")
    assert data["topology"]["edge_nodes"] > 0
    assert len(data["vnf_catalog"]) == 7
    assert len(data["chain_templates"]) == 5
