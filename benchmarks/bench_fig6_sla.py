"""Fig. 6 — sensitivity to SLA strictness (latency-budget scale sweep)."""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_sla_sensitivity


def bench_fig6_sla_sensitivity(benchmark):
    data = run_figure_benchmark(benchmark, figure_sla_sensitivity, "fig6_sla_sensitivity")
    series = data["series"]
    scales = data["x"]
    assert scales == sorted(scales)
    for values in series.values():
        assert len(values) == len(scales)
        assert all(0.0 <= v <= 1.0 for v in values)
    # Expected shape: looser SLAs never hurt acceptance (weakly increasing
    # from the strictest to the loosest point) for the learned policy.
    drl = series["drl_dqn"]
    assert drl[-1] >= drl[0] - 0.05
    # Expected shape: the cloud-only policy benefits the most from loose SLAs
    # (it is the one crippled by strict latency budgets).
    cloud = series["cloud_only"]
    assert cloud[-1] >= cloud[0]
