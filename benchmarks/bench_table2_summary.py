"""Table II — summary comparison of the DRL controller vs all baselines.

Regenerates the reference-load comparison table: acceptance ratio, latency,
SLA violations, cost, revenue, profit and edge utilization per policy.
"""

from benchmarks.common import run_table_benchmark
from repro.experiments.tables import table_summary_comparison


def bench_table2_summary_comparison(benchmark):
    data = run_table_benchmark(benchmark, table_summary_comparison, "table2_summary")
    policies = {row["policy"] for row in data["rows"]}
    assert "drl_dqn" in policies
    assert {"random", "greedy_nearest", "first_fit", "viterbi"} <= policies

    by_name = {row["policy"]: row for row in data["rows"]}
    # Expected shape: the learned policy beats the load-oblivious packers.
    assert by_name["drl_dqn"]["acceptance_ratio"] >= by_name["first_fit"]["acceptance_ratio"]
