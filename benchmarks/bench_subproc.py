"""Microbenchmark of the process-parallel vectorized environment.

Measures aggregate environment-step throughput (masked-random actions, no
agent in the loop — the pure env-side cost the worker sharding parallelizes)
on the 16-edge reference grid:

* the sync :class:`~repro.core.vecenv.VecPlacementEnv` at K ∈ {16, 64} lanes
  (the single-process baseline), and
* :class:`~repro.core.subproc.SubprocVecPlacementEnv` at the same K sharded
  over W ∈ {1, 2, 4, 8} worker processes.

Every backend/K/W combination steps the *same* lane set (same scenario,
same derived seeds), so the measured work per step is identical and the
ratio isolates the sharding win (and the shared-memory/IPC overhead at
W=1).

The committed payload (``benchmarks/results/subproc.json``) records the
machine's usable core count next to the numbers: environment stepping is
pure CPU-bound Python, so the W=4 speedup only materializes with ≥ 4 usable
cores — on smaller machines the harness still records honest numbers (the
IPC overhead, roughly 1x or below) and skips the speedup assertion rather
than fabricating one.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_subproc.py             # full
    PYTHONPATH=src:. python benchmarks/bench_subproc.py --smoke     # seconds
    PYTHONPATH=src:. python benchmarks/bench_subproc.py --smoke --workers 2
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.env import EnvConfig
from repro.core.subproc import SubprocVecPlacementEnv, subproc_available
from repro.core.vecenv import VecPlacementEnv
from repro.workloads.scenarios import Scenario, reference_scenario

#: Required env-step speedup of W=4 over the sync baseline at equal K —
#: enforced only on machines with at least MIN_CORES_FOR_BAR usable cores.
MIN_SPEEDUP_W4 = 2.0
MIN_CORES_FOR_BAR = 4

K_VALUES = (16, 64)
W_VALUES = (1, 2, 4, 8)
TOTAL_STEPS = 3000
SEED = 0


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scenario() -> Scenario:
    return reference_scenario(
        arrival_rate=0.8, num_edge_nodes=16, horizon=200.0, seed=SEED
    )


def _env_config() -> EnvConfig:
    return EnvConfig(requests_per_episode=40)


def _make_sync(num_lanes: int) -> VecPlacementEnv:
    return VecPlacementEnv.from_scenario(
        _scenario(), num_lanes, seed=SEED, env_config=_env_config()
    )


def _make_subproc(num_lanes: int, num_workers: int) -> SubprocVecPlacementEnv:
    return SubprocVecPlacementEnv.from_scenario(
        _scenario(),
        num_lanes,
        seed=SEED,
        env_config=_env_config(),
        num_workers=num_workers,
    )


def measure_env_steps(venv, total_steps: int) -> Dict[str, float]:
    """Aggregate env transitions/s with masked-random actions (no agent)."""
    from benchmarks.common import measure_env_steps as shared_measure

    return shared_measure(venv, total_steps, seed=SEED)


def check_equivalence(num_lanes: int, num_workers: int, steps: int = 30) -> None:
    """Assert subproc trajectories are bitwise equal to sync (smoke guard)."""
    from benchmarks.common import masked_random_actions

    sync = _make_sync(num_lanes)
    sub = _make_subproc(num_lanes, num_workers)
    try:
        rng = np.random.default_rng(SEED)
        assert np.array_equal(sync.reset(), sub.reset())
        for _ in range(steps):
            masks = sync.valid_action_masks()
            assert np.array_equal(masks, sub.valid_action_masks())
            actions = masked_random_actions(masks, rng)
            sync_out = sync.step(actions)
            sub_out = sub.step(actions)
            for index in range(3):
                assert np.array_equal(sync_out[index], sub_out[index])
    finally:
        sub.close()


def run_subproc_benchmark(
    total_steps: int = TOTAL_STEPS,
    k_values: Sequence[int] = K_VALUES,
    w_values: Sequence[int] = W_VALUES,
    check_speedup: bool = True,
) -> Dict[str, object]:
    """Run the full grid, persist the JSON and check the core-gated bar."""
    if not subproc_available():  # pragma: no cover - non-fork platforms
        raise RuntimeError("subprocess environments unavailable on this platform")
    cores = usable_cores()
    results: Dict[str, object] = {
        "config": {
            "scenario": _scenario().name,
            "k_values": list(k_values),
            "w_values": list(w_values),
            "total_steps": total_steps,
            "requests_per_episode": _env_config().requests_per_episode,
            "seed": SEED,
            "cpu_count": cores,
        },
        "sync": {},
        "subproc": {},
        "speedups": {},
    }
    for num_lanes in k_values:
        sync_row = measure_env_steps(_make_sync(num_lanes), total_steps)
        results["sync"][f"K={num_lanes}"] = sync_row
        per_w: Dict[str, Dict[str, float]] = {}
        speedups: Dict[str, float] = {}
        for num_workers in w_values:
            venv = _make_subproc(num_lanes, num_workers)
            try:
                row = measure_env_steps(venv, total_steps)
            finally:
                venv.close()
            row["workers"] = venv.num_workers
            per_w[f"W={num_workers}"] = row
            speedups[f"W={num_workers}_vs_sync"] = (
                row["env_steps_per_s"] / sync_row["env_steps_per_s"]
            )
        results["subproc"][f"K={num_lanes}"] = per_w
        results["speedups"][f"K={num_lanes}"] = speedups
    bar_enforced = cores >= MIN_CORES_FOR_BAR
    w4_speedups = {
        k: results["speedups"][k].get("W=4_vs_sync") for k in results["speedups"]
    }
    results["speedup_bar"] = {
        "required_w4_speedup": MIN_SPEEDUP_W4,
        "min_cores": MIN_CORES_FOR_BAR,
        "enforced": bar_enforced,
        "met": (
            all(value >= MIN_SPEEDUP_W4 for value in w4_speedups.values())
            if bar_enforced
            else None
        ),
    }
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "subproc.json")
    if check_speedup and bar_enforced:
        for key, value in w4_speedups.items():
            assert value >= MIN_SPEEDUP_W4, (
                f"subproc W=4 at {key} is only {value:.2f}x the sync env "
                f"(required: {MIN_SPEEDUP_W4}x on a {cores}-core machine)"
            )
    return results


def run_smoke(num_workers: int = 2) -> Dict[str, float]:
    """Seconds-fast CI guard: bitwise equivalence plus a throughput probe.

    Always asserts subproc-vs-sync trajectory equivalence at K=16.  The
    speedup assertion (a conservative 1.2x at the requested worker count)
    engages only on machines with at least :data:`MIN_CORES_FOR_BAR` usable
    cores — environment stepping is CPU-bound Python, so fewer cores cannot
    parallelize it and the smoke would only measure IPC overhead.
    """
    num_lanes = 16
    check_equivalence(num_lanes, num_workers)
    sync_row = measure_env_steps(_make_sync(num_lanes), 800)
    venv = _make_subproc(num_lanes, num_workers)
    try:
        sub_row = measure_env_steps(venv, 800)
    finally:
        venv.close()
    speedup = sub_row["env_steps_per_s"] / sync_row["env_steps_per_s"]
    cores = usable_cores()
    if cores >= MIN_CORES_FOR_BAR:
        assert speedup >= 1.2, (
            f"W={num_workers} subproc env is only {speedup:.2f}x the sync env "
            f"on the smoke measurement (required: 1.2x on a {cores}-core machine)"
        )
    return {
        "sync_env_steps_per_s": sync_row["env_steps_per_s"],
        "subproc_env_steps_per_s": sub_row["env_steps_per_s"],
        "workers": num_workers,
        "speedup": speedup,
        "cpu_count": cores,
        "speedup_enforced": cores >= MIN_CORES_FOR_BAR,
    }


def bench_subproc(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_subproc_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    assert set(results["subproc"]) == {f"K={k}" for k in results["config"]["k_values"]}


def _flag_value(argv, flag: str) -> Optional[str]:
    if flag in argv:
        index = argv.index(flag)
        if index + 1 < len(argv):
            return argv[index + 1]
    return None


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        workers = int(_flag_value(sys.argv, "--workers") or 2)
        smoke = run_smoke(num_workers=workers)
        bar = "enforced" if smoke["speedup_enforced"] else "recorded only"
        print(
            f"subproc smoke: equivalence OK; sync {smoke['sync_env_steps_per_s']:.0f} "
            f"env-steps/s vs W={smoke['workers']} {smoke['subproc_env_steps_per_s']:.0f} "
            f"env-steps/s ({smoke['speedup']:.2f}x on {smoke['cpu_count']} cores, "
            f"bar {bar})"
        )
        return
    results = run_subproc_benchmark()
    cores = results["config"]["cpu_count"]
    print(f"env-step throughput on {cores} usable cores (aggregate steps/s)")
    for k_key, sync_row in results["sync"].items():
        print(f"  sync    {k_key:6s}: {sync_row['env_steps_per_s']:10.0f}")
        for w_key, row in results["subproc"][k_key].items():
            speedup = results["speedups"][k_key][f"{w_key}_vs_sync"]
            print(
                f"  subproc {k_key:6s} {w_key:4s}: {row['env_steps_per_s']:10.0f}"
                f"  ({speedup:.2f}x vs sync)"
            )
    bar = results["speedup_bar"]
    status = (
        f"met={bar['met']}" if bar["enforced"] else "not enforced (too few cores)"
    )
    print(
        f"speedup bar: W=4 >= {bar['required_w4_speedup']}x with >= "
        f"{bar['min_cores']} cores — {status}"
    )


if __name__ == "__main__":
    main()
