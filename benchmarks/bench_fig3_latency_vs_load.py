"""Fig. 3 — mean end-to-end latency of accepted requests vs arrival rate."""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_latency_vs_arrival


def bench_fig3_latency_vs_load(benchmark):
    data = run_figure_benchmark(benchmark, figure_latency_vs_arrival, "fig3_latency_vs_load")
    series = data["series"]
    for values in series.values():
        assert len(values) == len(data["x"])
        assert all(v >= 0.0 for v in values)
    # Expected shape: cloud-only pays the WAN round trip at every load point,
    # so its latency exceeds the learned policy's.
    assert sum(series["cloud_only"]) > sum(series["drl_dqn"]) * 0.9
    # Expected shape: the random policy has the worst (or near-worst) latency.
    assert max(series["random"]) >= max(series["drl_dqn"]) * 0.8
