"""Fig. 4 — mean operational cost per accepted request vs arrival rate."""

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_cost_vs_arrival


def bench_fig4_cost_vs_load(benchmark):
    data = run_figure_benchmark(benchmark, figure_cost_vs_arrival, "fig4_cost_vs_load")
    series = data["series"]
    for values in series.values():
        assert len(values) == len(data["x"])
        assert all(v >= 0.0 for v in values)
    # Expected shape: the cloud-only strategy has the lowest per-request
    # hosting cost (cheap central resources), the random policy among the
    # highest (long paths, expensive edge nodes); the DRL policy sits between.
    assert sum(series["cloud_only"]) <= sum(series["drl_dqn"])
    assert sum(series["drl_dqn"]) <= sum(series["random"]) * 1.2
