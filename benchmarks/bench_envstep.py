"""Microbenchmark of the vectorized environment core.

Measures the throughput of the placement-environment hot path in two
implementations over the *same* topology, workload and action sequence:

* ``reference`` — the pre-change per-query path: networkx Dijkstra on every
  latency query (``network.routing = "per_query"``), per-node Python loops
  for state encoding, action masking and placement feasibility;
* ``vectorized`` — the current implementation: precomputed all-pairs latency
  matrix with next-hop reconstruction, array-backed substrate ledger, and
  batched state/mask encoding (``network.routing = "dense"``, the default).

For transparency a third mode, ``cached``, re-measures the reference loops on
top of the seed's memoized-Dijkstra path cache (the best the object code
ever did within an episode).

It also measures raw latency-lookup throughput as a function of topology
size, which should stay near-constant for the dense matrix.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_envstep.py

Raw numbers are persisted to ``benchmarks/results/envstep.json``; the script
asserts the vectorized ``env.step()`` loop is at least 10x faster than the
per-query reference for the default topology.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.core.env import EnvConfig, VNFPlacementEnv
from repro.substrate.network import DenseRouting
from repro.substrate.topology import (
    TopologyConfig,
    metro_edge_cloud_topology,
    scaled_topology,
)
from repro.workloads.generator import RequestGenerator, WorkloadConfig

#: Required speedup of the dense env.step() loop over the per-query reference.
MIN_SPEEDUP = 10.0

EPISODES = 4
REQUESTS_PER_EPISODE = 60
SEED = 0


def _make_env(routing: str, topology: TopologyConfig = None) -> VNFPlacementEnv:
    network = metro_edge_cloud_topology(topology or TopologyConfig(seed=SEED))
    network.routing = routing
    generator = RequestGenerator(network, config=WorkloadConfig(seed=SEED))
    return VNFPlacementEnv(
        network,
        generator,
        config=EnvConfig(requests_per_episode=REQUESTS_PER_EPISODE),
    )


def _drive_episodes(env: VNFPlacementEnv, episodes: int) -> Dict[str, float]:
    """Run masked-random episodes; returns steps/s over the decision loop.

    Each step performs exactly what a training loop performs per decision:
    one ``valid_action_mask()``, one ``step()`` and one state encoding (the
    encoding happens inside ``step`` when it observes the next state).
    Request sampling (``env.reset``) and the random-action draw happen
    outside the timed section so the numbers isolate the environment cost.
    """
    rng = np.random.default_rng(SEED)
    steps = 0
    accepted = 0
    elapsed = 0.0
    for _ in range(episodes):
        env.reset()
        draws = iter(rng.random(size=64 * REQUESTS_PER_EPISODE).tolist())
        done = False
        start = time.perf_counter()
        while not done:
            mask = env.valid_action_mask()
            choices = np.flatnonzero(mask)
            action = int(choices[int(next(draws) * len(choices))])
            _, _, done, info = env.step(action)
            steps += 1
            if info.get("outcome") == "accepted":
                accepted += 1
        elapsed += time.perf_counter() - start
    return {
        "steps": steps,
        "accepted_requests": accepted,
        "elapsed_s": elapsed,
        "steps_per_s": steps / elapsed,
    }


def measure_env_step() -> Dict[str, Dict[str, float]]:
    """steps/s of the reference, cached and vectorized env.step() loops."""
    results: Dict[str, Dict[str, float]] = {}
    for mode, label in (
        ("per_query", "reference_per_query"),
        ("cached", "reference_cached"),
        ("dense", "vectorized"),
    ):
        env = _make_env(mode)
        _drive_episodes(env, 1)  # warm caches / JIT-ish effects out of the timing
        results[label] = _drive_episodes(env, EPISODES)
    results["speedup_vs_per_query"] = {
        "value": results["vectorized"]["steps_per_s"]
        / results["reference_per_query"]["steps_per_s"]
    }
    results["speedup_vs_cached"] = {
        "value": results["vectorized"]["steps_per_s"]
        / results["reference_cached"]["steps_per_s"]
    }
    return results


def measure_latency_lookups(
    sizes: List[int] = [16, 32, 64, 128], lookups: int = 20_000
) -> List[Dict[str, float]]:
    """Latency-lookup throughput vs topology size (dense should be ~flat)."""
    rows: List[Dict[str, float]] = []
    for size in sizes:
        network = scaled_topology(size, seed=SEED)
        ids = network.node_ids
        rng = np.random.default_rng(SEED)
        pairs = [
            (int(a), int(b))
            for a, b in zip(
                rng.choice(ids, size=lookups), rng.choice(ids, size=lookups)
            )
        ]
        start = time.perf_counter()
        DenseRouting(network)  # fresh build: generators pre-warm their own
        build_s = time.perf_counter() - start

        start = time.perf_counter()
        for a, b in pairs:
            network.latency_between(a, b)
        dense_rate = lookups / (time.perf_counter() - start)

        network.routing = "per_query"
        subset = pairs[:500]
        start = time.perf_counter()
        for a, b in subset:
            network.latency_between(a, b)
        per_query_rate = len(subset) / (time.perf_counter() - start)
        network.routing = "dense"

        rows.append(
            {
                "num_nodes": len(ids),
                "matrix_build_s": build_s,
                "dense_lookups_per_s": dense_rate,
                "per_query_lookups_per_s": per_query_rate,
            }
        )
    return rows


def run_envstep_benchmark(
    episodes: int = EPISODES, check_speedup: bool = True
) -> Dict[str, object]:
    """Run both microbenchmarks, persist the JSON and check the speedup bar."""
    results: Dict[str, object] = {
        "config": {
            "topology": "metro_edge_cloud_topology(default)",
            "episodes": episodes,
            "requests_per_episode": REQUESTS_PER_EPISODE,
            "seed": SEED,
        },
        "env_step": measure_env_step(),
        "latency_lookups": measure_latency_lookups(),
    }
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "envstep.json")
    speedup = results["env_step"]["speedup_vs_per_query"]["value"]
    if check_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized env.step() is only {speedup:.1f}x faster than the "
            f"per-query reference (required: {MIN_SPEEDUP}x)"
        )
    return results


def run_smoke() -> Dict[str, float]:
    """Tiny perf regression guard for CI: a 7-node topology, ~300 steps.

    Asserts the dense env path has not regressed below a conservative 2x
    speedup over the per-query reference; completes in a few seconds.
    (Behavioral equivalence is NOT asserted here — equal-latency path ties
    can legitimately diverge the two backends' trajectories; the equivalence
    guarantees live in tests/test_substrate_vectorized.py with proper
    tolerances.)
    """
    topology = TopologyConfig(
        num_edge_nodes=6, num_metros=2, cities=("new_york", "chicago"), seed=SEED
    )
    outcomes = {}
    for mode in ("per_query", "dense"):
        env = _make_env(mode, topology)
        _drive_episodes(env, 1)  # warm-up
        outcomes[mode] = _drive_episodes(env, 2)
    speedup = (
        outcomes["dense"]["steps_per_s"] / outcomes["per_query"]["steps_per_s"]
    )
    assert speedup >= 2.0, (
        f"dense env.step() is only {speedup:.1f}x faster than the per-query "
        "reference on the smoke topology (required: 2x)"
    )
    return {
        "steps": outcomes["dense"]["steps"],
        "accepted_requests": outcomes["dense"]["accepted_requests"],
        "dense_steps_per_s": outcomes["dense"]["steps_per_s"],
        "per_query_steps_per_s": outcomes["per_query"]["steps_per_s"],
        "speedup": speedup,
    }


def bench_envstep(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_envstep_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    assert results["env_step"]["speedup_vs_per_query"]["value"] >= MIN_SPEEDUP


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        smoke = run_smoke()
        print(
            f"env-step smoke: {smoke['steps']} steps, "
            f"dense {smoke['dense_steps_per_s']:.0f} steps/s vs "
            f"per-query {smoke['per_query_steps_per_s']:.0f} steps/s "
            f"({smoke['speedup']:.1f}x, bar: >= 2x)"
        )
        return
    results = run_envstep_benchmark()
    env_step = results["env_step"]
    print("env.step() full agent loop (steps/s, default topology)")
    print(f"  per-query reference : {env_step['reference_per_query']['steps_per_s']:10.0f}")
    print(f"  cached reference    : {env_step['reference_cached']['steps_per_s']:10.0f}")
    print(f"  vectorized          : {env_step['vectorized']['steps_per_s']:10.0f}")
    print(
        f"  speedup             : {env_step['speedup_vs_per_query']['value']:7.1f}x "
        f"vs per-query (bar: >= {MIN_SPEEDUP}x), "
        f"{env_step['speedup_vs_cached']['value']:.1f}x vs cached"
    )
    print("latency lookups (per second)")
    for row in results["latency_lookups"]:
        print(
            f"  n={row['num_nodes']:4d}  dense {row['dense_lookups_per_s']:12.0f}"
            f"  per-query {row['per_query_lookups_per_s']:10.0f}"
            f"  (matrix build {row['matrix_build_s'] * 1e3:.1f} ms)"
        )


if __name__ == "__main__":
    main()
