"""Microbenchmark of the vectorized training hot path.

Measures the throughput (transitions/second) of the DQN learning step in two
implementations:

* ``per_sample`` — the seed's original scalar hot path: each transition in the
  minibatch gets its own target-network forward, its own online forward and
  its own single-row ``fit_batch`` regression (reimplemented here verbatim so
  the comparison survives the refactor it motivates);
* ``batched`` — the current implementation: one vectorized forward/backward
  over the whole ``(batch, features)`` minibatch
  (:meth:`repro.agents.dqn.DQNAgent._learn_from_batch`).

It also measures replay sampling throughput against the seed's
list-of-objects storage (re-stacking ``batch_size`` Python objects per call)
versus the pre-allocated contiguous ring buffer.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_hotpath.py

or through the pytest-benchmark harness like the figure benchmarks.  Raw
numbers are persisted to ``benchmarks/results/hotpath.json``; the script
asserts the batched DQN update is at least 5x faster than the per-sample
loop.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.agents.replay import ReplayBuffer, Transition

STATE_DIM = 32
NUM_ACTIONS = 12
BATCH_SIZE = 64
MIN_SPEEDUP = 5.0


def _make_agent(seed: int = 0) -> DQNAgent:
    config = DQNConfig(
        hidden_layers=(128, 128),
        batch_size=BATCH_SIZE,
        min_replay_size=BATCH_SIZE,
        replay_capacity=10_000,
    )
    return DQNAgent(STATE_DIM, NUM_ACTIONS, config=config, seed=seed)


def _fill_replay(agent: DQNAgent, transitions: int, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(transitions):
        agent.replay.add(
            Transition(
                state=rng.normal(size=STATE_DIM),
                action=int(rng.integers(NUM_ACTIONS)),
                reward=float(rng.normal()),
                next_state=rng.normal(size=STATE_DIM),
                done=bool(rng.random() < 0.05),
                next_mask=np.ones(NUM_ACTIONS, dtype=bool),
            )
        )


def _per_sample_update(agent: DQNAgent, batch) -> None:
    """The seed's scalar hot path: train on one transition at a time."""
    for i in range(len(batch)):
        next_q = agent.q_values(batch.next_states[i], target=True)
        bootstrap = 0.0 if batch.dones[i] else float(np.max(next_q))
        target = batch.rewards[i] + agent.config.discount * bootstrap
        q_row = agent.q_values(batch.states[i]).copy()
        q_row[batch.actions[i]] = target
        mask = np.zeros(NUM_ACTIONS)
        mask[batch.actions[i]] = 1.0
        agent.online_network.fit_batch(
            batch.states[i].reshape(1, -1),
            q_row.reshape(1, -1),
            optimizer=agent.optimizer,
            loss=agent.loss,
            target_mask=mask.reshape(1, -1),
            max_grad_norm=agent.config.gradient_clip_norm,
        )


def measure_dqn_update(updates: int = 50) -> Dict[str, float]:
    """Transitions/second of the per-sample vs the batched DQN update."""
    per_sample_agent = _make_agent(seed=0)
    _fill_replay(per_sample_agent, 1000)
    start = time.perf_counter()
    for _ in range(updates):
        batch = per_sample_agent.replay.sample(BATCH_SIZE)
        _per_sample_update(per_sample_agent, batch)
    per_sample_tps = updates * BATCH_SIZE / (time.perf_counter() - start)

    batched_agent = _make_agent(seed=0)
    _fill_replay(batched_agent, 1000)
    start = time.perf_counter()
    for _ in range(updates):
        batch = batched_agent.replay.sample(BATCH_SIZE)
        batched_agent._learn_from_batch(batch)
    batched_tps = updates * BATCH_SIZE / (time.perf_counter() - start)

    return {
        "per_sample_transitions_per_s": per_sample_tps,
        "batched_transitions_per_s": batched_tps,
        "speedup": batched_tps / per_sample_tps,
    }


class _LegacyListReplay:
    """The seed's replay storage: Python objects stacked per ``sample()``."""

    def __init__(self, seed: int = 0) -> None:
        self._storage: List[Transition] = []
        self._rng = np.random.default_rng(seed)

    def add(self, transition: Transition) -> None:
        self._storage.append(transition)

    def sample(self, batch_size: int):
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        transitions = [self._storage[i] for i in indices]
        return (
            np.stack([np.asarray(t.state, dtype=float) for t in transitions]),
            np.array([t.action for t in transitions], dtype=int),
            np.array([t.reward for t in transitions], dtype=float),
            np.stack([np.asarray(t.next_state, dtype=float) for t in transitions]),
            np.array([t.done for t in transitions], dtype=bool),
            np.stack([np.asarray(t.next_mask, dtype=bool) for t in transitions]),
        )


def measure_replay_sampling(samples: int = 2000) -> Dict[str, float]:
    """Batches/second of legacy list-stacking vs contiguous-array sampling."""
    rng = np.random.default_rng(0)
    legacy = _LegacyListReplay(seed=0)
    vectorized = ReplayBuffer(capacity=10_000, seed=0)
    for _ in range(2000):
        transition = Transition(
            state=rng.normal(size=STATE_DIM),
            action=int(rng.integers(NUM_ACTIONS)),
            reward=float(rng.normal()),
            next_state=rng.normal(size=STATE_DIM),
            done=False,
            next_mask=np.ones(NUM_ACTIONS, dtype=bool),
        )
        legacy.add(transition)
        vectorized.add(transition)

    start = time.perf_counter()
    for _ in range(samples):
        legacy.sample(BATCH_SIZE)
    legacy_sps = samples / (time.perf_counter() - start)

    start = time.perf_counter()
    for _ in range(samples):
        vectorized.sample(BATCH_SIZE)
    vectorized_sps = samples / (time.perf_counter() - start)

    return {
        "legacy_batches_per_s": legacy_sps,
        "vectorized_batches_per_s": vectorized_sps,
        "speedup": vectorized_sps / legacy_sps,
    }


def run_hotpath_benchmark() -> Dict[str, Dict[str, float]]:
    """Run both microbenchmarks, persist the JSON and check the speedup bar."""
    results = {
        "dqn_update": measure_dqn_update(),
        "replay_sampling": measure_replay_sampling(),
    }
    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "hotpath.json")
    speedup = results["dqn_update"]["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"batched DQN update is only {speedup:.1f}x faster than the "
        f"per-sample loop (required: {MIN_SPEEDUP}x)"
    )
    return results


def bench_hotpath(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_hotpath_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    assert results["dqn_update"]["speedup"] >= MIN_SPEEDUP


def main() -> None:
    results = run_hotpath_benchmark()
    dqn = results["dqn_update"]
    replay = results["replay_sampling"]
    print("DQN minibatch update (transitions/s)")
    print(f"  per-sample loop : {dqn['per_sample_transitions_per_s']:12.0f}")
    print(f"  batched         : {dqn['batched_transitions_per_s']:12.0f}")
    print(f"  speedup         : {dqn['speedup']:9.1f}x  (bar: >= {MIN_SPEEDUP}x)")
    print("Replay sampling (batches/s)")
    print(f"  legacy list     : {replay['legacy_batches_per_s']:12.0f}")
    print(f"  contiguous ring : {replay['vectorized_batches_per_s']:12.0f}")
    print(f"  speedup         : {replay['speedup']:9.1f}x")


if __name__ == "__main__":
    main()
