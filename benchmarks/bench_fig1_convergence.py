"""Fig. 1 — training convergence of the DRL placement agent.

Regenerates the episode-reward learning curve (raw, smoothed, and periodic
greedy evaluations).
"""

import numpy as np

from benchmarks.common import run_figure_benchmark
from repro.experiments.figures import figure_training_convergence


def bench_fig1_training_convergence(benchmark):
    data = run_figure_benchmark(benchmark, figure_training_convergence, "fig1_convergence")
    rewards = data["series"]["episode_reward"]
    assert len(rewards) == len(data["x"])
    # Expected shape: reward trends upward — the last quarter of training
    # outperforms the first quarter.
    quarter = max(1, len(rewards) // 4)
    assert np.mean(rewards[-quarter:]) > np.mean(rewards[:quarter])
