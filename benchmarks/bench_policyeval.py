"""Microbenchmark of batched vs serial baseline-policy evaluation.

PR 4 unifies heuristics and learned agents behind one batched
``PlacementPolicy`` protocol so the comparison figures can evaluate every
policy through K vectorized environment lanes.  This benchmark guards the two
halves of that claim over a K=16 scenario-diverse load sweep:

* ``decision_throughput`` — the headline: for each kernelized heuristic, the
  time spent producing placement decisions per batched step (one
  ``(K, A)`` mask kernel + one vectorized ``select_actions``) versus the
  per-request reference backend (``plan_assignment`` per lane, i.e. exactly
  the per-request work the serial ``NFVSimulation`` loop does per policy
  decision).  Both drives run identically-seeded lane batches and the
  decisions are asserted identical step by step.  The aggregate speedup at
  K=16 must be **>= 4x**.
* ``sweep_eval`` — context numbers: end-to-end wall-clock of evaluating a
  policy over the whole 16-point sweep through vec lanes versus the serial
  per-request ``NFVSimulation`` loop, for a representative heuristic and for
  an (untrained, reference-size) DQN agent whose forward passes the vec path
  batches.  Recorded honestly, no bar: heuristic lanes pay environment
  bookkeeping the bare simulator does not, so their end-to-end win comes
  from the decision path above, while the agent side gains from batching
  one forward pass over K lanes.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_policyeval.py           # full
    PYTHONPATH=src:. python benchmarks/bench_policyeval.py --smoke   # seconds

Raw numbers are persisted to ``benchmarks/results/policyeval.json``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.agents.dqn import DQNAgent, DQNConfig
from repro.baselines import (
    BestFitPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
    GreedyCheapestPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
)
from repro.core.env import EnvConfig
from repro.core.policy import DRLPlacementPolicy
from repro.core.vecenv import VecPlacementEnv
from repro.experiments.runner import (
    evaluate_agent_across_scenarios,
    evaluate_baseline_across_scenarios,
)
from repro.sim.simulation import NFVSimulation, SimulationConfig
from repro.workloads.scenarios import Scenario, reference_scenario, scenario_grid

#: Required aggregate decision-throughput speedup of the batched path at K=16.
MIN_SPEEDUP_K16 = 4.0

K_LANES = 16
DECISION_STEPS = 400
SWEEP_EPISODES = 1
SEED = 0

#: The heuristics with vectorized ``select_actions`` kernels.
KERNEL_POLICIES: Dict[str, Callable[[], object]] = {
    "greedy_nearest": GreedyNearestPolicy,
    "greedy_least_loaded": GreedyLeastLoadedPolicy,
    "greedy_cheapest": GreedyCheapestPolicy,
    "first_fit": FirstFitPolicy,
    "best_fit": BestFitPolicy,
    "cloud_only": CloudOnlyPolicy,
    "edge_only": EdgeOnlyPolicy,
}


def _grid(num_lanes: int = K_LANES) -> List[Scenario]:
    # The paper's reference topology size: the decision-path comparison
    # should reflect the substrate the figures actually sweep.
    base = reference_scenario(
        arrival_rate=0.8, num_edge_nodes=16, horizon=200.0, seed=SEED
    )
    rates = [round(0.3 + 0.06 * i, 3) for i in range(num_lanes)]
    return scenario_grid(base, arrival_rates=rates)


def _env_config() -> EnvConfig:
    # Capacity-only masks: the serial reference (`hosting_candidates`) has no
    # latency pre-check either, so both paths see identical candidate sets.
    return EnvConfig(requests_per_episode=40, latency_mask_check=False)


def measure_decision_throughput(
    policy_factory: Callable[[], object],
    num_lanes: int = K_LANES,
    steps: int = DECISION_STEPS,
) -> Dict[str, float]:
    """Decision-path time of the batched kernel vs the per-request reference.

    Two identically-seeded lane batches advance in lockstep; only the
    decision work is timed (mask kernel + batched ``select_actions`` on one
    side, per-lane ``plan_assignment`` planning on the other).  Decisions
    are asserted identical at every step — the timing is only meaningful
    because the trajectories are.
    """
    grid = _grid(num_lanes)
    venv_batched = VecPlacementEnv.from_scenarios(
        grid, seed=SEED, env_config=_env_config()
    )
    venv_reference = VecPlacementEnv.from_scenarios(
        grid, seed=SEED, env_config=_env_config()
    )
    batched = policy_factory().bind_lanes(venv_batched)
    reference = policy_factory().bind_lanes(venv_reference)
    venv_batched.reset(observe=False)
    venv_reference.reset(observe=False)

    batched_s = 0.0
    reference_s = 0.0
    for _ in range(steps):
        start = time.perf_counter()
        masks = venv_batched.valid_action_masks()
        batched_actions = batched.select_actions(masks=masks)
        batched_s += time.perf_counter() - start

        start = time.perf_counter()
        reference_actions = reference.select_actions_reference()
        reference_s += time.perf_counter() - start

        assert np.array_equal(batched_actions, reference_actions), (
            f"{batched.name}: batched and reference decisions diverged"
        )
        venv_batched.step(batched_actions, observe=False)
        venv_reference.step(reference_actions, observe=False)

    decisions = steps * num_lanes
    return {
        "lanes": num_lanes,
        "decisions": decisions,
        "batched_s": batched_s,
        "reference_s": reference_s,
        "batched_decisions_per_s": decisions / batched_s,
        "reference_decisions_per_s": decisions / reference_s,
        "speedup": reference_s / batched_s,
    }


def measure_heuristic_sweep(
    policy_factory: Callable[[], object],
    num_lanes: int = K_LANES,
    episodes_per_scenario: int = SWEEP_EPISODES,
) -> Dict[str, float]:
    """End-to-end sweep evaluation: vec lanes vs serial per-request loop."""
    grid = _grid(num_lanes)

    start = time.perf_counter()
    vec_results = evaluate_baseline_across_scenarios(
        policy_factory(),
        grid,
        episodes_per_scenario=episodes_per_scenario,
        seed=SEED,
        env_config=_env_config(),
    )
    vec_s = time.perf_counter() - start
    vec_requests = 40 * episodes_per_scenario * num_lanes

    start = time.perf_counter()
    serial_requests = 0
    for cell in grid:
        network = cell.build_network()
        requests = cell.generate_requests()
        simulation = NFVSimulation(
            network,
            policy_factory(),
            SimulationConfig(horizon=cell.workload_config.horizon),
        )
        simulation.run(requests)
        serial_requests += len(requests)
    serial_s = time.perf_counter() - start

    return {
        "lanes": num_lanes,
        "vec_requests_per_s": vec_requests / vec_s,
        "serial_requests_per_s": serial_requests / serial_s,
        "speedup": (vec_requests / vec_s) / (serial_requests / serial_s),
        "vec_mean_acceptance": float(
            np.mean([r.mean_acceptance for r in vec_results])
        ),
    }


def measure_agent_sweep(
    num_lanes: int = K_LANES, episodes_per_scenario: int = SWEEP_EPISODES
) -> Dict[str, float]:
    """The DRL side: batched lane evaluation vs per-request serial policy."""
    grid = _grid(num_lanes)
    probe = VecPlacementEnv.from_scenarios(grid, seed=SEED, env_config=_env_config())
    agent = DQNAgent(
        probe.state_dim,
        probe.num_actions,
        DQNConfig(hidden_layers=(128, 128)),
        seed=SEED,
    )

    start = time.perf_counter()
    evaluate_agent_across_scenarios(
        agent,
        grid,
        episodes_per_scenario=episodes_per_scenario,
        seed=SEED,
        env_config=_env_config(),
    )
    vec_s = time.perf_counter() - start
    vec_requests = 40 * episodes_per_scenario * num_lanes

    start = time.perf_counter()
    serial_requests = 0
    for cell in grid:
        network = cell.build_network()
        requests = cell.generate_requests()
        policy = DRLPlacementPolicy(agent, network, cell.catalog)
        NFVSimulation(
            network, policy, SimulationConfig(horizon=cell.workload_config.horizon)
        ).run(requests)
        serial_requests += len(requests)
    serial_s = time.perf_counter() - start

    return {
        "lanes": num_lanes,
        "vec_requests_per_s": vec_requests / vec_s,
        "serial_requests_per_s": serial_requests / serial_s,
        "speedup": (vec_requests / vec_s) / (serial_requests / serial_s),
    }


def run_policyeval_benchmark(
    steps: int = DECISION_STEPS,
    num_lanes: int = K_LANES,
    check_speedup: bool = True,
    include_sweep: bool = True,
) -> Dict[str, object]:
    """Run all measurements, persist the JSON and check the speedup bar."""
    decision: Dict[str, Dict[str, float]] = {
        name: measure_decision_throughput(factory, num_lanes, steps)
        for name, factory in KERNEL_POLICIES.items()
    }
    total_batched = sum(row["batched_s"] for row in decision.values())
    total_reference = sum(row["reference_s"] for row in decision.values())
    aggregate = total_reference / total_batched
    results: Dict[str, object] = {
        "config": {
            "scenario_family": "reference-16edges load grid",
            "k_lanes": num_lanes,
            "decision_steps": steps,
            "kernel_policies": sorted(KERNEL_POLICIES),
            "seed": SEED,
        },
        "decision_throughput": decision,
        "aggregate_decision_speedup": aggregate,
    }
    if include_sweep:
        results["sweep_eval"] = {
            "greedy_nearest": measure_heuristic_sweep(GreedyNearestPolicy, num_lanes),
            "drl_dqn_untrained": measure_agent_sweep(num_lanes),
        }

    from benchmarks.common import RESULTS_DIR
    from repro.utils.serialization import save_json

    save_json(results, RESULTS_DIR / "policyeval.json")
    if check_speedup:
        assert aggregate >= MIN_SPEEDUP_K16, (
            f"batched baseline decisions are only {aggregate:.1f}x the serial "
            f"reference at K={num_lanes} (required: {MIN_SPEEDUP_K16}x)"
        )
    return results


def run_smoke() -> Dict[str, float]:
    """Seconds-fast perf regression guard for CI.

    Two representative kernels over a short drive, with a conservative 2x
    bar (the full benchmark's bar is 4x over a longer measurement).
    """
    rows = [
        measure_decision_throughput(GreedyNearestPolicy, K_LANES, steps=80),
        measure_decision_throughput(FirstFitPolicy, K_LANES, steps=80),
    ]
    total_batched = sum(row["batched_s"] for row in rows)
    total_reference = sum(row["reference_s"] for row in rows)
    speedup = total_reference / total_batched
    assert speedup >= 2.0, (
        f"batched baseline decisions are only {speedup:.1f}x the serial "
        "reference on the smoke measurement (required: 2x)"
    )
    return {
        "batched_decisions_per_s": sum(
            row["decisions"] for row in rows
        ) / total_batched,
        "reference_decisions_per_s": sum(
            row["decisions"] for row in rows
        ) / total_reference,
        "speedup": speedup,
    }


def bench_policyeval(benchmark) -> None:
    """pytest-benchmark entry point matching the figure benchmarks."""
    results = benchmark.pedantic(
        run_policyeval_benchmark, rounds=1, iterations=1, warmup_rounds=0
    )
    assert results["aggregate_decision_speedup"] >= MIN_SPEEDUP_K16


def main() -> None:
    import sys

    if "--smoke" in sys.argv:
        smoke = run_smoke()
        print(
            f"policy-eval smoke: batched {smoke['batched_decisions_per_s']:.0f} "
            f"decisions/s vs reference {smoke['reference_decisions_per_s']:.0f} "
            f"decisions/s ({smoke['speedup']:.1f}x, bar: >= 2x)"
        )
        return
    results = run_policyeval_benchmark()
    print(f"decision throughput at K={K_LANES} (batched kernel vs per-request reference)")
    for name, row in results["decision_throughput"].items():
        print(
            f"  {name:20s}: {row['batched_decisions_per_s']:9.0f} vs "
            f"{row['reference_decisions_per_s']:9.0f} decisions/s "
            f"({row['speedup']:.1f}x)"
        )
    print(
        f"  aggregate: {results['aggregate_decision_speedup']:.1f}x "
        f"(bar: >= {MIN_SPEEDUP_K16}x)"
    )
    for name, row in results.get("sweep_eval", {}).items():
        print(
            f"sweep end-to-end [{name}]: vec {row['vec_requests_per_s']:.0f} req/s "
            f"vs serial {row['serial_requests_per_s']:.0f} req/s "
            f"({row['speedup']:.2f}x)"
        )


if __name__ == "__main__":
    main()
