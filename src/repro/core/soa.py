"""Structure-of-arrays vectorized placement environment.

:class:`SoAVecPlacementEnv` is the batched counterpart of
:class:`~repro.core.vecenv.VecPlacementEnv`: instead of stepping K live
:class:`~repro.core.env.VNFPlacementEnv` objects (each carrying its own
substrate network, ledger and placement objects), it keeps **one** set of
cross-lane arrays

* ``node_used``  — ``(K, N, 3)`` node ledger (cpu/memory/storage),
* ``link_used``  — ``(K, E)`` link ledger,

over a single shared read-only *template* topology (capacities, unit costs,
the all-pairs latency matrix and routed paths are identical across lanes by
construction and therefore stored once), plus per-lane departure state in a
:class:`ColumnarDepartureStore`.  The step/mask/observe pipeline is fused:
one decision-context gather per step feeds the batched mask kernel, the
batched step-reward precompute and the batched state encoder.

The per-lane object path is retained as the reference backend; this class is
**bitwise-equivalent** to it — every arithmetic expression below mirrors the
reference operation order (see ``tests/differential.py`` for the harness that
enforces this).  The only intentional difference is memory layout: lanes
share constants and routed-path caches instead of duplicating them K times.
"""

from __future__ import annotations

import heapq
import os
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.env import EnvConfig, EpisodeStats
from repro.core.reward import RewardConfig
from repro.core.state import NODE_FEATURES, REQUEST_SCALARS, EncoderConfig
from repro.core.vecenv import (
    OUTCOME_CODE,
    OUTCOMES,
    LaneDecisionContext,
    LaneSpec,
    lane_specs_from_scenarios,
)
from repro.nfv.sfc import SFCRequest
from repro.nfv.sla import DEFAULT_NODE_AVAILABILITY
from repro.sim.failures import FailureConfig, FailureEvent, FailureInjector
from repro.substrate.network import NoRouteError, SubstrateNetwork
from repro.utils.rng import RandomState, derive_seed
from repro.workloads.scenarios import Scenario

from dataclasses import replace as dataclass_replace


class ColumnarDepartureStore:
    """Columnar event store for committed placements awaiting departure.

    The reference backend keeps one ``heapq`` of ``(departure_time, counter,
    Placement)`` tuples *per lane*, each Placement owning segment/instance
    objects.  Here every committed placement is one **record index** into
    parallel columns (lane id, departure time, bandwidth, hosting rows,
    per-instance demand arrays, per-segment link slots, distinct-row set,
    committed flag).  Per-lane heaps order ``(departure_time, counter,
    record)`` keys into this store — the ``(time, counter)`` key pair is
    identical to the reference heap keys, so heap-internal order (and hence
    the raw-heap iteration order used by failure teardown) is replicated
    exactly.  Freed records are recycled through a free list.
    """

    __slots__ = (
        "lane",
        "departure",
        "bandwidth",
        "rows",
        "demands",
        "segments",
        "row_sets",
        "committed",
        "_free",
    )

    def __init__(self) -> None:
        self.lane: List[int] = []
        self.departure: List[float] = []
        self.bandwidth: List[float] = []
        self.rows: List[Optional[Tuple[int, ...]]] = []
        self.demands: List[Optional[List[np.ndarray]]] = []
        self.segments: List[Optional[List[List[int]]]] = []
        self.row_sets: List[Optional[frozenset]] = []
        self.committed: List[bool] = []
        self._free: List[int] = []

    def alloc(
        self,
        lane: int,
        departure: float,
        bandwidth: float,
        rows: Tuple[int, ...],
        demands: List[List[float]],
        segments: List[List[int]],
        row_set: frozenset,
    ) -> int:
        """Store one committed placement; returns its record index."""
        if self._free:
            rec = self._free.pop()
            self.lane[rec] = lane
            self.departure[rec] = departure
            self.bandwidth[rec] = bandwidth
            self.rows[rec] = rows
            self.demands[rec] = demands
            self.segments[rec] = segments
            self.row_sets[rec] = row_set
            self.committed[rec] = True
        else:
            rec = len(self.lane)
            self.lane.append(lane)
            self.departure.append(departure)
            self.bandwidth.append(bandwidth)
            self.rows.append(rows)
            self.demands.append(demands)
            self.segments.append(segments)
            self.row_sets.append(row_set)
            self.committed.append(True)
        return rec

    def free(self, rec: int) -> None:
        """Recycle a record (after its heap entry has been popped)."""
        self.committed[rec] = False
        self.rows[rec] = None
        self.demands[rec] = None
        self.segments[rec] = None
        self.row_sets[rec] = None
        self._free.append(rec)

    @property
    def live_records(self) -> int:
        """Number of records currently allocated (diagnostics)."""
        return len(self.lane) - len(self._free)


class _RequestView:
    """Precomputed per-request constants consumed by the SoA step kernel."""

    __slots__ = (
        "request_id",
        "source_row",
        "dest_row",
        "sla",
        "min_avail",
        "bw",
        "holding",
        "arrival",
        "departure",
        "num_vnfs",
        "total_proc",
        "vnfs",
        "ctx_row",
        "demand_lists",
        "licenses",
    )

    def __init__(
        self,
        request_id: int,
        source_row: int,
        dest_row: Optional[int],
        sla: float,
        min_avail: float,
        bw: float,
        holding: float,
        arrival: float,
        departure: float,
        num_vnfs: int,
        total_proc: float,
        vnfs: List[tuple],
    ) -> None:
        self.request_id = request_id
        self.source_row = source_row
        self.dest_row = dest_row
        self.sla = sla
        self.min_avail = min_avail
        self.bw = bw
        self.holding = holding
        self.arrival = arrival
        self.departure = departure
        self.num_vnfs = num_vnfs
        self.total_proc = total_proc
        #: One tuple per VNF of the chain:
        #: (demand array, demand float list, processing delay, one-hot index,
        #:  license cost).
        self.vnfs = vnfs
        #: Decision-context row at the head of the chain (vnf_index 0, no
        #: partial placements); field order matches
        #: :meth:`SoAVecPlacementEnv.lane_decision_context`.
        head = vnfs[0]
        proc = head[2]
        self.ctx_row = (
            True,
            head[1],
            proc + 0.0,
            sla,
            holding,
            source_row,
            proc,
            head[3],
            num_vnfs,
            bw,
            0.0,
            0,
            num_vnfs,
        )
        #: Pregathered per-instance constants for the batched commit
        #: pipeline: the demand float lists / license costs in chain order
        #: (the lists alias the ``vnfs`` tuples, exactly like the reference
        #: gathers them).  The ``(num_vnfs, 3)`` demand rows are stacked
        #: lazily by the commit pipeline — only requests that actually reach
        #: commit pay for the array build, not the rejected ones.
        self.demand_lists = [vnf[1] for vnf in vnfs]
        self.licenses = [vnf[4] for vnf in vnfs]


class _LaneState:
    """Mutable per-lane bookkeeping (everything that is not an array)."""

    __slots__ = (
        "generator",
        "failure_config",
        "requests",
        "views",
        "request_index",
        "current",
        "vnf_index",
        "partial_rows",
        "partial_latency",
        "episode_done",
        "stats",
        "schedule",
        "failure_cursor",
        "failed_rows",
        "fences",
        "episode_counter",
        "heap",
        "counter",
    )

    def __init__(self, generator, failure_config: Optional[FailureConfig]) -> None:
        self.generator = generator
        self.failure_config = failure_config
        self.requests: List[SFCRequest] = []
        self.views: List[_RequestView] = []
        self.request_index = 0
        self.current: Optional[_RequestView] = None
        self.vnf_index = 0
        self.partial_rows: List[int] = []
        self.partial_latency = 0.0
        self.episode_done = True
        self.stats = EpisodeStats()
        self.schedule: List[FailureEvent] = []
        self.failure_cursor = 0
        self.failed_rows: set = set()
        self.fences: Dict[int, np.ndarray] = {}
        self.episode_counter = 0
        self.heap: List[Tuple[float, int, int]] = []
        self.counter = 0


def _resolved_configs(
    spec: LaneSpec,
) -> Tuple[EnvConfig, RewardConfig, EncoderConfig]:
    return (
        spec.env_config or EnvConfig(),
        spec.reward_config or RewardConfig(),
        spec.encoder_config or EncoderConfig(),
    )


def _network_signature(network: SubstrateNetwork) -> tuple:
    """Structural fingerprint used to validate cross-lane topology equality."""
    nodes = tuple(
        (
            node.node_id,
            node.tier.value,
            node.capacity.as_tuple(),
            node.cost_per_unit.as_tuple(),
            node.activation_cost,
        )
        for node in network.nodes()
    )
    links = tuple(
        (link.endpoints, link.bandwidth_capacity, link.latency_ms, link.cost_per_mbps)
        for link in network.links()
    )
    return (nodes, links)


class SoAVecPlacementEnv:
    """K placement lanes over one set of structure-of-arrays ledgers.

    Construction requires every lane to share one dense-routed topology (and
    one resolved env/reward/encoder configuration and catalog); a
    ``ValueError`` is raised otherwise — callers that need mixed lane sets
    fall back to the reference :class:`~repro.core.vecenv.VecPlacementEnv`
    (see :func:`~repro.core.subproc.make_vec_env` with ``backend="auto"``).
    """

    def __init__(
        self,
        specs: Sequence[LaneSpec],
        auto_reset: bool = True,
        lane_names: Optional[Sequence[str]] = None,
        profile: bool = False,
    ) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("SoAVecPlacementEnv needs at least one lane")
        self._specs = specs
        self.auto_reset = auto_reset
        if lane_names is not None and len(lane_names) != len(specs):
            raise ValueError(f"{len(lane_names)} lane names for {len(specs)} lanes")
        self.lane_names: List[str] = (
            list(lane_names)
            if lane_names is not None
            else [spec.name for spec in specs]
        )

        # ---- cross-lane compatibility validation ----------------------- #
        ref_env_cfg, ref_reward_cfg, ref_encoder_cfg = _resolved_configs(specs[0])
        ref_catalog = specs[0].scenario.catalog
        ref_names = list(ref_catalog.names)
        for index, spec in enumerate(specs[1:], start=1):
            env_cfg, reward_cfg, encoder_cfg = _resolved_configs(spec)
            if env_cfg != ref_env_cfg:
                raise ValueError(
                    f"lane {index} env config {env_cfg} differs from lane 0 "
                    f"{ref_env_cfg}; the SoA core requires one shared EnvConfig"
                )
            if reward_cfg != ref_reward_cfg:
                raise ValueError(
                    f"lane {index} reward config differs from lane 0; the SoA "
                    "core requires one shared RewardConfig"
                )
            if encoder_cfg != ref_encoder_cfg:
                raise ValueError(
                    f"lane {index} encoder config differs from lane 0; the SoA "
                    "core requires one shared EncoderConfig"
                )
            if list(spec.scenario.catalog.names) != ref_names:
                raise ValueError(
                    f"lane {index} catalog {list(spec.scenario.catalog.names)} "
                    f"differs from lane 0 {ref_names}; the SoA core requires "
                    "one shared VNF catalog"
                )

        network = specs[0].scenario.build_network()
        if network.routing != "dense":
            raise ValueError(
                f"the SoA core requires dense routing, got {network.routing!r}"
            )
        ref_signature = _network_signature(network)
        ref_matrix = network.latency_matrix
        seen_factories = {id(specs[0].scenario.topology_factory)}
        for index, spec in enumerate(specs[1:], start=1):
            factory = spec.scenario.topology_factory
            if id(factory) in seen_factories:
                continue
            seen_factories.add(id(factory))
            other = spec.scenario.build_network()
            if other.routing != "dense":
                raise ValueError(
                    f"lane {index} routes {other.routing!r}; the SoA core "
                    "requires dense routing on every lane"
                )
            if _network_signature(other) != ref_signature or not np.array_equal(
                other.latency_matrix, ref_matrix
            ):
                raise ValueError(
                    f"lane {index} topology differs structurally from lane 0; "
                    "the SoA core requires one shared topology across lanes"
                )

        # ---- shared template topology + constants ---------------------- #
        self._network = network
        ledger = network.ledger
        self._ledger = ledger
        self._num_nodes = ledger.num_nodes
        self._num_links = ledger.num_links
        self._latency = network.latency_matrix
        self._capacity = ledger.node_capacity
        self._capacity_safe = ledger.node_capacity_safe
        self._capacity_plus_tol = ledger._capacity_plus_tol
        self._cost_per_unit = ledger.node_cost_per_unit
        self._link_capacity = ledger.link_capacity
        # Python-float copies for the scalar commit/feasibility hot paths.
        self._capacity_rows = [tuple(row) for row in self._capacity.tolist()]
        self._cap_tol_rows = [tuple(row) for row in self._capacity_plus_tol.tolist()]
        self._cost_rows = [tuple(row) for row in self._cost_per_unit.tolist()]
        self._link_cap_list = self._link_capacity.tolist()
        self._node_row: Dict[int, int] = dict(ledger.node_row)
        self._row_ids: List[int] = list(ledger.node_ids)
        cloud = ledger.cloud_tier_mask
        self._row_avail = [
            DEFAULT_NODE_AVAILABILITY["cloud"] if bool(cloud[row]) else DEFAULT_NODE_AVAILABILITY["edge"]
            for row in range(self._num_nodes)
        ]

        # ---- resolved configuration ------------------------------------ #
        self.config = ref_env_cfg
        self._latency_mask_check = ref_env_cfg.latency_mask_check
        self._requests_per_episode = ref_env_cfg.requests_per_episode
        self._reward_config = ref_reward_cfg
        self._encoder_config = ref_encoder_cfg
        self._catalog = ref_catalog
        self._catalog_size = len(ref_catalog)
        self._reject_penalty = ref_reward_cfg.reject_penalty
        self._infeasible_penalty = ref_reward_cfg.infeasible_penalty
        self._accept_reward = ref_reward_cfg.accept_reward
        self._latency_weight = ref_reward_cfg.latency_weight
        self._cost_weight = ref_reward_cfg.cost_weight
        self._step_latency_weight = ref_reward_cfg.step_latency_weight
        self._step_cost_weight = ref_reward_cfg.step_cost_weight
        # Reference: load_balance_weight * 0.1 * utilization (left-assoc).
        self._balance_weight01 = ref_reward_cfg.load_balance_weight * 0.1
        self._revenue_scale = ref_reward_cfg.revenue_scale
        self._cost_normalizer = ref_reward_cfg.cost_normalizer
        self._max_chain_length = ref_encoder_cfg.max_chain_length
        self._bandwidth_normalizer = ref_encoder_cfg.bandwidth_normalizer_mbps
        self._holding_normalizer = ref_encoder_cfg.holding_time_normalizer

        # ---- SoA state arrays ------------------------------------------ #
        num_lanes = len(specs)
        self._node_used = np.zeros((num_lanes, self._num_nodes, 3))
        self._link_used = np.zeros((num_lanes, self._num_links))
        #: Python-float shadows of the usage ledgers for the scalar
        #: commit/feasibility/teardown paths.  Every scalar write mirrors
        #: into the numpy ledgers (which stay authoritative for the batched
        #: mask/observe kernels); bulk numpy mutations resync the shadow row.
        self._node_used_py: List[List[List[float]]] = [
            [[0.0, 0.0, 0.0] for _ in range(self._num_nodes)]
            for _ in range(num_lanes)
        ]
        self._link_used_py: List[List[float]] = [
            [0.0] * self._num_links for _ in range(num_lanes)
        ]
        #: (K, N) fence mask folded into the batched action-mask kernel; a
        #: lane's row is cleared on reset so stale fences never leak into the
        #: next episode's masks (regression-tested).
        self._fence_rows = np.zeros((num_lanes, self._num_nodes), dtype=bool)
        self._store = ColumnarDepartureStore()

        self._lanes: List[_LaneState] = []
        for spec in specs:
            lane_scenario = spec.scenario.with_workload_seed(spec.workload_seed)
            generator = lane_scenario.build_generator(self._network)
            self._lanes.append(_LaneState(generator, spec.failure_config))

        #: Per-VNFType constants keyed by type *name*; the value tuple holds
        #: the type object itself so hits can be identity-validated (see
        #: :meth:`_vnf_info` for why ``id()`` keys are unsafe).
        self._type_info: Dict[str, tuple] = {}
        #: (row pair) -> (latency, oriented slot list, cost-per-mbps) or the
        #: NoRoute sentinel; delegated to the shared template network/ledger
        #: caches so every lane reuses one routed-path set.
        self._paths: Dict[Tuple[int, int], Optional[Tuple[float, List[int], float]]] = {}
        #: Dense per-row-pair gather arrays over the same routed-path cache,
        #: lazily filled through :meth:`_ensure_pair`; they let the batched
        #: commit pipeline gather whole routing walks with array indexing
        #: instead of per-segment dict lookups.
        num_cells = self._num_nodes * self._num_nodes
        self._seg_known = np.zeros(num_cells, dtype=bool)
        self._seg_ok = np.zeros(num_cells, dtype=bool)
        self._seg_lat = np.zeros(num_cells)
        self._seg_cost = np.zeros(num_cells)
        self._seg_slots: List[Optional[List[int]]] = [None] * num_cells

        self.episodes_completed = 0
        self._decision_version = 0
        self._context: Optional[LaneDecisionContext] = None
        self._context_version = -1
        #: (K, N) "demands fit free capacity" matrix, shared between the mask
        #: and observation kernels of one decision step.
        self._canhost: Optional[np.ndarray] = None
        self._canhost_version = -1
        self._obs_extras: Optional[tuple] = None
        self._procs: Optional[Sequence[float]] = None
        #: Context row for lanes with no active request; field order must
        #: match the active-lane tuples in :meth:`lane_decision_context`.
        self._inactive_row = (
            False, (0.0, 0.0, 0.0), 0.0, 1.0, 0.0, 0, 0.0, 0, 0, 0.0, 0.0, 0, 1,
        )
        #: Per-lane decision-context rows, maintained incrementally at the
        #: two mutation sites (request advance, mid-chain placement) so the
        #: batched context never re-walks lane object graphs.
        self._ctx_rows: List[tuple] = [self._inactive_row] * num_lanes
        self._arange_k = np.arange(num_lanes)
        self._broadcast_cache: Dict[str, np.ndarray] = {}
        zero_state = np.zeros(self.state_dim, dtype=float)
        zero_state.setflags(write=False)
        self._zero_state = zero_state
        #: Lean-step outcome recording — always maintained, whether or not
        #: the caller requests info dicts, so ``step(..., info=False)`` loses
        #: no information (see ``last_outcome_codes`` and friends).
        self._out_codes: List[int] = [0] * num_lanes
        self._req_done: List[bool] = [False] * num_lanes
        self._req_ids: List[int] = [0] * num_lanes
        self._finished_stats: Dict[int, Dict[str, float]] = {}
        #: Cumulative per-phase kernel timers (mask / observe / commit /
        #: info), enabled via ``profile=True`` or ``REPRO_ENV_PROFILE=1``;
        #: disabled they cost one attribute check per phase.
        self._profile = bool(profile) or os.environ.get(
            "REPRO_ENV_PROFILE", ""
        ) == "1"
        self._timings: Dict[str, float] = {
            "mask_s": 0.0,
            "observe_s": 0.0,
            "commit_s": 0.0,
            "info_s": 0.0,
            "step_s": 0.0,
            "steps": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Construction from scenarios (mirrors VecPlacementEnv)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: Scenario,
        num_lanes: int,
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        failure_config: Optional[FailureConfig] = None,
        profile: bool = False,
    ) -> "SoAVecPlacementEnv":
        """K lanes of one scenario with independent derived workload seeds."""
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        return cls.from_scenarios(
            [scenario] * num_lanes,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            auto_reset=auto_reset,
            failure_config=failure_config,
            profile=profile,
        )

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[Scenario],
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        derive_lane_seeds: bool = True,
        failure_config: Optional[FailureConfig] = None,
        profile: bool = False,
    ) -> "SoAVecPlacementEnv":
        """One lane per scenario, with the standard per-lane seed derivation."""
        specs = lane_specs_from_scenarios(
            scenarios,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            derive_lane_seeds=derive_lane_seeds,
            failure_config=failure_config,
        )
        return cls.from_specs(specs, auto_reset=auto_reset, profile=profile)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[LaneSpec],
        auto_reset: bool = True,
        profile: bool = False,
    ) -> "SoAVecPlacementEnv":
        """Build one lane per :class:`LaneSpec`."""
        return cls(
            specs,
            auto_reset=auto_reset,
            lane_names=[spec.name for spec in specs],
            profile=profile,
        )

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_lanes(self) -> int:
        """Number of environment lanes (K)."""
        return len(self._lanes)

    @property
    def state_dim(self) -> int:
        """Width of each lane's observation vector."""
        return NODE_FEATURES * self._num_nodes + self._catalog_size + REQUEST_SCALARS

    @property
    def num_actions(self) -> int:
        """Number of discrete actions (one per node plus reject)."""
        return self._num_nodes + 1

    @property
    def backend(self) -> str:
        """Backend tag of this vectorized environment."""
        return "soa"

    # ------------------------------------------------------------------ #
    # Request views and routed paths
    # ------------------------------------------------------------------ #
    def _vnf_info(self, vnf_type) -> tuple:
        # Keyed by the (stable) type name rather than ``id(vnf_type)``: ids
        # are recycled after GC, so an id key could hand a brand-new type a
        # stale cached row.  The cached tuple keeps the type object, and a
        # hit is only honored when it is the *same object* — a same-named but
        # different type rebuilds the entry instead of reusing stale fields.
        info = self._type_info.get(vnf_type.name)
        if info is None or info[3] is not vnf_type:
            info = (
                vnf_type.processing_delay_ms,
                self._catalog.index_of(vnf_type.name),
                vnf_type.license_cost,
                vnf_type,
            )
            self._type_info[vnf_type.name] = info
        return info

    def _request_view(self, request: SFCRequest) -> _RequestView:
        bw = request.bandwidth_mbps
        vnfs: List[tuple] = []
        for vnf_type in request.chain.vnf_types:
            proc, onehot, license_cost, _ = self._vnf_info(vnf_type)
            darr = vnf_type.demand_array_for(bw)
            vnfs.append((darr, darr.tolist(), proc, onehot, license_cost))
        dest = request.destination_node_id
        return _RequestView(
            request_id=request.request_id,
            source_row=self._node_row[request.source_node_id],
            dest_row=None if dest is None else self._node_row[dest],
            sla=request.sla.max_latency_ms,
            min_avail=request.sla.min_availability,
            bw=bw,
            holding=request.holding_time,
            arrival=request.arrival_time,
            departure=request.departure_time,
            num_vnfs=request.num_vnfs,
            total_proc=request.chain.total_processing_delay_ms(),
            vnfs=vnfs,
        )

    def _path(self, a_row: int, b_row: int) -> Optional[Tuple[float, List[int], float]]:
        """Routed path between two rows: (latency, oriented slots, cost).

        ``None`` encodes NoRoute.  Delegates to the template network's
        canonical-pair path cache and the template ledger's oriented-tuple
        slot/cost memo, so latency and cost floats are bitwise identical to
        what per-lane networks would compute.
        """
        key = (a_row, b_row)
        entry = self._paths.get(key, False)
        if entry is False:
            try:
                path = self._network.shortest_path(
                    self._row_ids[a_row], self._row_ids[b_row]
                )
            except NoRouteError:
                entry = None
            else:
                slots, cost = self._ledger.path_entry(path.nodes)
                entry = (path.latency_ms, slots.tolist(), cost)
            self._paths[key] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self, observe: bool = True) -> np.ndarray:
        """Reset every lane; returns the ``(K, state_dim)`` state batch."""
        self._decision_version += 1
        for lane, st in enumerate(self._lanes):
            self._reset_lane_state(lane, st)
        if not observe:
            return np.zeros((self.num_lanes, self.state_dim), dtype=float)
        return self._observe_batch()

    def reset_lane(self, lane: int) -> np.ndarray:
        """Reset a single lane; returns its fresh state vector."""
        self._decision_version += 1
        st = self._lanes[lane]
        self._reset_lane_state(lane, st)
        return self._observe_lane(lane, st)

    def _reset_lane_state(self, lane: int, st: _LaneState) -> None:
        """Start a new episode on one lane (mirrors VNFPlacementEnv.reset)."""
        self._node_used[lane].fill(0.0)
        self._link_used[lane].fill(0.0)
        self._node_used_py[lane] = self._node_used[lane].tolist()
        self._link_used_py[lane] = self._link_used[lane].tolist()
        store = self._store
        while st.heap:
            _, _, rec = st.heap.pop()
            store.free(rec)
        st.failed_rows.clear()
        st.fences.clear()
        self._fence_rows[lane] = False
        st.failure_cursor = 0
        st.requests = st.generator.generate_batch(self._requests_per_episode)
        # Request views are precomputed at the episode boundary (they depend
        # only on immutable request/catalog data), keeping per-request view
        # construction out of the steady-state step path.
        view = self._request_view
        st.views = [view(request) for request in st.requests]
        st.schedule = self._draw_failure_schedule(st)
        st.episode_counter += 1
        st.request_index = 0
        st.stats = EpisodeStats()
        st.episode_done = False
        self._begin_next_request(lane, st)

    def _draw_failure_schedule(self, st: _LaneState) -> List[FailureEvent]:
        """Per-episode failure schedule (mirrors the reference derivation)."""
        if st.failure_config is None or not st.requests:
            return []
        horizon = st.requests[-1].arrival_time
        if horizon <= 0:
            return []
        episode_config = dataclass_replace(
            st.failure_config,
            seed=derive_seed(
                st.failure_config.seed, "env_failures", st.episode_counter
            ),
        )
        return FailureInjector(episode_config).schedule(self._network, horizon)

    def _begin_next_request(self, lane: int, st: _LaneState) -> None:
        index = st.request_index
        views = st.views
        if index >= len(views):
            st.current = None
            st.episode_done = True
            self._ctx_rows[lane] = self._inactive_row
            return
        st.request_index = index + 1
        view = views[index]
        if st.schedule:
            self._advance_time(lane, st, view.arrival)
        else:
            self._release_departed(lane, st, view.arrival)
        st.current = view
        st.vnf_index = 0
        st.partial_rows = []
        st.partial_latency = 0.0
        st.stats.requests_seen += 1
        self._ctx_rows[lane] = view.ctx_row

    # ------------------------------------------------------------------ #
    # Departures and failures
    # ------------------------------------------------------------------ #
    def _advance_time(self, lane: int, st: _LaneState, now: float) -> None:
        schedule = st.schedule
        while st.failure_cursor < len(schedule) and schedule[st.failure_cursor].time <= now:
            event = schedule[st.failure_cursor]
            st.failure_cursor += 1
            self._release_departed(lane, st, event.time)
            row = self._node_row[event.node_id]
            if event.is_failure:
                self._fail_node(lane, st, row)
            else:
                self._recover_node(lane, st, row)
        self._release_departed(lane, st, now)

    def _release_departed(self, lane: int, st: _LaneState, now: float) -> None:
        heap = st.heap
        store = self._store
        while heap and heap[0][0] <= now:
            _, _, rec = heapq.heappop(heap)
            if store.committed[rec]:
                self._release_record(lane, rec)
            store.free(rec)

    def _release_record(self, lane: int, rec: int) -> None:
        """Free a committed record's reservations (segments first, then nodes)."""
        store = self._store
        bw = store.bandwidth[rec]
        link_used = self._link_used[lane]
        link_used_py = self._link_used_py[lane]
        for slots in store.segments[rec]:
            for slot in slots:
                value = max(0.0, link_used_py[slot] - bw)
                link_used_py[slot] = value
                link_used[slot] = value
        used = self._node_used[lane]
        used_py = self._node_used_py[lane]
        for row, demand_t in zip(store.rows[rec], store.demands[rec]):
            row_py = used_py[row]
            v0 = max(0.0, row_py[0] - demand_t[0])
            v1 = max(0.0, row_py[1] - demand_t[1])
            v2 = max(0.0, row_py[2] - demand_t[2])
            row_py[0] = v0
            row_py[1] = v1
            row_py[2] = v2
            used[row, 0] = v0
            used[row, 1] = v1
            used[row, 2] = v2
        store.committed[rec] = False

    def _resync_shadow_lanes(
        self, lanes: "np.ndarray", nodes: "np.ndarray", links: "np.ndarray"
    ) -> None:
        """Overwrite the Python shadow rows of ``lanes`` from committed arrays.

        One bulk resync per batch: after a kernel writes whole lanes of
        ``_node_used``/``_link_used``, the shadows must match before any
        scalar path replays against them.  Registered as a resync method
        with RPL105/RPL204 so the linter knows a call site closes the
        dirty window.
        """
        node_rows_py = nodes.tolist()
        link_rows_py = links.tolist()
        node_shadow = self._node_used_py
        link_shadow = self._link_used_py
        for i, lane in enumerate(lanes.tolist()):
            node_shadow[lane] = node_rows_py[i]
            link_shadow[lane] = link_rows_py[i]

    def _fail_node(self, lane: int, st: _LaneState, row: int) -> None:
        """Fence one row and tear down every active placement hosting on it."""
        if row in st.failed_rows:
            return
        st.failed_rows.add(row)
        self._fence_rows[lane, row] = True
        store = self._store
        for _, _, rec in st.heap:
            if store.committed[rec] and row in store.row_sets[rec]:
                self._release_record(lane, rec)
                st.stats.disrupted += 1
        used_row = self._node_used[lane, row]
        remaining = np.maximum(self._capacity[row] - used_row, 0.0)
        r = remaining.tolist()
        # ResourceVector.is_zero: (cpu + memory) + storage <= 1e-12.
        if not ((r[0] + r[1]) + r[2] <= 1e-12):
            used_row += remaining
            st.fences[row] = remaining
        self._node_used_py[lane][row] = used_row.tolist()

    def _recover_node(self, lane: int, st: _LaneState, row: int) -> None:
        if row not in st.failed_rows:
            return
        st.failed_rows.discard(row)
        self._fence_rows[lane, row] = False
        fence = st.fences.pop(row, None)
        if fence is not None:
            used_row = self._node_used[lane, row]
            np.maximum(used_row - fence, 0.0, out=used_row)
            self._node_used_py[lane][row] = used_row.tolist()

    # ------------------------------------------------------------------ #
    # Decision context and masks
    # ------------------------------------------------------------------ #
    def _broadcast_constant(self, attr: str) -> np.ndarray:
        """(K, N, 3) read-only broadcast of one shared template matrix."""
        cached = self._broadcast_cache.get(attr)
        if cached is None:
            source = {
                "node_capacity": self._capacity,
                "node_capacity_safe": self._capacity_safe,
                "node_cost_per_unit": self._cost_per_unit,
                "_capacity_plus_tol": self._capacity_plus_tol,
            }[attr]
            cached = np.broadcast_to(source, (self.num_lanes,) + source.shape)
            self._broadcast_cache[attr] = cached
        return cached

    def lane_decision_context(self) -> LaneDecisionContext:
        """The batched decision context of the current step (memoized).

        Same structure and contents as the reference
        :meth:`VecPlacementEnv.lane_decision_context`; constants are
        broadcast views of the shared template matrices rather than K-fold
        stacks.
        """
        if self._context is not None and self._context_version == self._decision_version:
            return self._context
        (
            active,
            demands,
            extras,
            budgets,
            holding,
            anchor_rows,
            procs,
            onehots,
            remaining,
            bandwidths,
            partials,
            vnf_indices,
            chain_lengths,
        ) = zip(*self._ctx_rows)
        anchor_index = np.array(anchor_rows, dtype=np.int64)
        context = LaneDecisionContext(
            active=np.array(active, dtype=bool),
            anchor_rows=anchor_index,
            demands=np.array(demands),
            extras=np.array(extras),
            budgets=np.array(budgets),
            holding=np.array(holding),
            used=self._node_used.copy(),
            capacity_plus_tol=self._broadcast_constant("_capacity_plus_tol"),
            latency=self._latency[anchor_index],
            constant_stack=lambda attr: self._broadcast_constant(attr),
        )
        self._context = context
        self._context_version = self._decision_version
        self._procs = procs
        self._obs_extras = (
            onehots,
            remaining,
            bandwidths,
            partials,
            vnf_indices,
            chain_lengths,
        )
        return context

    def _canhost_matrix(self, context: LaneDecisionContext) -> np.ndarray:
        """(K, N) demand-fits-free-capacity matrix, memoized per decision.

        Both the mask and observation kernels consume it; callers must not
        mutate the returned array in place.
        """
        if self._canhost is None or self._canhost_version != self._context_version:
            self._canhost = (context.demands[:, None, :] <= context.free_tol).all(
                axis=2
            )
            self._canhost_version = self._context_version
        return self._canhost

    def valid_action_masks(self) -> np.ndarray:
        """Stacked ``(K, num_actions)`` boolean validity masks.

        Identical kernel to the reference batched mask path, with the
        per-lane failed-node loop replaced by the columnar ``(K, N)`` fence
        mask.
        """
        if self._profile:
            t0 = perf_counter()  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            masks = self._masks_kernel()
            self._timings["mask_s"] += perf_counter() - t0  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            return masks
        return self._masks_kernel()

    def _masks_kernel(self) -> np.ndarray:
        context = self.lane_decision_context()
        num_actions = self.num_actions
        num_nodes = self._num_nodes
        masks = np.zeros((self.num_lanes, num_actions), dtype=bool)
        masks[:, num_nodes] = True  # reject is always valid
        canhost = self._canhost_matrix(context)
        if self._latency_mask_check:
            valid = canhost & (
                context.latency + context.extras[:, None]
                <= context.budgets[:, None]
            )
        else:
            valid = canhost.copy()
        valid &= context.active[:, None]
        valid &= ~self._fence_rows
        masks[:, :num_nodes] = valid
        return masks

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #
    def _observe_batch(self) -> np.ndarray:
        """Fused batched state encoding (bitwise equal to per-lane encode)."""
        if self._profile:
            t0 = perf_counter()  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            states = self._observe_kernel()
            self._timings["observe_s"] += perf_counter() - t0  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            return states
        return self._observe_kernel()

    def _observe_kernel(self) -> np.ndarray:
        context = self.lane_decision_context()
        onehots, remaining, bandwidths, partials, vnf_indices, chain_lengths = (
            self._obs_extras
        )
        num_lanes = self.num_lanes
        num_nodes = self._num_nodes
        states = np.zeros((num_lanes, self.state_dim), dtype=float)
        node_block = states[:, : NODE_FEATURES * num_nodes].reshape(
            num_lanes, num_nodes, NODE_FEATURES
        )
        used = context.used
        utilization = used / self._capacity_safe
        np.minimum(utilization[:, :, 0], 1.0, out=node_block[:, :, 0])
        np.minimum(utilization[:, :, 1], 1.0, out=node_block[:, :, 1])
        np.minimum(
            context.latency / context.budgets[:, None], 1.0, out=node_block[:, :, 2]
        )
        node_block[:, :, 3] = self._canhost_matrix(context)
        offset = NODE_FEATURES * num_nodes
        lanes_idx = self._arange_k
        states[lanes_idx, offset + np.array(onehots, dtype=np.int64)] = 1.0
        offset += self._catalog_size
        np.minimum(
            np.array(remaining, dtype=np.int64) / self._max_chain_length,
            1.0,
            out=states[:, offset + 0],
        )
        np.minimum(
            np.array(bandwidths) / self._bandwidth_normalizer,
            1.0,
            out=states[:, offset + 1],
        )
        np.minimum(
            np.array(partials) / context.budgets, 1.0, out=states[:, offset + 2]
        )
        np.minimum(
            context.holding / self._holding_normalizer, 1.0, out=states[:, offset + 3]
        )
        states[:, offset + 4] = np.array(vnf_indices, dtype=np.int64) / np.array(
            chain_lengths, dtype=np.int64
        )
        inactive = ~context.active
        if inactive.any():
            states[inactive] = 0.0
        return states

    def _observe_lane(self, lane: int, st: _LaneState) -> np.ndarray:
        """Single-lane state encoding (mirrors StateEncoder.encode)."""
        if st.current is None:
            return np.zeros(self.state_dim, dtype=float)
        view = st.current
        vnf = view.vnfs[st.vnf_index]
        demand = vnf[0]
        sla = view.sla
        anchor = st.partial_rows[-1] if st.partial_rows else view.source_row
        num_nodes = self._num_nodes
        features = np.zeros(self.state_dim, dtype=float)
        used = self._node_used[lane]
        utilization = used / self._capacity_safe
        latency = self._latency[anchor]
        can_host = (demand <= (self._capacity_plus_tol - used)).all(axis=1)
        node_block = features[: NODE_FEATURES * num_nodes].reshape(
            num_nodes, NODE_FEATURES
        )
        np.minimum(utilization[:, 0], 1.0, out=node_block[:, 0])
        np.minimum(utilization[:, 1], 1.0, out=node_block[:, 1])
        np.minimum(latency / sla, 1.0, out=node_block[:, 2])
        node_block[:, 3] = can_host
        offset = NODE_FEATURES * num_nodes
        features[offset + vnf[3]] = 1.0
        offset += self._catalog_size
        features[offset + 0] = min(
            1.0, (view.num_vnfs - st.vnf_index) / self._max_chain_length
        )
        features[offset + 1] = min(1.0, view.bw / self._bandwidth_normalizer)
        features[offset + 2] = min(1.0, st.partial_latency / sla)
        features[offset + 3] = min(1.0, view.holding / self._holding_normalizer)
        features[offset + 4] = st.vnf_index / max(1, view.num_vnfs)
        return features

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(
        self,
        actions: Sequence[int],
        observe: bool = True,
        info: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[List[Dict[str, object]]]]:
        """Apply one action per lane (same contract as VecPlacementEnv.step).

        The dense-reward arithmetic for placement actions is evaluated as one
        batched expression (elementwise, in the reference association order,
        so every float is bitwise equal to the per-lane scalar computation);
        lanes completing a chain this step are committed together through the
        batched :meth:`_finalize_batch` pipeline.

        ``info=False`` selects the lean-step protocol: the infos element of
        the return tuple is ``None`` and callers read the per-lane outcome
        through :meth:`last_outcome_codes` / :meth:`last_request_done` /
        :meth:`last_request_ids` / :meth:`last_episode_stats` instead.  Those
        arrays are recorded unconditionally, so lean and full steps traverse
        the same state transitions bitwise.
        """
        profiling = self._profile
        if profiling:
            step_t0 = perf_counter()  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
        acts = np.asarray(actions, dtype=int).ravel()
        num_lanes = self.num_lanes
        if acts.shape[0] != num_lanes:
            raise ValueError(f"got {acts.shape[0]} actions for {num_lanes} lanes")
        # Pre-step batched reward inputs: latency to the chosen node, hosting
        # dot product and bottleneck utilization, gathered from the pre-step
        # decision context (each lane only ever reads its own rows, which no
        # other lane mutates, so the shared snapshot is exact).
        context = self.lane_decision_context()
        num_nodes = self._num_nodes
        rows_sel = np.clip(acts, 0, num_nodes - 1)
        lanes_idx = self._arange_k
        lat_vec = context.latency[lanes_idx, rows_sel]
        # (K,1,3) @ (K,3,1) batched matmul is bitwise equal to the per-pair
        # `demand @ cost_row` the reference reward path computes.
        host_vec = np.matmul(
            context.demands[:, None, :],
            self._cost_per_unit[rows_sel][:, :, None],
        ).ravel()
        util_vec = np.max(
            context.used[lanes_idx, rows_sel] / self._capacity_safe[rows_sel], axis=1
        )
        # Dense step reward, reference association order:
        #   -( w_lat*(added/sla) + w_cost*((host*holding)/norm) + b01*util )
        # with added = latency + processing delay.  Unroutable anchors carry
        # inf latency; those lanes take the infeasible branch below and never
        # read the (inf-valued) batched reward, but the arithmetic is guarded
        # against inf-propagation warnings.
        added_vec = lat_vec + np.asarray(self._procs)
        with np.errstate(invalid="ignore"):
            latency_terms = self._step_latency_weight * (added_vec / context.budgets)
            cost_terms = self._step_cost_weight * (
                (host_vec * context.holding) / self._cost_normalizer
            )
            balance_terms = self._balance_weight01 * util_vec
            place_rewards = -((latency_terms + cost_terms) + balance_terms)
        lat_list = lat_vec.tolist()
        added_list = added_vec.tolist()
        place_list = place_rewards.tolist()
        self._decision_version += 1

        rewards = place_rewards  # lanes that do not place are overwritten
        dones = np.zeros(num_lanes, dtype=bool)
        action_list = acts.tolist()
        num_actions = self.num_actions
        inf = np.inf
        reject_penalty = self._reject_penalty
        infeasible_penalty = self._infeasible_penalty
        out_codes = self._out_codes
        req_done = self._req_done
        req_ids = self._req_ids
        ctx_rows = self._ctx_rows
        completing: List[Tuple[int, _LaneState, _RequestView]] = []
        for lane, st in enumerate(self._lanes):
            view = st.current
            if st.episode_done or view is None:
                raise RuntimeError(
                    "step() called on a finished episode; call reset()"
                )
            action = action_list[lane]
            if not 0 <= action < num_actions:
                raise ValueError(f"action {action} outside the action space")
            req_ids[lane] = view.request_id
            if action == num_nodes:
                rewards[lane] = -reject_penalty
                st.stats.rejected += 1
                out_codes[lane] = 1  # rejected
                req_done[lane] = True
                self._begin_next_request(lane, st)
            elif lat_list[lane] == inf:
                rewards[lane] = -infeasible_penalty
                st.stats.infeasible += 1
                out_codes[lane] = 4  # no_route
                req_done[lane] = True
                self._begin_next_request(lane, st)
            else:
                st.partial_rows.append(action)
                st.partial_latency += added_list[lane]
                st.vnf_index += 1
                if st.vnf_index < view.num_vnfs:
                    # Mid-chain placement: the batched reward is already in
                    # the rewards array; advance this lane's context row to
                    # the next VNF of the chain.
                    vnf_index = st.vnf_index
                    vnf = view.vnfs[vnf_index]
                    proc = vnf[2]
                    partial_latency = st.partial_latency
                    ctx_rows[lane] = (
                        True,
                        vnf[1],
                        proc + partial_latency,
                        view.sla,
                        view.holding,
                        action,
                        proc,
                        vnf[3],
                        view.num_vnfs - vnf_index,
                        view.bw,
                        partial_latency,
                        vnf_index,
                        view.num_vnfs,
                    )
                    out_codes[lane] = 2  # placed
                    req_done[lane] = False
                else:
                    # Chain complete: commit through the batched pipeline
                    # below (which sets rewards/outcome and advances the
                    # lane to its next request).
                    req_done[lane] = True
                    completing.append((lane, st, view))
        if completing:
            if profiling:
                commit_t0 = perf_counter()  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            self._finalize_batch(completing, rewards, place_list)
            if profiling:
                self._timings["commit_s"] += perf_counter() - commit_t0  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state

        # Reward/stat accumulation and episode boundaries run as one pass
        # after the batch commit, so completing lanes already carry their
        # final rewards; per-lane stats objects make the cross-lane order
        # unobservable.
        finished = self._finished_stats
        finished.clear()
        rewards_list = rewards.tolist()
        episodes_done = 0
        auto_reset = self.auto_reset
        for lane, st in enumerate(self._lanes):
            st.stats.total_reward += rewards_list[lane]
            if st.episode_done:
                dones[lane] = True
                finished[lane] = st.stats.as_dict()
                episodes_done += 1
                if auto_reset:
                    self._reset_lane_state(lane, st)
        self.episodes_completed += episodes_done

        if info:
            if profiling:
                info_t0 = perf_counter()  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            infos: Optional[List[Dict[str, object]]] = []
            lane_names = self.lane_names
            append_info = infos.append
            state_dim = self.state_dim
            zero_state = self._zero_state
            done_list = dones.tolist()
            for lane in range(num_lanes):
                payload: Dict[str, object] = {
                    "request_id": req_ids[lane],
                    "request_done": req_done[lane],
                    "outcome": OUTCOMES[out_codes[lane]],
                    "episode_stats": finished.get(lane),
                    "lane": lane,
                    "lane_name": lane_names[lane],
                }
                if done_list[lane]:
                    payload["terminal_state"] = (
                        np.zeros(state_dim, dtype=float)
                        if observe
                        else zero_state
                    )
                append_info(payload)
            if profiling:
                self._timings["info_s"] += perf_counter() - info_t0  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
        else:
            infos = None
        if observe:
            states = self._observe_batch()
        else:
            states = np.zeros((num_lanes, self.state_dim), dtype=float)
        if profiling:
            self._timings["step_s"] += perf_counter() - step_t0  # repro-lint: disable=RPL102 — opt-in profiling timer (profile=True), not simulation state
            self._timings["steps"] += 1.0
        return states, rewards, dones, infos

    # ------------------------------------------------------------------ #
    # Commit pipeline (routing, feasibility, atomic commit)
    # ------------------------------------------------------------------ #
    def _ensure_pair(self, pair_index: int) -> None:
        """Fill the dense routing-gather arrays for one flat ``(a, b)`` pair.

        Delegates to :meth:`_path`, which also populates ``self._paths`` for
        the scalar fallback path — both views share the same slot lists, so
        store records alias identical objects either way.
        """
        a_row, b_row = divmod(pair_index, self._num_nodes)
        entry = self._path(a_row, b_row)
        self._seg_known[pair_index] = True
        if entry is not None:
            self._seg_ok[pair_index] = True
            self._seg_lat[pair_index] = entry[0]
            self._seg_cost[pair_index] = entry[2]
            self._seg_slots[pair_index] = entry[1]

    def _finalize_batch(
        self,
        completing: List[Tuple[int, "_LaneState", _RequestView]],
        rewards: np.ndarray,
        place_list: List[float],
    ) -> None:
        """Commit pipeline over every lane completing a chain this step.

        The routing walk, feasibility check and per-segment link commits run
        as grouped array operations over the completing-lane set; only the
        per-lane bookkeeping (store allocation, heap push, stats, terminal
        reward, request advance) stays scalar, applied in lane order so the
        observable sequence matches the reference backend exactly.

        Bitwise-exactness argument, mirrored in the array ops below:

        * ``np.bincount(idx, weights=w)`` accumulates sequentially in input
          order, so grouped demand/traversal sums reproduce the reference
          left-associated scalar sums bit-for-bit.
        * Node commits add non-negative demands, and correctly-rounded
          addition of a non-negative term is monotone — the sequential
          per-instance ``can_host`` checks pass iff the *final* sequential
          value (computed with ``np.add.at``, which also applies repeated
          indices in input order) stays within ``capacity + tol`` on every
          touched row/dim.  The batch verdict is therefore exact.
        * Link ``can_carry`` checks read the running value *before* each
          traversal's add, so the batch screen tests the strictly harder
          post-commit value: a screen pass proves every reference check
          passes, while a screen fail (or a node-commit fail, whose partial
          commit + rollback drifts floats through ``max(0, x - d)``) replays
          that lane through the scalar :meth:`_finalize_request` path, which
          *is* the reference arithmetic.
        * Ordered float sums whose accumulation order the reference fixes
          per lane (propagation, per-mbps cost, hosting+license interleave)
          stay scalar loops over gathered values — ``np.add.reduceat`` is
          pairwise and would break associativity.
        """
        num_nodes = self._num_nodes
        # ---- batched routing walk over the dense pair-gather arrays ---- #
        seg_pairs: List[int] = []
        seg_counts: List[int] = []
        for lane, st, view in completing:
            prev = view.source_row
            for row in st.partial_rows:
                seg_pairs.append(prev * num_nodes + row)
                prev = row
            dest = view.dest_row
            if dest is not None:
                seg_pairs.append(prev * num_nodes + dest)
                seg_counts.append(view.num_vnfs + 1)
            else:
                seg_counts.append(view.num_vnfs)
        pair_arr = np.array(seg_pairs, dtype=np.int64)
        known = self._seg_known
        if not known[pair_arr].all():
            ensure = self._ensure_pair
            for pair_index in seg_pairs:
                if not known[pair_index]:
                    ensure(pair_index)
        ok_list = self._seg_ok[pair_arr].tolist()
        lat_gather = self._seg_lat[pair_arr].tolist()
        cost_gather = self._seg_cost[pair_arr].tolist()
        seg_slots = self._seg_slots

        # ---- per-lane route assembly (ordered sums stay scalar) -------- #
        n_completing = len(completing)
        NO_ROUTE, INFEASIBLE, ACCEPT, FALLBACK = 0, 1, 2, 3
        verdicts = [NO_ROUTE] * n_completing
        routed: List[int] = []
        prop_list = [0.0] * n_completing
        permbps_list = [0.0] * n_completing
        e2e_list = [0.0] * n_completing
        cost_list = [0.0] * n_completing
        slots_per_pos: List[Optional[List[List[int]]]] = [None] * n_completing
        offset = 0
        for pos in range(n_completing):
            end = offset + seg_counts[pos]
            propagation = 0.0
            per_mbps = 0.0
            complete = True
            for seg in range(offset, end):
                if not ok_list[seg]:
                    complete = False
                    break
                propagation += lat_gather[seg]
                per_mbps += cost_gather[seg]
            if complete:
                verdicts[pos] = INFEASIBLE
                routed.append(pos)
                prop_list[pos] = propagation
                permbps_list[pos] = per_mbps
                slots_per_pos[pos] = [
                    seg_slots[p] for p in seg_pairs[offset:end]
                ]
            offset = end

        num_candidates = len(routed)
        if num_candidates:
            # ---- grouped node demand aggregation + feasibility --------- #
            lanes_arr = np.array(
                [completing[pos][0] for pos in routed], dtype=np.int64
            )
            inst_counts = np.array(
                [completing[pos][2].num_vnfs for pos in routed], dtype=np.int64
            )
            demand_rows: List[np.ndarray] = []
            for pos in routed:
                demand_rows.extend(
                    vnf[0] for vnf in completing[pos][2].vnfs
                )
            inst_demands = np.stack(demand_rows)
            flat_rows: List[int] = []
            for pos in routed:
                flat_rows.extend(completing[pos][1].partial_rows)
            inst_rows = np.array(flat_rows, dtype=np.int64)
            inst_pos = np.repeat(
                np.arange(num_candidates, dtype=np.int64), inst_counts
            )
            cell = inst_pos * num_nodes + inst_rows
            counts = np.bincount(cell, minlength=num_candidates * num_nodes)
            touched = counts.reshape(num_candidates, num_nodes) > 0
            agg = np.bincount(
                (cell[:, None] * 3 + np.arange(3, dtype=np.int64)).ravel(),
                weights=inst_demands.ravel(),
                minlength=num_candidates * num_nodes * 3,
            ).reshape(num_candidates, num_nodes, 3)
            # (C, N, 3) gather; np.take makes the copy explicit — a fancy
            # index reads as a view to both humans and the staleness rule.
            used_sel = np.take(self._node_used, lanes_arr, axis=0)
            free_tol = (self._capacity[None, :, :] - used_sel) + 1e-9
            node_bad = (agg > free_tol).any(axis=2) & touched
            node_ok_list = (~node_bad.any(axis=1)).tolist()

            # ---- grouped link traversal counts + feasibility ----------- #
            num_links = self._num_links
            bw_arr = np.array([completing[pos][2].bw for pos in routed])
            slot_flat: List[int] = []
            slot_pos_counts: List[int] = []
            for pos in routed:
                total = 0
                for slots in slots_per_pos[pos]:
                    slot_flat.extend(slots)
                    total += len(slots)
                slot_pos_counts.append(total)
            if slot_flat:
                slot_arr = np.array(slot_flat, dtype=np.int64)
                slot_pos = np.repeat(
                    np.arange(num_candidates, dtype=np.int64), slot_pos_counts
                )
                link_counts = np.bincount(
                    slot_pos * num_links + slot_arr,
                    minlength=num_candidates * num_links,
                ).reshape(num_candidates, num_links)
            else:
                slot_arr = slot_pos = None
                link_counts = np.zeros(
                    (num_candidates, num_links), dtype=np.int64
                )
            # (C, E) gather, explicit copy as above.
            link_used_sel = np.take(self._link_used, lanes_arr, axis=0)
            link_free_tol = (
                self._link_capacity[None, :] - link_used_sel
            ) + 1e-9
            link_bad = (link_counts * bw_arr[:, None] > link_free_tol) & (
                link_counts > 0
            )
            link_ok_list = (~link_bad.any(axis=1)).tolist()

            # ---- hosting cost terms (elementwise, reference assoc) ----- #
            inst_cost = self._cost_per_unit[inst_rows]
            hold_rep = np.repeat(
                np.array([completing[pos][2].holding for pos in routed]),
                inst_counts,
            )
            host_list = (
                (
                    inst_demands[:, 0] * inst_cost[:, 0]
                    + inst_demands[:, 1] * inst_cost[:, 1]
                    + inst_demands[:, 2] * inst_cost[:, 2]
                )
                * hold_rep
            ).tolist()

            # ---- scalar SLA / availability / cost per candidate -------- #
            row_avail = self._row_avail
            inst_base = 0
            feasible_ci: List[int] = []
            for ci, pos in enumerate(routed):
                lane, st, view = completing[pos]
                base = inst_base
                inst_base += view.num_vnfs
                if not (node_ok_list[ci] and link_ok_list[ci]):
                    continue
                e2e = prop_list[pos] + view.total_proc
                if not e2e <= view.sla + 1e-9:
                    continue
                availability = 1.0
                # dict.fromkeys dedups in first-occurrence order — the same
                # multiplication order the reference's seen-set loop fixes.
                for row in dict.fromkeys(st.partial_rows):
                    availability *= row_avail[row]
                if not availability + 1e-12 >= view.min_avail:
                    continue
                cost = 0.0
                licenses = view.licenses
                for i in range(view.num_vnfs):
                    cost += host_list[base + i]
                    cost += licenses[i]
                e2e_list[pos] = e2e
                cost_list[pos] = cost + view.bw * permbps_list[pos] * view.holding
                feasible_ci.append(ci)

            # ---- batched commit: exact node criterion + link screen ---- #
            if feasible_ci:
                node_scratch = used_sel  # feasibility reads are done: reuse
                np.add.at(node_scratch, (inst_pos, inst_rows), inst_demands)
                node_over = (
                    node_scratch > self._capacity_plus_tol[None, :, :]
                ).any(axis=2) & touched
                commit_node_ok = (~node_over.any(axis=1)).tolist()
                link_scratch = link_used_sel
                if slot_arr is not None:
                    np.add.at(
                        link_scratch,
                        (slot_pos, slot_arr),
                        np.repeat(bw_arr, slot_pos_counts),
                    )
                link_head = (
                    np.maximum(
                        0.0, self._link_capacity[None, :] - link_scratch
                    )
                    + 1e-9
                )
                screen_bad = (bw_arr[:, None] > link_head) & (link_counts > 0)
                screen_ok = (~screen_bad.any(axis=1)).tolist()
                commit_ci: List[int] = []
                for ci in feasible_ci:
                    if commit_node_ok[ci] and screen_ok[ci]:
                        verdicts[routed[ci]] = ACCEPT
                        commit_ci.append(ci)
                    else:
                        verdicts[routed[ci]] = FALLBACK
                if commit_ci:
                    sel = np.array(commit_ci, dtype=np.int64)
                    commit_lanes = lanes_arr[sel]
                    committed_nodes = node_scratch[sel]
                    committed_links = link_scratch[sel]
                    self._node_used[commit_lanes] = committed_nodes
                    self._link_used[commit_lanes] = committed_links
                    # One shadow-ledger resync per step for the whole
                    # committed-lane set (the scalar paths previously paid
                    # this per mutation).
                    self._resync_shadow_lanes(
                        commit_lanes, committed_nodes, committed_links
                    )

        # ---- per-lane bookkeeping, in lane order ----------------------- #
        store = self._store
        out_codes = self._out_codes
        infeasible_penalty = self._infeasible_penalty
        cost_normalizer = self._cost_normalizer
        for pos, (lane, st, view) in enumerate(completing):
            verdict = verdicts[pos]
            if verdict == ACCEPT:
                rows = st.partial_rows
                st.counter += 1
                rec = store.alloc(
                    lane,
                    view.departure,
                    view.bw,
                    tuple(rows),
                    view.demand_lists,
                    slots_per_pos[pos],
                    frozenset(rows),
                )
                heapq.heappush(st.heap, (view.departure, st.counter, rec))
                stats = st.stats
                stats.accepted += 1
                e2e = e2e_list[pos]
                total_cost = cost_list[pos]
                stats.total_latency_ms += e2e
                stats.total_cost += total_cost
                # Terminal acceptance reward, exact reference association.
                sla_fraction = e2e / view.sla
                cost_fraction = total_cost / cost_normalizer
                revenue = (
                    self._revenue_scale
                    * (1.0 * view.bw * view.holding / 100.0)
                    / 100.0
                )
                terminal = (
                    self._accept_reward
                    + revenue
                    - self._latency_weight * sla_fraction
                    - self._cost_weight * cost_fraction
                )
                rewards[lane] = place_list[lane] + terminal
                out_codes[lane] = 3  # accepted
            elif verdict == FALLBACK:
                reward, _, outcome = self._finalize_request(
                    lane, st, view, place_list[lane]
                )
                rewards[lane] = reward
                out_codes[lane] = OUTCOME_CODE[outcome]
            else:
                rewards[lane] = place_list[lane] + -infeasible_penalty
                st.stats.infeasible += 1
                out_codes[lane] = 4 if verdict == NO_ROUTE else 5
            self._begin_next_request(lane, st)

    def _finalize_request(
        self, lane: int, st: _LaneState, view: _RequestView, reward: float
    ) -> Tuple[float, bool, str]:
        rows = st.partial_rows
        # Route the service path: source -> hosts (-> destination), summing
        # propagation latency and per-mbps transport cost along the way (the
        # accumulation order matches the reference per-segment sums).
        anchors = [view.source_row, *rows]
        if view.dest_row is not None:
            anchors.append(view.dest_row)
        paths = self._paths
        segments: List[Tuple[float, List[int], float]] = []
        propagation = 0.0
        per_mbps = 0.0
        prev = anchors[0]
        for anchor in anchors[1:]:
            entry = paths.get((prev, anchor), False)
            if entry is False:
                entry = self._path(prev, anchor)
            if entry is None:
                st.stats.infeasible += 1
                return reward + -self._infeasible_penalty, True, "no_route"
            propagation += entry[0]
            per_mbps += entry[2]
            segments.append(entry)
            prev = anchor

        feasible, e2e, total_cost = self._check_feasible(
            lane, view, rows, segments, propagation, per_mbps
        )
        if not feasible:
            st.stats.infeasible += 1
            return reward + -self._infeasible_penalty, True, "infeasible"
        if not self._commit(lane, view, rows, segments):
            st.stats.infeasible += 1
            return reward + -self._infeasible_penalty, True, "commit_failed"

        st.counter += 1
        rec = self._store.alloc(
            lane,
            view.departure,
            view.bw,
            tuple(rows),
            [vnf[1] for vnf in view.vnfs],
            [entry[1] for entry in segments],
            frozenset(rows),
        )
        heapq.heappush(st.heap, (view.departure, st.counter, rec))
        st.stats.accepted += 1
        st.stats.total_latency_ms += e2e
        st.stats.total_cost += total_cost
        # Terminal acceptance reward, exact reference association order.
        sla_fraction = e2e / view.sla
        cost_fraction = total_cost / self._cost_normalizer
        revenue = (
            self._revenue_scale * (1.0 * view.bw * view.holding / 100.0) / 100.0
        )
        terminal = (
            self._accept_reward
            + revenue
            - self._latency_weight * sla_fraction
            - self._cost_weight * cost_fraction
        )
        return reward + terminal, True, "accepted"

    def _check_feasible(
        self,
        lane: int,
        view: _RequestView,
        rows: List[int],
        segments: List[Tuple[float, List[int], float]],
        propagation: float,
        per_mbps: float,
    ) -> Tuple[bool, float, float]:
        """Placement.is_feasible + cost/latency aggregation in one pass.

        Returns ``(feasible, end_to_end_latency, total_cost)``; the latency
        and cost are only meaningful when feasible (they feed the stats and
        the terminal reward on the accept path).  ``propagation`` and
        ``per_mbps`` are the segment sums accumulated by the routing loop.
        """
        used_py = self._node_used_py[lane]
        capacity_rows = self._capacity_rows
        # Per-node aggregated demand, grouped by row in instance order.
        grouped: Dict[int, List[float]] = {}
        for vnf, row in zip(view.vnfs, rows):
            demand_t = vnf[1]
            prior = grouped.get(row)
            if prior is None:
                grouped[row] = demand_t
            else:
                grouped[row] = [
                    prior[0] + demand_t[0],
                    prior[1] + demand_t[1],
                    prior[2] + demand_t[2],
                ]
        for row, demand in grouped.items():
            cap_row = capacity_rows[row]
            used_row = used_py[row]
            if not (
                demand[0] <= (cap_row[0] - used_row[0]) + 1e-9
                and demand[1] <= (cap_row[1] - used_row[1]) + 1e-9
                and demand[2] <= (cap_row[2] - used_row[2]) + 1e-9
            ):
                return False, 0.0, 0.0
        # A link shared by several segments must carry each traversal.
        bw = view.bw
        traversals: Dict[int, int] = {}
        get_count = traversals.get
        for entry in segments:
            for slot in entry[1]:
                traversals[slot] = get_count(slot, 0) + 1
        link_capacity = self._link_cap_list
        link_used_py = self._link_used_py[lane]
        for slot, count in traversals.items():
            if count * bw > link_capacity[slot] - link_used_py[slot] + 1e-9:
                return False, 0.0, 0.0
        # SLA: end-to-end latency then series-system availability.
        e2e = propagation + view.total_proc
        if not e2e <= view.sla + 1e-9:
            return False, 0.0, 0.0
        availability = 1.0
        seen: set = set()
        row_avail = self._row_avail
        for row in rows:
            if row not in seen:
                seen.add(row)
                availability *= row_avail[row]
        if not availability + 1e-12 >= view.min_avail:
            return False, 0.0, 0.0
        # Hosting cost (per instance, interleaved with license cost) plus
        # transport cost — exact reference accumulation order.
        holding = view.holding
        cost_rows = self._cost_rows
        cost = 0.0
        for vnf, row in zip(view.vnfs, rows):
            demand_t = vnf[1]
            cost_row = cost_rows[row]
            cost += (
                demand_t[0] * cost_row[0]
                + demand_t[1] * cost_row[1]
                + demand_t[2] * cost_row[2]
            ) * holding
            cost += vnf[4]
        total_cost = cost + bw * per_mbps * holding
        return True, e2e, total_cost

    def _commit(
        self,
        lane: int,
        view: _RequestView,
        rows: List[int],
        segments: List[Tuple[float, List[int], float]],
    ) -> bool:
        """Atomic commit with exact reference rollback order on failure."""
        used = self._node_used[lane]
        committed_nodes = 0
        node_failure = False
        cap_tol_rows = self._cap_tol_rows
        used_py = self._node_used_py[lane]
        for vnf, row in zip(view.vnfs, rows):
            row_py = used_py[row]
            demand_t = vnf[1]
            cap_tol = cap_tol_rows[row]
            next0 = row_py[0] + demand_t[0]
            next1 = row_py[1] + demand_t[1]
            next2 = row_py[2] + demand_t[2]
            # ComputeNode.can_host: used[d] + demand[d] <= capacity[d] + tol.
            if not (
                next0 <= cap_tol[0]
                and next1 <= cap_tol[1]
                and next2 <= cap_tol[2]
            ):
                node_failure = True
                break
            row_py[0] = next0
            row_py[1] = next1
            row_py[2] = next2
            used[row, 0] = next0
            used[row, 1] = next1
            used[row, 2] = next2
            committed_nodes += 1
        if node_failure:
            self._rollback(lane, view, rows, [], committed_nodes)
            return False
        bw = view.bw
        link_capacity = self._link_cap_list
        link_used = self._link_used[lane]
        committed_segments: List[List[int]] = []
        link_used_py = self._link_used_py[lane]
        for entry in segments:
            slots = entry[1]
            reserved = 0
            segment_failure = False
            for slot in slots:
                current = link_used_py[slot]
                # Link.can_carry: bw <= max(0, capacity - used) + 1e-9.
                if not bw <= max(0.0, link_capacity[slot] - current) + 1e-9:
                    # allocate_path rolls back this segment's own partial
                    # reservations (forward order) before re-raising.
                    for done_slot in slots[:reserved]:
                        undone = max(0.0, link_used_py[done_slot] - bw)
                        link_used_py[done_slot] = undone
                        link_used[done_slot] = undone
                    segment_failure = True
                    break
                next_used = current + bw
                link_used_py[slot] = next_used
                link_used[slot] = next_used
                reserved += 1
            if segment_failure:
                self._rollback(lane, view, rows, committed_segments, len(rows))
                return False
            committed_segments.append(slots)
        return True

    def _rollback(
        self,
        lane: int,
        view: _RequestView,
        rows: List[int],
        committed_segments: List[List[int]],
        committed_nodes: int,
    ) -> None:
        """Release fully-committed paths then nodes, in commit order."""
        bw = view.bw
        link_used = self._link_used[lane]
        link_used_py = self._link_used_py[lane]
        for slots in committed_segments:
            for slot in slots:
                value = max(0.0, link_used_py[slot] - bw)
                link_used_py[slot] = value
                link_used[slot] = value
        used = self._node_used[lane]
        used_py = self._node_used_py[lane]
        for index in range(committed_nodes):
            row = rows[index]
            demand_t = view.vnfs[index][1]
            row_py = used_py[row]
            v0 = max(0.0, row_py[0] - demand_t[0])
            v1 = max(0.0, row_py[1] - demand_t[1])
            v2 = max(0.0, row_py[2] - demand_t[2])
            row_py[0] = v0
            row_py[1] = v1
            row_py[2] = v2
            used[row, 0] = v0
            used[row, 1] = v1
            used[row, 2] = v2

    # ------------------------------------------------------------------ #
    # Introspection (shared vec-env surface)
    # ------------------------------------------------------------------ #
    def worker_metadata(self) -> Dict[str, object]:
        """Shard-compatibility metadata for the subprocess worker handshake.

        Same keys as :meth:`VecPlacementEnv.worker_metadata`; the SoA core
        only constructs when the batched kernel's structural requirements
        hold, so ``kernel_ok`` is always true here.
        """
        return {
            "state_dim": self.state_dim,
            "num_actions": self.num_actions,
            "num_nodes": self._num_nodes,
            "kernel_ok": True,
            "node_order": list(self._row_ids),
            "latency_check": bool(self._latency_mask_check),
            "latency_matrix": np.asarray(self._latency),
        }

    def constant_stacks(self) -> Dict[str, np.ndarray]:
        """Per-lane ``(K, N, 3)`` stacks of the constant ledger matrices.

        All lanes share one template topology, so these are broadcast views
        rather than copies — same contents as stacking K per-lane ledgers.
        """
        return {
            name: self._broadcast_constant(name)
            for name in (
                "node_capacity",
                "node_capacity_safe",
                "node_cost_per_unit",
                "_capacity_plus_tol",
            )
        }

    def lane_stats(self) -> List[EpisodeStats]:
        """The per-lane statistics of the episodes currently in progress."""
        return [st.stats for st in self._lanes]

    def lane_failed_nodes(self) -> List[List[int]]:
        """Per-lane node ids currently fenced by an injected failure."""
        row_ids = self._row_ids
        return [sorted(row_ids[row] for row in st.failed_rows) for st in self._lanes]

    # ------------------------------------------------------------------ #
    # Lean-step accessors (valid after the most recent step())
    # ------------------------------------------------------------------ #
    def last_outcome_codes(self) -> np.ndarray:
        """Per-lane outcome codes of the most recent step (into OUTCOMES).

        Part of the lean-step protocol: with ``step(..., info=False)`` no
        info dicts are built, and callers that need outcomes read this
        ``(K,)`` int8 array instead.
        """
        return np.array(self._out_codes, dtype=np.int8)

    def last_request_done(self) -> np.ndarray:
        """Per-lane "request finished this step" flags of the last step."""
        return np.array(self._req_done, dtype=bool)

    def last_request_ids(self) -> np.ndarray:
        """Per-lane ids of the request each lane acted on last step."""
        return np.array(self._req_ids, dtype=np.int64)

    def last_episode_stats(self, lane: int) -> Dict[str, float]:
        """Finished-episode statistics of a lane whose episode ended.

        Only valid for lanes with ``dones[lane]`` true in the most recent
        step; the payload equals the ``episode_stats`` info entry of the
        full-step protocol.
        """
        try:
            return self._finished_stats[lane]
        except KeyError:
            raise KeyError(
                f"lane {lane} did not finish an episode in the last step"
            ) from None

    def kernel_timings(self) -> Dict[str, float]:
        """Cumulative per-phase kernel timers (profile mode only).

        Keys: ``mask_s`` / ``observe_s`` / ``commit_s`` / ``info_s`` phase
        seconds, ``step_s`` whole-step seconds and ``steps`` the number of
        profiled batch steps.  All zero unless the environment was built
        with ``profile=True`` or ``REPRO_ENV_PROFILE=1``.
        """
        return dict(self._timings)

    def close(self) -> None:
        """Release lane resources (a no-op for the in-process SoA core)."""

    def __enter__(self) -> "SoAVecPlacementEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def soa_supported(specs: Sequence[LaneSpec]) -> bool:
    """Whether a lane-spec set satisfies the SoA core's shared-topology rules."""
    try:
        SoAVecPlacementEnv.from_specs(specs)
    except ValueError:
        return False
    return True
