"""The paper's core contribution: the DRL VNF-management MDP and controller."""

from repro.core.action import ActionSpace
from repro.core.env import EnvConfig, EpisodeStats, VNFPlacementEnv
from repro.core.manager import ManagerConfig, VNFManager
from repro.core.policy import DRLPlacementPolicy
from repro.core.reward import (
    RewardCalculator,
    RewardConfig,
    acceptance_focused_config,
    cost_focused_config,
    latency_focused_config,
)
from repro.core.soa import SoAVecPlacementEnv, soa_supported
from repro.core.state import EncoderConfig, StateEncoder
from repro.core.subproc import SubprocVecPlacementEnv, make_vec_env
from repro.core.timeout import BudgetedPolicy, DecisionOutcome
from repro.core.training import (
    EvaluationResult,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    VecTrainer,
)
from repro.core.vecenv import VecPlacementEnv, lane_workload_seed, make_lane_env

__all__ = [
    "ActionSpace",
    "EnvConfig",
    "EpisodeStats",
    "VNFPlacementEnv",
    "ManagerConfig",
    "VNFManager",
    "DRLPlacementPolicy",
    "RewardCalculator",
    "RewardConfig",
    "acceptance_focused_config",
    "cost_focused_config",
    "latency_focused_config",
    "EncoderConfig",
    "StateEncoder",
    "EvaluationResult",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "VecTrainer",
    "VecPlacementEnv",
    "SoAVecPlacementEnv",
    "soa_supported",
    "SubprocVecPlacementEnv",
    "make_vec_env",
    "BudgetedPolicy",
    "DecisionOutcome",
    "lane_workload_seed",
    "make_lane_env",
]
