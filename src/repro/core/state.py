"""State encoding for the VNF-placement MDP.

The encoder turns (substrate network, pending request, progress within the
request's chain) into a fixed-width feature vector.  All features are
normalized to roughly [0, 1] so that the same network architecture and
hyperparameters work across topology sizes, and so that the tabular baseline
can discretize the state meaningfully.

Per substrate node (4 features):

* CPU utilization,
* memory utilization,
* latency from the current anchor (the previous VNF's host, or the request's
  ingress node for the first VNF), normalized by the request's SLA, capped at 1,
* a binary "can host the next VNF" flag.

Per request (catalog one-hot + 5 scalars):

* one-hot of the next VNF type to place,
* remaining chain length / maximum chain length,
* bandwidth / bandwidth normalizer,
* fraction of the latency SLA already consumed,
* holding time / holding-time normalizer,
* fraction of the chain already placed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nfv.catalog import VNFCatalog
from repro.nfv.sfc import SFCRequest
from repro.substrate.ledger import LedgerRowCache
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_positive

#: Number of features encoded per substrate node.
NODE_FEATURES = 4

#: Number of scalar (non-one-hot) request features.
REQUEST_SCALARS = 5


@dataclass(frozen=True)
class EncoderConfig:
    """Normalization constants of the state encoder."""

    max_chain_length: int = 6
    bandwidth_normalizer_mbps: float = 400.0
    holding_time_normalizer: float = 600.0

    def __post_init__(self) -> None:
        check_positive(self.max_chain_length, "max_chain_length")
        check_positive(self.bandwidth_normalizer_mbps, "bandwidth_normalizer_mbps")
        check_positive(self.holding_time_normalizer, "holding_time_normalizer")


class StateEncoder:
    """Encodes placement-decision states for a fixed topology and catalog."""

    def __init__(
        self,
        network: SubstrateNetwork,
        catalog: VNFCatalog,
        config: Optional[EncoderConfig] = None,
    ) -> None:
        self.network = network
        self.catalog = catalog
        self.config = config or EncoderConfig()
        #: Node ids in the fixed order used by both the encoder and the action space.
        self.node_order: List[int] = list(network.node_ids)
        if not self.node_order:
            raise ValueError("cannot encode states for an empty network")
        self._row_cache = LedgerRowCache(self.node_order)

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of substrate nodes in the encoding."""
        return len(self.node_order)

    @property
    def state_dim(self) -> int:
        """Width of the encoded state vector."""
        return NODE_FEATURES * self.num_nodes + len(self.catalog) + REQUEST_SCALARS

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def anchor_node(
        self, request: SFCRequest, partial_assignment: Sequence[int]
    ) -> int:
        """The node traffic currently sits at: last placed VNF or the ingress."""
        if partial_assignment:
            return partial_assignment[-1]
        return request.source_node_id

    def encode(
        self,
        request: SFCRequest,
        vnf_index: int,
        partial_assignment: Sequence[int],
        partial_latency_ms: float,
    ) -> np.ndarray:
        """Encode the decision state for placing VNF ``vnf_index`` of ``request``.

        The whole node-feature block is built with batched array expressions
        (latency row = one matrix slice, utilization columns = ledger views);
        the per-node reference loop survives as :meth:`encode_reference` and
        is used automatically when the network routes in a non-dense mode.
        """
        if self.network.routing != "dense":
            return self.encode_reference(
                request, vnf_index, partial_assignment, partial_latency_ms
            )
        if not 0 <= vnf_index < request.num_vnfs:
            raise ValueError(
                f"vnf_index {vnf_index} outside the chain of length {request.num_vnfs}"
            )
        next_vnf = request.chain.vnf_at(vnf_index)
        demand = next_vnf.demand_array_for(request.bandwidth_mbps)
        anchor = self.anchor_node(request, partial_assignment)
        sla = request.sla.max_latency_ms

        num_nodes = self.num_nodes
        features = np.zeros(self.state_dim, dtype=float)
        ledger, rows = self._row_cache.get(self.network)
        utilization = ledger.utilization_matrix()
        latency = self.network.latency_row(anchor)
        can_host = ledger.can_host_all(demand)
        if not self._row_cache.identity:
            utilization = utilization[rows]
            latency = latency[rows]
            can_host = can_host[rows]

        node_block = features[: NODE_FEATURES * num_nodes].reshape(
            num_nodes, NODE_FEATURES
        )
        np.minimum(utilization[:, 0], 1.0, out=node_block[:, 0])
        np.minimum(utilization[:, 1], 1.0, out=node_block[:, 1])
        np.minimum(latency / sla, 1.0, out=node_block[:, 2])
        node_block[:, 3] = can_host

        offset = NODE_FEATURES * num_nodes
        features[offset + self.catalog.index_of(next_vnf.name)] = 1.0
        offset += len(self.catalog)
        self._write_request_scalars(
            features, offset, request, vnf_index, partial_latency_ms, sla
        )
        return features

    def encode_reference(
        self,
        request: SFCRequest,
        vnf_index: int,
        partial_assignment: Sequence[int],
        partial_latency_ms: float,
    ) -> np.ndarray:
        """The original per-node encoding loop, kept for equivalence tests."""
        if not 0 <= vnf_index < request.num_vnfs:
            raise ValueError(
                f"vnf_index {vnf_index} outside the chain of length {request.num_vnfs}"
            )
        next_vnf = request.chain.vnf_at(vnf_index)
        demand = next_vnf.demand_for(request.bandwidth_mbps)
        anchor = self.anchor_node(request, partial_assignment)
        sla = request.sla.max_latency_ms

        features = np.zeros(self.state_dim, dtype=float)
        offset = 0
        for node_id in self.node_order:
            node = self.network.node(node_id)
            utilization = node.utilization()
            latency = self.network.latency_between(anchor, node_id)
            features[offset + 0] = min(1.0, utilization["cpu"])
            features[offset + 1] = min(1.0, utilization["memory"])
            features[offset + 2] = min(1.0, latency / sla)
            features[offset + 3] = 1.0 if node.can_host(demand) else 0.0
            offset += NODE_FEATURES

        one_hot_offset = offset + self.catalog.index_of(next_vnf.name)
        features[one_hot_offset] = 1.0
        offset += len(self.catalog)
        self._write_request_scalars(
            features, offset, request, vnf_index, partial_latency_ms, sla
        )
        return features

    def _write_request_scalars(
        self,
        features: np.ndarray,
        offset: int,
        request: SFCRequest,
        vnf_index: int,
        partial_latency_ms: float,
        sla: float,
    ) -> None:
        remaining = request.num_vnfs - vnf_index
        features[offset + 0] = min(1.0, remaining / self.config.max_chain_length)
        features[offset + 1] = min(
            1.0, request.bandwidth_mbps / self.config.bandwidth_normalizer_mbps
        )
        features[offset + 2] = min(1.0, partial_latency_ms / sla)
        features[offset + 3] = min(
            1.0, request.holding_time / self.config.holding_time_normalizer
        )
        features[offset + 4] = vnf_index / max(1, request.num_vnfs)

    def describe(self) -> List[str]:
        """Human-readable names of every feature (used in docs and tests)."""
        names: List[str] = []
        for node_id in self.node_order:
            names.extend(
                [
                    f"node{node_id}:cpu_util",
                    f"node{node_id}:mem_util",
                    f"node{node_id}:latency_to_anchor",
                    f"node{node_id}:can_host",
                ]
            )
        names.extend(f"vnf_onehot:{name}" for name in self.catalog.names)
        names.extend(
            [
                "request:remaining_vnfs",
                "request:bandwidth",
                "request:sla_consumed",
                "request:holding_time",
                "request:progress",
            ]
        )
        return names
