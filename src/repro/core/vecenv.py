"""Synchronous vectorized placement environments.

:class:`VecPlacementEnv` steps K independent :class:`VNFPlacementEnv` lanes
behind one batched interface::

    lane 0:  [env] --state--+                          +--action--> [env]
    lane 1:  [env] --state--+--> (K, S) states --+     +--action--> [env]
      ...                   |                    |agent|    ...
    lane K-1:[env] --state--+    (K, A) masks ---+     +--action--> [env]

* :meth:`reset` returns a ``(K, state_dim)`` state batch;
* :meth:`step` applies one action per lane and returns batched
  ``(states, rewards, dones, infos)``, auto-resetting every lane whose
  episode finished (the pre-reset terminal observation is preserved in
  ``infos[i]["terminal_state"]``);
* :meth:`valid_action_masks` stacks the per-lane validity masks into a
  ``(K, num_actions)`` boolean array.

Lanes are plain environments stepped in order, so a K-lane vectorized run
with fixed per-lane seeds is *bitwise identical* to K serial runs — the
speedup comes from the agent side, where one batched forward pass serves all
K lanes (see ``Agent.select_actions``).  Lanes may be built from one scenario
(replicated with derived per-lane workload seeds) or from *different*
scenarios (e.g. a :func:`~repro.workloads.scenarios.scenario_grid` load
sweep), as long as every lane agrees on ``state_dim`` and ``num_actions``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.env import EnvConfig, EpisodeStats, VNFPlacementEnv
from repro.core.reward import RewardConfig
from repro.core.state import EncoderConfig
from repro.utils.rng import RandomState, derive_seed
from repro.workloads.scenarios import Scenario


def lane_workload_seed(seed: RandomState, lane_index: int, scenario_name: str) -> int:
    """The derived workload seed of lane ``lane_index``.

    Exposed so tests (and anyone reconstructing a lane serially) can build an
    environment that reproduces a vectorized lane's request stream exactly.
    """
    return derive_seed(seed, "vec_lane", lane_index, scenario_name)


def make_lane_env(
    scenario: Scenario,
    workload_seed: RandomState,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
) -> VNFPlacementEnv:
    """Build one environment lane: own network copy, own request stream."""
    lane_scenario = scenario.with_workload_seed(workload_seed)
    network = lane_scenario.build_network()
    generator = lane_scenario.build_generator(network)
    return VNFPlacementEnv(
        network=network,
        generator=generator,
        catalog=lane_scenario.catalog,
        reward_config=reward_config,
        encoder_config=encoder_config,
        config=env_config,
    )


class VecPlacementEnv:
    """K independent placement environments behind one batched interface."""

    def __init__(
        self,
        envs: Sequence[VNFPlacementEnv],
        auto_reset: bool = True,
        lane_names: Optional[Sequence[str]] = None,
    ) -> None:
        if not envs:
            raise ValueError("VecPlacementEnv needs at least one lane")
        self.envs: List[VNFPlacementEnv] = list(envs)
        reference = self.envs[0]
        for index, env in enumerate(self.envs):
            if (
                env.state_dim != reference.state_dim
                or env.num_actions != reference.num_actions
            ):
                raise ValueError(
                    f"lane {index} has (state_dim, num_actions)="
                    f"({env.state_dim}, {env.num_actions}) but lane 0 has "
                    f"({reference.state_dim}, {reference.num_actions}); all "
                    "lanes must share one observation and action space"
                )
        self.auto_reset = auto_reset
        if lane_names is not None and len(lane_names) != len(self.envs):
            raise ValueError(
                f"{len(lane_names)} lane names for {len(self.envs)} lanes"
            )
        self.lane_names: List[str] = (
            list(lane_names)
            if lane_names is not None
            else [f"lane{i}" for i in range(len(self.envs))]
        )
        #: Total episodes completed across all lanes since construction.
        self.episodes_completed = 0

    # ------------------------------------------------------------------ #
    # Construction from scenarios
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: Scenario,
        num_lanes: int,
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
    ) -> "VecPlacementEnv":
        """K lanes of one scenario with independent derived workload seeds."""
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        return cls.from_scenarios(
            [scenario] * num_lanes,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            auto_reset=auto_reset,
        )

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[Scenario],
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        derive_lane_seeds: bool = True,
    ) -> "VecPlacementEnv":
        """One lane per scenario — a scenario-diverse vectorized environment.

        By default every lane gets a workload seed derived from ``(seed, lane
        index, scenario name)``, so two lanes of the same scenario still see
        independent request streams while remaining individually
        reproducible.  Pass ``derive_lane_seeds=False`` to keep each
        scenario's own workload seed instead (e.g. to reproduce the exact
        request streams of a :func:`~repro.workloads.scenarios.scenario_grid`
        consumed elsewhere) — the scenarios must then be distinct, or lanes
        will duplicate one another's streams.
        """
        envs = [
            make_lane_env(
                scenario,
                lane_workload_seed(seed, index, scenario.name)
                if derive_lane_seeds
                else scenario.workload_config.seed,
                env_config=env_config,
                reward_config=reward_config,
                encoder_config=encoder_config,
            )
            for index, scenario in enumerate(scenarios)
        ]
        return cls(
            envs,
            auto_reset=auto_reset,
            lane_names=[scenario.name for scenario in scenarios],
        )

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_lanes(self) -> int:
        """Number of environment lanes (K)."""
        return len(self.envs)

    @property
    def state_dim(self) -> int:
        """Width of each lane's observation vector."""
        return self.envs[0].state_dim

    @property
    def num_actions(self) -> int:
        """Number of discrete actions (shared by all lanes)."""
        return self.envs[0].num_actions

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> np.ndarray:
        """Reset every lane; returns the ``(K, state_dim)`` state batch."""
        return np.stack([env.reset() for env in self.envs])

    def reset_lane(self, lane: int) -> np.ndarray:
        """Reset a single lane; returns its fresh state vector."""
        return self.envs[lane].reset()

    def valid_action_masks(self) -> np.ndarray:
        """Stacked ``(K, num_actions)`` boolean validity masks."""
        return np.stack([env.valid_action_mask() for env in self.envs])

    def lane_stats(self) -> List[EpisodeStats]:
        """The per-lane statistics of the episodes currently in progress."""
        return [env.stats for env in self.envs]

    def step(
        self, actions: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, object]]]:
        """Apply one action per lane.

        Returns ``(states, rewards, dones, infos)`` with shapes
        ``(K, state_dim)``, ``(K,)``, ``(K,)`` and a list of K info dicts.
        ``dones[i]`` marks the end of lane i's *episode*; with ``auto_reset``
        the lane is reset immediately and ``states[i]`` is the first state of
        its next episode, while ``infos[i]["terminal_state"]`` keeps the true
        terminal observation and ``infos[i]["episode_stats"]`` the finished
        episode's statistics.  Every info dict also carries its ``lane`` index
        and ``lane_name``.
        """
        actions = np.asarray(actions, dtype=int).ravel()
        if actions.shape[0] != self.num_lanes:
            raise ValueError(
                f"got {actions.shape[0]} actions for {self.num_lanes} lanes"
            )
        states = np.empty((self.num_lanes, self.state_dim), dtype=float)
        rewards = np.empty(self.num_lanes, dtype=float)
        dones = np.empty(self.num_lanes, dtype=bool)
        infos: List[Dict[str, object]] = []
        for lane, env in enumerate(self.envs):
            state, reward, done, info = env.step(int(actions[lane]))
            info["lane"] = lane
            info["lane_name"] = self.lane_names[lane]
            if done:
                self.episodes_completed += 1
                info["terminal_state"] = state
                if self.auto_reset:
                    state = env.reset()
            states[lane] = state
            rewards[lane] = reward
            dones[lane] = done
            infos.append(info)
        return states, rewards, dones, infos
