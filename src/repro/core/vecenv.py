"""Synchronous vectorized placement environments.

:class:`VecPlacementEnv` steps K independent :class:`VNFPlacementEnv` lanes
behind one batched interface::

    lane 0:  [env] --state--+                          +--action--> [env]
    lane 1:  [env] --state--+--> (K, S) states --+     +--action--> [env]
      ...                   |                    |agent|    ...
    lane K-1:[env] --state--+    (K, A) masks ---+     +--action--> [env]

* :meth:`reset` returns a ``(K, state_dim)`` state batch;
* :meth:`step` applies one action per lane and returns batched
  ``(states, rewards, dones, infos)``, auto-resetting every lane whose
  episode finished (the pre-reset terminal observation is preserved in
  ``infos[i]["terminal_state"]``);
* :meth:`valid_action_masks` stacks the per-lane validity masks into a
  ``(K, num_actions)`` boolean array.

Lanes are plain environments stepped in order, so a K-lane vectorized run
with fixed per-lane seeds is *bitwise identical* to K serial runs — the
speedup comes from the agent side, where one batched forward pass serves all
K lanes (see ``Agent.select_actions``).  Lanes may be built from one scenario
(replicated with derived per-lane workload seeds) or from *different*
scenarios (e.g. a :func:`~repro.workloads.scenarios.scenario_grid` load
sweep), as long as every lane agrees on ``state_dim`` and ``num_actions``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from dataclasses import dataclass, replace as dataclass_replace

from repro.core.env import EnvConfig, EpisodeStats, VNFPlacementEnv
from repro.core.reward import RewardConfig
from repro.core.state import EncoderConfig
from repro.sim.failures import FailureConfig
from repro.utils.rng import RandomState, derive_seed
from repro.workloads.scenarios import Scenario

#: Step outcomes shared by every vectorized backend, encoded as one byte per
#: lane in the lean-step protocol (and through subprocess shared memory).
#: Index 0 is "no outcome" and is never observed after a completed step.
OUTCOMES = (
    "",
    "rejected",
    "placed",
    "accepted",
    "no_route",
    "infeasible",
    "commit_failed",
)
OUTCOME_CODE = {name: code for code, name in enumerate(OUTCOMES)}


class LaneDecisionContext:
    """Batched arrays describing every lane's pending placement decision.

    Built once per decision step by
    :meth:`VecPlacementEnv.lane_decision_context` (for topology-shared dense
    lanes) and shared between the batched mask kernel and the vectorized
    baseline-policy kernels, so the per-lane Python gather happens once per
    step however many consumers read it.  All arrays are read-only by
    convention; rows of inactive lanes (no request in flight) hold neutral
    filler values and must be masked with :attr:`active`.
    """

    __slots__ = (
        "active",
        "anchor_rows",
        "demands",
        "extras",
        "budgets",
        "holding",
        "used",
        "capacity_plus_tol",
        "free_tol",
        "latency",
        "_constant_stack",
    )

    def __init__(
        self,
        active: np.ndarray,
        anchor_rows: np.ndarray,
        demands: np.ndarray,
        extras: np.ndarray,
        budgets: np.ndarray,
        holding: np.ndarray,
        used: np.ndarray,
        capacity_plus_tol: np.ndarray,
        latency: np.ndarray,
        constant_stack,
    ) -> None:
        self.active = active
        self.anchor_rows = anchor_rows
        self.demands = demands
        self.extras = extras
        self.budgets = budgets
        self.holding = holding
        self.used = used
        self.capacity_plus_tol = capacity_plus_tol
        # Same expression as SubstrateLedger.can_host_all, stacked over lanes.
        self.free_tol = capacity_plus_tol - used
        self.latency = latency
        #: Provider of cross-step-cached stacks of constant ledger matrices
        #: (VecPlacementEnv._stacked_constant); capacities and unit costs do
        #: not change between steps, so contexts share one stack per ledger
        #: set instead of rebuilding it every decision step.
        self._constant_stack = constant_stack

    @property
    def capacity(self) -> np.ndarray:
        """Stacked ``(K, N, 3)`` node capacities (cached across steps)."""
        return self._constant_stack("node_capacity")

    @property
    def capacity_safe(self) -> np.ndarray:
        """Stacked zero-safe capacities for utilization ratios (cached)."""
        return self._constant_stack("node_capacity_safe")

    @property
    def cost_per_unit(self) -> np.ndarray:
        """Stacked ``(K, N, 3)`` per-unit node costs (cached across steps)."""
        return self._constant_stack("node_cost_per_unit")


def lane_workload_seed(seed: RandomState, lane_index: int, scenario_name: str) -> int:
    """The derived workload seed of lane ``lane_index``.

    Exposed so tests (and anyone reconstructing a lane serially) can build an
    environment that reproduces a vectorized lane's request stream exactly.
    """
    return derive_seed(seed, "vec_lane", lane_index, scenario_name)


def lane_failure_seed(seed: RandomState, lane_index: int, scenario_name: str) -> int:
    """The derived failure-schedule seed of lane ``lane_index``.

    Mirrors :func:`lane_workload_seed` for fault-injected lanes, so a lane's
    failure pattern can be reproduced serially as well.
    """
    return derive_seed(seed, "vec_lane_failures", lane_index, scenario_name)


@dataclass
class LaneSpec:
    """Everything needed to (re)build one environment lane.

    This is the construction kernel of the vectorized environments: the sync
    :class:`VecPlacementEnv` builds all K lanes from specs in-process, while
    :class:`~repro.core.subproc.SubprocVecPlacementEnv` ships each worker its
    shard of specs and lets the worker build the very same lanes locally —
    live environments never cross a process boundary.
    """

    scenario: Scenario
    workload_seed: int
    name: str
    env_config: Optional[EnvConfig] = None
    reward_config: Optional[RewardConfig] = None
    encoder_config: Optional[EncoderConfig] = None
    failure_config: Optional[FailureConfig] = None

    def build(self) -> VNFPlacementEnv:
        """Build this lane: own network copy, own request stream."""
        return make_lane_env(
            self.scenario,
            self.workload_seed,
            env_config=self.env_config,
            reward_config=self.reward_config,
            encoder_config=self.encoder_config,
            failure_config=self.failure_config,
        )


def lane_specs_from_scenarios(
    scenarios: Sequence[Scenario],
    seed: RandomState = 0,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
    derive_lane_seeds: bool = True,
    failure_config: Optional[FailureConfig] = None,
) -> List[LaneSpec]:
    """One :class:`LaneSpec` per scenario, with derived per-lane seeds.

    The seed-derivation rules are exactly those of
    :meth:`VecPlacementEnv.from_scenarios` (workload seeds via
    :func:`lane_workload_seed`, failure seeds via :func:`lane_failure_seed`),
    so lanes built from these specs — in-process or in worker processes —
    reproduce the same request and failure streams.
    """
    return [
        LaneSpec(
            scenario=scenario,
            workload_seed=(
                lane_workload_seed(seed, index, scenario.name)
                if derive_lane_seeds
                else scenario.workload_config.seed
            ),
            name=scenario.name,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            failure_config=(
                None
                if failure_config is None
                else dataclass_replace(
                    failure_config,
                    seed=lane_failure_seed(seed, index, scenario.name),
                )
            ),
        )
        for index, scenario in enumerate(scenarios)
    ]


def make_lane_env(
    scenario: Scenario,
    workload_seed: RandomState,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
    failure_config: Optional[FailureConfig] = None,
) -> VNFPlacementEnv:
    """Build one environment lane: own network copy, own request stream."""
    lane_scenario = scenario.with_workload_seed(workload_seed)
    network = lane_scenario.build_network()
    generator = lane_scenario.build_generator(network)
    return VNFPlacementEnv(
        network=network,
        generator=generator,
        catalog=lane_scenario.catalog,
        reward_config=reward_config,
        encoder_config=encoder_config,
        config=env_config,
        failure_config=failure_config,
    )


class VecPlacementEnv:
    """K independent placement environments behind one batched interface."""

    def __init__(
        self,
        envs: Sequence[VNFPlacementEnv],
        auto_reset: bool = True,
        lane_names: Optional[Sequence[str]] = None,
    ) -> None:
        if not envs:
            raise ValueError("VecPlacementEnv needs at least one lane")
        self.envs: List[VNFPlacementEnv] = list(envs)
        reference = self.envs[0]
        for index, env in enumerate(self.envs):
            if (
                env.state_dim != reference.state_dim
                or env.num_actions != reference.num_actions
            ):
                raise ValueError(
                    f"lane {index} has (state_dim, num_actions)="
                    f"({env.state_dim}, {env.num_actions}) but lane 0 has "
                    f"({reference.state_dim}, {reference.num_actions}); all "
                    "lanes must share one observation and action space"
                )
        self.auto_reset = auto_reset
        if lane_names is not None and len(lane_names) != len(self.envs):
            raise ValueError(
                f"{len(lane_names)} lane names for {len(self.envs)} lanes"
            )
        self.lane_names: List[str] = (
            list(lane_names)
            if lane_names is not None
            else [f"lane{i}" for i in range(len(self.envs))]
        )
        #: Total episodes completed across all lanes since construction.
        self.episodes_completed = 0
        self._mask_kernel = self._detect_mask_kernel()
        #: Bumped whenever any lane advances; memoizes the decision context.
        self._decision_version = 0
        self._context: Optional[LaneDecisionContext] = None
        self._context_version = -1
        self._zero_demand = np.zeros(3)
        #: attr -> ((attr, ledger ids), stacked matrix) for constant stacks.
        self._const_stack_cache: Dict[str, Tuple[tuple, np.ndarray]] = {}
        # Lean-step outcome arrays (see the accessors below): the reference
        # backend records them from the per-lane info dicts it builds anyway,
        # so the lean protocol is a contract here, not an optimization.
        num_lanes = len(self.envs)
        self._last_outcomes = np.zeros(num_lanes, dtype=np.int8)
        self._last_request_done = np.zeros(num_lanes, dtype=bool)
        self._last_request_ids = np.zeros(num_lanes, dtype=np.int64)
        self._last_finished_stats: Dict[int, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Construction from scenarios
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: Scenario,
        num_lanes: int,
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        failure_config: Optional[FailureConfig] = None,
    ) -> "VecPlacementEnv":
        """K lanes of one scenario with independent derived workload seeds."""
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        return cls.from_scenarios(
            [scenario] * num_lanes,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            auto_reset=auto_reset,
            failure_config=failure_config,
        )

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[Scenario],
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        derive_lane_seeds: bool = True,
        failure_config: Optional[FailureConfig] = None,
    ) -> "VecPlacementEnv":
        """One lane per scenario — a scenario-diverse vectorized environment.

        By default every lane gets a workload seed derived from ``(seed, lane
        index, scenario name)``, so two lanes of the same scenario still see
        independent request streams while remaining individually
        reproducible.  Pass ``derive_lane_seeds=False`` to keep each
        scenario's own workload seed instead (e.g. to reproduce the exact
        request streams of a :func:`~repro.workloads.scenarios.scenario_grid`
        consumed elsewhere) — the scenarios must then be distinct, or lanes
        will duplicate one another's streams.

        With a ``failure_config`` every lane injects node failures from its
        own derived schedule seed (:func:`lane_failure_seed`), making the
        batch a fault-diverse availability sweep.
        """
        specs = lane_specs_from_scenarios(
            scenarios,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            derive_lane_seeds=derive_lane_seeds,
            failure_config=failure_config,
        )
        return cls.from_specs(specs, auto_reset=auto_reset)

    @classmethod
    def from_specs(
        cls, specs: Sequence[LaneSpec], auto_reset: bool = True
    ) -> "VecPlacementEnv":
        """Build one lane per :class:`LaneSpec` (the shard-construction path)."""
        return cls(
            [spec.build() for spec in specs],
            auto_reset=auto_reset,
            lane_names=[spec.name for spec in specs],
        )

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_lanes(self) -> int:
        """Number of environment lanes (K)."""
        return len(self.envs)

    @property
    def state_dim(self) -> int:
        """Width of each lane's observation vector."""
        return self.envs[0].state_dim

    @property
    def num_actions(self) -> int:
        """Number of discrete actions (shared by all lanes)."""
        return self.envs[0].num_actions

    @property
    def backend(self) -> str:
        """Backend tag of this vectorized environment."""
        return "reference"

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self, observe: bool = True) -> np.ndarray:
        """Reset every lane; returns the ``(K, state_dim)`` state batch.

        ``observe=False`` skips per-lane state encoding (zero batch).
        """
        self._decision_version += 1
        return np.stack([env.reset(observe=observe) for env in self.envs])

    def reset_lane(self, lane: int) -> np.ndarray:
        """Reset a single lane; returns its fresh state vector."""
        self._decision_version += 1
        return self.envs[lane].reset()

    def _detect_mask_kernel(self) -> bool:
        """Whether the batched mask kernel applies to this lane set.

        The kernel requires every lane to route densely over the *same*
        topology (identical node order, ledger row order and latency matrix)
        and to share one ``latency_mask_check`` setting — the common case for
        lanes built from one scenario family.  Anything else falls back to
        the per-lane reference path.
        """
        reference = self.envs[0]
        if reference.network.routing != "dense":
            return False
        ref_order = reference.encoder.node_order
        ref_matrix = reference.network.latency_matrix
        ref_latency_check = reference.config.latency_mask_check
        for env in self.envs:
            if env.network.routing != "dense":
                return False
            if env.config.latency_mask_check != ref_latency_check:
                return False
            if env.encoder.node_order != ref_order:
                return False
            if env.encoder.node_order != list(env.network.ledger.node_ids):
                return False
            if env is not reference and not np.array_equal(
                env.network.latency_matrix, ref_matrix
            ):
                return False
        return True

    def lane_decision_context(self) -> Optional[LaneDecisionContext]:
        """The batched decision context of the current step (memoized).

        ``None`` when the lane set does not support the batched kernel
        (mixed topologies or non-dense routing).  The context is rebuilt
        lazily after every :meth:`step` / :meth:`reset` / :meth:`reset_lane`
        and shared by the mask kernel and any bound baseline-policy kernels.
        """
        if not self._mask_kernel:
            return None
        if self._context is not None and self._context_version == self._decision_version:
            return self._context
        envs = self.envs
        # Per-lane values accumulate in Python lists and convert to arrays in
        # one shot: element-wise writes into preallocated numpy arrays cost
        # roughly a microsecond each, which dominates a K=16 gather.
        active = []
        demands = []
        extras = []
        budgets = []
        holding = []
        anchor_rows = []
        used_rows = []
        ledgers = []
        zero_demand = self._zero_demand
        dense_index = envs[0].network.dense_routing.index
        for env in envs:
            ledger = env.network.ledger
            ledgers.append(ledger)
            used_rows.append(ledger.node_used)
            request = env._current_request
            if request is None:
                active.append(False)
                demands.append(zero_demand)
                extras.append(0.0)
                budgets.append(1.0)
                holding.append(0.0)
                anchor_rows.append(0)
                continue
            active.append(True)
            next_vnf = request.chain.vnf_at(env._vnf_index)
            demands.append(next_vnf.demand_array_for(request.bandwidth_mbps))
            extras.append(next_vnf.processing_delay_ms + env._partial_latency)
            budgets.append(request.sla.max_latency_ms)
            holding.append(request.holding_time)
            partial = env._partial_assignment
            anchor_rows.append(
                dense_index[partial[-1] if partial else request.source_node_id]
            )
        anchor_index = np.array(anchor_rows, dtype=np.int64)
        num_lanes = len(envs)
        num_nodes = len(used_rows[0])
        context = LaneDecisionContext(
            active=np.array(active, dtype=bool),
            anchor_rows=anchor_index,
            # concatenate+reshape instead of np.stack: same layout, roughly
            # a third of the per-call overhead on small row lists.
            demands=np.concatenate(demands).reshape(num_lanes, 3),
            extras=np.array(extras),
            budgets=np.array(budgets),
            holding=np.array(holding),
            used=np.concatenate(used_rows).reshape(num_lanes, num_nodes, 3),
            capacity_plus_tol=self._stacked_constant("_capacity_plus_tol", ledgers),
            latency=envs[0].network.latency_matrix[anchor_index],
            constant_stack=self._stacked_constant,
        )
        self._context = context
        self._context_version = self._decision_version
        return context

    def _stacked_constant(self, attr: str, ledgers: Optional[List] = None) -> np.ndarray:
        """Stacked per-lane ledger matrices constant between allocations.

        Capacities and unit costs change only when a lane's ledger object is
        rebuilt (topology mutation), so each requested attribute is stacked
        once per ledger set and shared by every decision step's context.
        """
        if ledgers is None:
            ledgers = [env.network.ledger for env in self.envs]
        # The cache keys on the ledger *objects* (held strongly, compared by
        # identity) rather than their id()s: a rebuilt ledger could land on
        # a freed ledger's recycled id and inherit a stale stack (RPL103).
        cached = self._const_stack_cache.get(attr)
        if (
            cached is None
            or len(cached[0]) != len(ledgers)
            or any(held is not live for held, live in zip(cached[0], ledgers))
        ):
            cached = (
                tuple(ledgers),
                np.stack([getattr(l, attr) for l in ledgers]),
            )
            self._const_stack_cache[attr] = cached
        return cached[1]

    def valid_action_masks(self) -> np.ndarray:
        """Stacked ``(K, num_actions)`` boolean validity masks.

        For topology-shared dense lanes the whole batch is computed by one
        array kernel over the shared :meth:`lane_decision_context` — stacked
        ledger columns, one latency-matrix gather and a single ``(K, N)``
        comparison chain — bitwise identical to stacking the per-lane
        :meth:`~repro.core.env.VNFPlacementEnv.valid_action_mask` calls (the
        reference path, used whenever lanes differ structurally).
        """
        context = self.lane_decision_context()
        if context is None:
            return np.stack([env.valid_action_mask() for env in self.envs])
        envs = self.envs
        num_actions = self.num_actions
        num_nodes = num_actions - 1
        masks = np.zeros((len(envs), num_actions), dtype=bool)
        masks[:, num_nodes] = True  # reject is always valid
        valid = (context.demands[:, None, :] <= context.free_tol).all(axis=2)
        if envs[0].config.latency_mask_check:
            valid &= (
                context.latency + context.extras[:, None]
                <= context.budgets[:, None]
            )
        valid &= context.active[:, None]
        for lane, env in enumerate(envs):
            for node_id in env._failed_nodes:
                valid[lane, env._node_action[node_id]] = False
        masks[:, :num_nodes] = valid
        return masks

    def worker_metadata(self) -> Dict[str, object]:
        """Shard-compatibility metadata for the subprocess worker handshake.

        Every backend a worker can host exposes the same keys; the parent
        compares them across shards to decide whether the cross-shard
        batched decision context applies.
        """
        reference = self.envs[0]
        kernel_ok = self._mask_kernel
        return {
            "state_dim": self.state_dim,
            "num_actions": self.num_actions,
            "num_nodes": self.num_actions - 1,
            "kernel_ok": kernel_ok,
            "node_order": list(reference.encoder.node_order),
            "latency_check": bool(reference.config.latency_mask_check),
            "latency_matrix": (
                np.asarray(reference.network.latency_matrix) if kernel_ok else None
            ),
        }

    def constant_stacks(self) -> Dict[str, np.ndarray]:
        """Per-lane ``(K, N, 3)`` stacks of the constant ledger matrices."""
        ledgers = [env.network.ledger for env in self.envs]
        return {
            name: self._stacked_constant(name, ledgers)
            for name in (
                "node_capacity",
                "node_capacity_safe",
                "node_cost_per_unit",
                "_capacity_plus_tol",
            )
        }

    def lane_stats(self) -> List[EpisodeStats]:
        """The per-lane statistics of the episodes currently in progress."""
        return [env.stats for env in self.envs]

    def lane_failed_nodes(self) -> List[List[int]]:
        """Per-lane node ids currently fenced by an injected failure."""
        return [env.failed_nodes for env in self.envs]

    # ------------------------------------------------------------------ #
    # Lean-step accessors (valid after the most recent step())
    # ------------------------------------------------------------------ #
    def last_outcome_codes(self) -> np.ndarray:
        """Per-lane outcome codes of the most recent step (into OUTCOMES).

        Part of the lean-step protocol: with ``step(..., info=False)`` no
        info dicts are built, and callers that need outcomes read this
        ``(K,)`` int8 array instead.  The returned array is owned by the
        environment and overwritten by the next step.
        """
        return self._last_outcomes

    def last_request_done(self) -> np.ndarray:
        """Per-lane "request finished this step" flags of the last step."""
        return self._last_request_done

    def last_request_ids(self) -> np.ndarray:
        """Per-lane ids of the request each lane acted on last step."""
        return self._last_request_ids

    def last_episode_stats(self, lane: int) -> Dict[str, float]:
        """Finished-episode statistics of a lane whose episode ended.

        Only valid for lanes with ``dones[lane]`` true in the most recent
        step; the payload equals the ``episode_stats`` info entry of the
        full-step protocol.
        """
        try:
            return self._last_finished_stats[lane]
        except KeyError:
            raise KeyError(
                f"lane {lane} did not finish an episode in the last step"
            ) from None

    def close(self) -> None:
        """Release lane resources (a no-op for the in-process lane set).

        Part of the shared vectorized-environment surface: callers close
        whatever :func:`~repro.core.subproc.make_vec_env` handed them without
        caring whether worker processes back it.
        """

    def __enter__(self) -> "VecPlacementEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def step(
        self, actions: Sequence[int], observe: bool = True, info: bool = True
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[List[Dict[str, object]]]]:
        """Apply one action per lane.

        Returns ``(states, rewards, dones, infos)`` with shapes
        ``(K, state_dim)``, ``(K,)``, ``(K,)`` and a list of K info dicts.
        ``dones[i]`` marks the end of lane i's *episode*; with ``auto_reset``
        the lane is reset immediately and ``states[i]`` is the first state of
        its next episode, while ``infos[i]["terminal_state"]`` keeps the true
        terminal observation and ``infos[i]["episode_stats"]`` the finished
        episode's statistics.  Every info dict also carries its ``lane`` index
        and ``lane_name``.  With ``observe=False`` next-state encoding is
        skipped lane-by-lane and the state batch is all zeros — the fast path
        for batched placement policies that read the live lane substrate.

        ``info=False`` selects the **lean-step protocol**: the infos element
        of the return tuple is ``None`` and callers read the per-lane outcome
        arrays through :meth:`last_outcome_codes` / :meth:`last_request_done`
        / :meth:`last_request_ids` / :meth:`last_episode_stats` instead.  The
        lean path changes only what is *returned*, never what happens — the
        trajectory (rewards, dones, outcomes, stats) is bitwise identical to
        the full protocol (``tests/differential.py`` enforces this).
        """
        actions = np.asarray(actions, dtype=int).ravel()
        if actions.shape[0] != self.num_lanes:
            raise ValueError(
                f"got {actions.shape[0]} actions for {self.num_lanes} lanes"
            )
        self._decision_version += 1
        states = np.empty((self.num_lanes, self.state_dim), dtype=float)
        rewards = np.empty(self.num_lanes, dtype=float)
        dones = np.empty(self.num_lanes, dtype=bool)
        infos: Optional[List[Dict[str, object]]] = [] if info else None
        outcomes = self._last_outcomes
        request_done = self._last_request_done
        request_ids = self._last_request_ids
        self._last_finished_stats.clear()
        for lane, env in enumerate(self.envs):
            state, reward, done, lane_info = env.step(
                int(actions[lane]), observe=observe
            )
            outcomes[lane] = OUTCOME_CODE[lane_info["outcome"]]
            request_done[lane] = lane_info["request_done"]
            request_ids[lane] = lane_info["request_id"]
            if done:
                self.episodes_completed += 1
                self._last_finished_stats[lane] = lane_info["episode_stats"]
                if info:
                    lane_info["terminal_state"] = state
                if self.auto_reset:
                    state = env.reset(observe=observe)
            states[lane] = state
            rewards[lane] = reward
            dones[lane] = done
            if info:
                lane_info["lane"] = lane
                lane_info["lane_name"] = self.lane_names[lane]
                infos.append(lane_info)
        return states, rewards, dones, infos
