"""The high-level VNF management facade.

:class:`VNFManager` bundles the full DRL-VNF-management pipeline behind a
small API:

* build the environment for a scenario,
* train an agent (DQN by default) on it,
* expose the trained controller as an online
  :class:`~repro.sim.simulation.PlacementPolicy`, and
* evaluate it in the discrete-event simulator against a request trace.

Examples and benchmarks use this class instead of wiring the pieces by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.agents.base import Agent
from repro.agents.dqn import DQNAgent, DQNConfig
from repro.core.env import EnvConfig, VNFPlacementEnv
from repro.core.policy import DRLPlacementPolicy
from repro.core.reward import RewardConfig
from repro.core.state import EncoderConfig
from repro.core.training import (
    EvaluationResult,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    VecTrainer,
)
from repro.core.vecenv import VecPlacementEnv
from repro.sim.simulation import NFVSimulation, SimulationConfig, SimulationResult
from repro.utils.rng import RandomState, derive_seed
from repro.workloads.scenarios import Scenario


@dataclass
class ManagerConfig:
    """Knobs of the end-to-end training pipeline."""

    training: TrainingConfig = None
    env: EnvConfig = None
    reward: RewardConfig = None
    encoder: EncoderConfig = None
    dqn: DQNConfig = None
    #: Number of parallel environment lanes used for training.  1 keeps the
    #: historical serial trainer; >1 trains on a K-lane vectorized
    #: environment with derived per-lane workload seeds.
    training_lanes: int = 1
    #: Number of worker processes the training lanes are sharded across.
    #: 1 keeps the in-process vectorized environment; >1 builds a
    #: shared-memory :class:`~repro.core.subproc.SubprocVecPlacementEnv`
    #: (degrading to in-process where subprocesses are unavailable).
    #: Trajectories are identical either way.
    env_workers: int = 1

    def __post_init__(self) -> None:
        self.training = self.training or TrainingConfig()
        self.env = self.env or EnvConfig()
        self.reward = self.reward or RewardConfig()
        self.encoder = self.encoder or EncoderConfig()
        self.dqn = self.dqn or DQNConfig()
        if self.training_lanes < 1:
            raise ValueError(
                f"training_lanes must be >= 1, got {self.training_lanes}"
            )
        if self.env_workers < 1:
            raise ValueError(
                f"env_workers must be >= 1, got {self.env_workers}"
            )


class VNFManager:
    """Trains and serves a DRL placement controller for one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        agent: Optional[Agent] = None,
        config: Optional[ManagerConfig] = None,
        seed: RandomState = 0,
    ) -> None:
        self.scenario = scenario
        self.config = config or ManagerConfig()
        self.seed = seed

        # The training environment owns its own copy of the substrate so that
        # training never pollutes evaluation runs.
        if self.config.training_lanes == 1:
            self._training_network = scenario.build_network()
            self._generator = scenario.build_generator(self._training_network)
            self.env = VNFPlacementEnv(
                network=self._training_network,
                generator=self._generator,
                catalog=scenario.catalog,
                reward_config=self.config.reward,
                encoder_config=self.config.encoder,
                config=self.config.env,
            )
            self.agent = agent or DQNAgent(
                state_dim=self.env.state_dim,
                num_actions=self.env.num_actions,
                config=self.config.dqn,
                seed=derive_seed(seed, "agent"),
            )
            self.trainer: VecTrainer = Trainer(
                self.env, self.agent, self.config.training
            )
        else:
            from repro.core.subproc import make_vec_env

            venv = make_vec_env(
                [scenario] * self.config.training_lanes,
                seed=derive_seed(seed, "vec_lanes"),
                env_config=self.config.env,
                reward_config=self.config.reward,
                encoder_config=self.config.encoder,
                workers=self.config.env_workers,
                backend="auto",
            )
            if isinstance(venv, VecPlacementEnv):
                self.env = venv.envs[0]
            else:
                # Worker-backed or SoA lanes expose no in-process per-lane
                # environments; rebuild lane 0 locally as the representative
                # environment (same derived seed, so it mirrors the training
                # lane exactly).
                from repro.core.vecenv import lane_specs_from_scenarios

                self.env = lane_specs_from_scenarios(
                    [scenario],
                    seed=derive_seed(seed, "vec_lanes"),
                    env_config=self.config.env,
                    reward_config=self.config.reward,
                    encoder_config=self.config.encoder,
                )[0].build()
            self._training_network = self.env.network
            self._generator = self.env.generator
            self.agent = agent or DQNAgent(
                state_dim=venv.state_dim,
                num_actions=venv.num_actions,
                config=self.config.dqn,
                seed=derive_seed(seed, "agent"),
            )
            self.trainer = VecTrainer(venv, self.agent, self.config.training)
        self._trained = False

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        """True after :meth:`train` has completed at least once."""
        return self._trained

    def train(self, verbose: bool = False) -> TrainingHistory:
        """Train the agent on the scenario and return the learning curves."""
        history = self.trainer.train(verbose=verbose)
        self._trained = True
        return history

    def evaluate_agent(self, episodes: int = 5) -> EvaluationResult:
        """Greedy evaluation of the agent inside the training environment."""
        return self.trainer.evaluate(episodes)

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def build_policy(self, network=None) -> DRLPlacementPolicy:
        """Wrap the (trained) agent as an online placement policy.

        ``network`` must be the same substrate object the evaluation
        simulation mutates, so that the policy observes live utilization.
        """
        network = network if network is not None else self.scenario.build_network()
        return DRLPlacementPolicy(
            agent=self.agent,
            network=network,
            catalog=self.scenario.catalog,
            encoder_config=self.config.encoder,
        )

    def evaluate_online(
        self,
        requests=None,
        simulation_config: Optional[SimulationConfig] = None,
    ) -> SimulationResult:
        """Evaluate the trained controller in the discrete-event simulator."""
        network = self.scenario.build_network()
        policy = self.build_policy(network)
        simulation = NFVSimulation(
            network,
            policy,
            simulation_config
            or SimulationConfig(horizon=self.scenario.workload_config.horizon),
        )
        requests = requests if requests is not None else self.scenario.generate_requests()
        return simulation.run(requests)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_agent(self, path: Union[str, Path]) -> Path:
        """Persist the agent's learnable parameters."""
        return self.agent.save(path)

    def load_agent(self, path: Union[str, Path]) -> None:
        """Restore agent parameters saved by :meth:`save_agent`."""
        self.agent.load(path)
        self._trained = True

    def close(self) -> None:
        """Release training resources (stops env worker processes, if any)."""
        self.trainer.close()

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly description of the manager's configuration."""
        return {
            "scenario": self.scenario.name,
            "agent": self.agent.name,
            "state_dim": self.env.state_dim,
            "num_actions": self.env.num_actions,
            "trained": self._trained,
            "reward": self.env.rewards.describe(),
        }
