"""Wall-clock decision budgets for placement policies.

An online serving loop cannot let one slow policy call stall the request
stream: every decision gets a wall-clock budget, and a policy that exceeds it
is *preempted* — its (late) answer is discarded and the request falls through
to the next tier of the fallback chain.

Preemption here is *soft*: Python cannot safely interrupt an arbitrary policy
mid-call, so the call runs to completion, the elapsed time is measured, and an
over-budget result is thrown away.  What the serving loop is **charged** is
capped at the budget (``charged_s = min(elapsed, budget)``), which models a
real serving system where the slow computation is cancelled at the deadline —
and gives the fallback chain the hard guarantee that total decision latency
never exceeds the sum of its tier budgets.

For deterministic tests and benchmarks a ``latency_model`` can replace the
measured wall-clock with a synthetic per-request latency, so timeout paths can
be exercised without actually burning time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DecisionOutcome:
    """The result of one budgeted policy invocation.

    ``elapsed_s`` is the measured (or modelled) decision time; ``charged_s``
    is what the serving loop accounts for — capped at the budget, because an
    over-budget decision is abandoned at the deadline.
    """

    placement: Optional[Placement]
    elapsed_s: float
    charged_s: float
    timed_out: bool


class BudgetedPolicy(PlacementPolicy):
    """Wraps a policy with a wall-clock decision budget.

    ``clock`` (default :func:`time.perf_counter`) is injectable for tests;
    ``latency_model``, when given, is called as ``latency_model(request)`` and
    its return value replaces the measured elapsed time entirely — the
    wrapped policy still runs (its placement is used when under budget), but
    timing becomes deterministic.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        budget_s: float,
        clock: Optional[Callable[[], float]] = None,
        latency_model: Optional[Callable[[SFCRequest], float]] = None,
    ) -> None:
        check_positive(budget_s, "budget_s")
        self.policy = policy
        self.budget_s = budget_s
        self.name = f"budgeted[{policy.name}]"
        self._clock = clock or time.perf_counter
        self._latency_model = latency_model
        self.calls = 0
        self.timeouts = 0
        self.total_charged_s = 0.0

    def decide(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> DecisionOutcome:
        """Run the wrapped policy under the budget and account for the time."""
        start = self._clock()
        placement = self.policy.place(request, network)
        elapsed = self._clock() - start
        if self._latency_model is not None:
            elapsed = float(self._latency_model(request))
        timed_out = elapsed > self.budget_s
        charged = min(elapsed, self.budget_s)
        self.calls += 1
        self.total_charged_s += charged
        if timed_out:
            self.timeouts += 1
            placement = None  # soft preemption: the late answer is discarded
        return DecisionOutcome(
            placement=placement,
            elapsed_s=elapsed,
            charged_s=charged,
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------ #
    # PlacementPolicy interface (delegation)
    # ------------------------------------------------------------------ #
    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        return self.decide(request, network).placement

    def on_departure(self, request_id: int, network: SubstrateNetwork) -> None:
        self.policy.on_departure(request_id, network)

    def reset(self) -> None:
        self.policy.reset()
        self.calls = 0
        self.timeouts = 0
        self.total_charged_s = 0.0

    @property
    def timeout_ratio(self) -> float:
        """Fraction of calls that blew the budget."""
        return self.timeouts / self.calls if self.calls else 0.0
