"""Process-parallel vectorized placement environments.

:class:`SubprocVecPlacementEnv` shards the K lanes of a
:class:`~repro.core.vecenv.VecPlacementEnv` across W worker processes::

    parent                      worker 0                worker W-1
    ------                      --------                ----------
    actions ──(shm)──────────▶  lanes [0, k0)    ...    lanes [kW-1, K)
    step cmd ──(pipe)────────▶  VecPlacementEnv         VecPlacementEnv
    states/masks/rewards/...  ◀──(shm)── shard slices ──(shm)──┘

Each worker rebuilds its shard of lanes locally from pickled
:class:`~repro.core.vecenv.LaneSpec` objects (live environments never cross a
process boundary) and drives them with the *same* sync
:class:`~repro.core.vecenv.VecPlacementEnv` kernel — batched mask kernel,
memoized :class:`~repro.core.vecenv.LaneDecisionContext`, auto-reset — so a
sharded run is decision-for-decision identical to the sync class.  Per-step
payloads — the ``(K, S)`` state batch, ``(K, A)`` masks, rewards/dones, info
numerics (outcomes, episode statistics, terminal states) and fault-injection
buffers (fenced-node ids) — travel through one
:mod:`multiprocessing.shared_memory` block; the command pipes carry only tiny
control tuples, so step/reset round-trips copy no pickled state.

The class exposes the exact ``reset`` / ``step`` / ``valid_action_masks`` /
``lane_decision_context`` surface of the sync class, so
:class:`~repro.core.training.VecTrainer`,
:func:`~repro.experiments.runner.evaluate_agent_across_scenarios` and the
batched baseline policies run unmodified on top of it.  Heuristic policies
additionally bind through :meth:`bind_policy`: the policy is shipped to every
worker once and acts on the live shard substrate in-process, with only the
chosen actions crossing back through shared memory.

Use :func:`make_vec_env` to pick the backend: it degrades to the sync class
for one worker, one lane, platforms without ``fork``, and inside worker
processes (nested pools must not spawn grandchildren).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import traceback
from copy import copy as shallow_copy
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.env import EnvConfig, EpisodeStats
from repro.core.reward import RewardConfig
from repro.core.state import EncoderConfig
from repro.core.vecenv import (
    OUTCOME_CODE,
    OUTCOMES,
    LaneDecisionContext,
    LaneSpec,
    VecPlacementEnv,
    lane_specs_from_scenarios,
)
from repro.sim.failures import FailureConfig
from repro.utils.rng import RandomState
from repro.workloads.scenarios import Scenario

__all__ = [
    "SubprocVecPlacementEnv",
    "make_vec_env",
    "in_worker_process",
    "subproc_available",
]

#: Field order of the episode-statistics rows mirrored through shared memory.
STATS_FIELDS = (
    "requests_seen",
    "accepted",
    "rejected",
    "infeasible",
    "total_reward",
    "total_latency_ms",
    "total_cost",
    "disrupted",
)
_STATS_INT_FIELDS = {"requests_seen", "accepted", "rejected", "infeasible", "disrupted"}

#: Key order of ``EpisodeStats.as_dict()`` payloads (finished episodes travel
#: through shared memory as one row of these values).
STATS_DICT_FIELDS = (
    "requests_seen",
    "accepted",
    "rejected",
    "infeasible",
    "total_reward",
    "acceptance_ratio",
    "mean_latency_ms",
    "total_cost",
    "disrupted",
)

#: Step outcomes encoded as one byte per lane (0 is "no outcome", never seen
#: after a step).  Aliases of the canonical tables in ``repro.core.vecenv``
#: so codes travelling through shared memory always match the lean-step
#: accessors of every backend.
_OUTCOMES = OUTCOMES
_OUTCOME_CODE = OUTCOME_CODE

#: Environment variable set by :mod:`repro.experiments.parallel` inside its
#: pool workers; :func:`make_vec_env` degrades to the sync backend there.
POOL_WORKER_ENV = "REPRO_IN_POOL_WORKER"


def subproc_available() -> bool:
    """Whether this platform supports the shared-memory worker backend.

    Workers are started with the ``fork`` method so that lane specs (which
    may close over scenario topology factories) need never be picklable for
    process *creation*; platforms without ``fork`` fall back to the sync
    environment.
    """
    return "fork" in mp.get_all_start_methods()


def in_worker_process() -> bool:
    """True inside any multiprocessing child (pool worker or env worker).

    Subprocess environments must not be created there: nested pools
    oversubscribe the machine and ``ProcessPoolExecutor`` workers may not
    spawn grandchildren cleanly on every platform.
    """
    if os.environ.get(POOL_WORKER_ENV, "") == "1":
        return True
    return mp.parent_process() is not None


# --------------------------------------------------------------------------- #
# Shared-memory layout
# --------------------------------------------------------------------------- #
class SharedLayout:
    """Offsets and shapes of every array in the shared-memory block.

    The layout is a pure description (picklable) computed once from the lane
    dimensions; parent and workers both map numpy views onto the same block
    from it.  All arrays are 8-byte aligned.
    """

    def __init__(self, num_lanes: int, state_dim: int, num_actions: int, num_nodes: int) -> None:
        K, S, A, N = num_lanes, state_dim, num_actions, num_nodes
        self.fields: List[Tuple[str, tuple, str]] = [
            ("states", (K, S), "f8"),
            ("terminal_states", (K, S), "f8"),
            ("masks", (K, A), "b1"),
            ("actions", (K,), "i8"),
            ("rewards", (K,), "f8"),
            ("dones", (K,), "b1"),
            ("request_done", (K,), "b1"),
            ("outcomes", (K,), "i1"),
            ("request_ids", (K,), "i8"),
            ("finished_stats", (K, len(STATS_DICT_FIELDS)), "f8"),
            ("current_stats", (K, len(STATS_FIELDS)), "f8"),
            ("failed_nodes", (K, N), "i8"),
            ("ctx_active", (K,), "b1"),
            ("ctx_anchor_rows", (K,), "i8"),
            ("ctx_demands", (K, 3), "f8"),
            ("ctx_extras", (K,), "f8"),
            ("ctx_budgets", (K,), "f8"),
            ("ctx_holding", (K,), "f8"),
            ("ctx_used", (K, N, 3), "f8"),
            ("ctx_latency", (K, N), "f8"),
            ("const_capacity_plus_tol", (K, N, 3), "f8"),
            ("const_node_capacity", (K, N, 3), "f8"),
            ("const_node_capacity_safe", (K, N, 3), "f8"),
            ("const_node_cost_per_unit", (K, N, 3), "f8"),
        ]
        self.offsets: Dict[str, int] = {}
        cursor = 0
        for name, shape, dtype in self.fields:
            self.offsets[name] = cursor
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
            cursor += (nbytes + 7) // 8 * 8
        self.total_bytes = max(cursor, 8)

    def map_views(self, buffer) -> Dict[str, np.ndarray]:
        """Numpy views of every field over ``buffer`` (no copies)."""
        return {
            name: np.ndarray(shape, dtype=dtype, buffer=buffer, offset=self.offsets[name])
            for name, shape, dtype in self.fields
        }


def _stats_row(stats: EpisodeStats) -> List[float]:
    return [float(getattr(stats, field)) for field in STATS_FIELDS]


def _stats_from_row(row: np.ndarray) -> EpisodeStats:
    values = {
        field: (int(row[i]) if field in _STATS_INT_FIELDS else float(row[i]))
        for i, field in enumerate(STATS_FIELDS)
    }
    return EpisodeStats(**values)


def _stats_dict_from_row(row: np.ndarray) -> Dict[str, float]:
    return {
        field: (int(row[i]) if field in _STATS_INT_FIELDS else float(row[i]))
        for i, field in enumerate(STATS_DICT_FIELDS)
    }


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _attach_shared_memory(name: str):
    """Attach to the parent's shared-memory block.

    Workers are forked, so they share the parent's resource-tracker process:
    their attach re-registers the same name into the tracker's (set-valued)
    cache, which is a no-op, and the single entry is removed when the parent
    unlinks the block on close.  Nothing to compensate for here — in
    particular the worker must *not* unregister the name itself, or the
    parent's unlink would find the tracker entry already gone.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_main(
    conn,
    specs: Sequence[LaneSpec],
    lane_lo: int,
    lane_hi: int,
    auto_reset: bool,
    backend: str = "reference",
) -> None:
    """Command loop of one environment worker.

    Builds lanes ``[lane_lo, lane_hi)`` from their specs — as one SoA
    lane-block (``backend="soa"``) or as per-lane reference environments —
    reports the lane dimensions, attaches to the parent's shared-memory block
    and then serves step/reset/mask/context commands until told to close.
    All bulk data moves through the shared views; the pipe carries only
    command tuples and tiny acknowledgements.
    """
    shm = None
    try:
        try:
            if backend == "soa":
                from repro.core.soa import SoAVecPlacementEnv

                shard = SoAVecPlacementEnv.from_specs(specs, auto_reset=auto_reset)
            else:
                shard = VecPlacementEnv.from_specs(specs, auto_reset=auto_reset)
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return
        conn.send(("ready", shard.worker_metadata()))
        try:
            command, payload = conn.recv()
        except EOFError:  # parent died before attaching
            return
        if command != "attach":  # parent aborted during construction
            return
        shm_name, layout = payload
        shm = _attach_shared_memory(shm_name)
        views = layout.map_views(shm.buf)
        sl = slice(lane_lo, lane_hi)

        def write_constants() -> None:
            for name, stack in shard.constant_stacks().items():
                views[f"const_{name.lstrip('_')}"][sl] = stack

        def mirror_all() -> None:
            failed_block = views["failed_nodes"][sl]
            failed_block[:] = -1
            for local, (stats, failed) in enumerate(
                zip(shard.lane_stats(), shard.lane_failed_nodes())
            ):
                views["current_stats"][lane_lo + local] = _stats_row(stats)
                failed_block[local, : len(failed)] = failed

        def mirror_lane(local: int) -> None:
            lane = lane_lo + local
            views["current_stats"][lane] = _stats_row(shard.lane_stats()[local])
            failed_row = views["failed_nodes"][lane]
            failed_row[:] = -1
            failed = shard.lane_failed_nodes()[local]
            failed_row[: len(failed)] = failed

        write_constants()
        mirror_all()
        conn.send(("ok", None))

        policy = None
        while True:
            try:
                command, payload = conn.recv()
            except EOFError:
                break
            try:
                if command == "step":
                    actions = views["actions"][sl]
                    observe_flag, info_flag = payload
                    states, rewards, dones, infos = shard.step(
                        actions, observe=observe_flag, info=info_flag
                    )
                    views["states"][sl] = states
                    views["rewards"][sl] = rewards
                    views["dones"][sl] = dones
                    if info_flag:
                        for local, info in enumerate(infos):
                            lane = lane_lo + local
                            views["request_done"][lane] = info["request_done"]
                            views["outcomes"][lane] = _OUTCOME_CODE[info["outcome"]]
                            views["request_ids"][lane] = info["request_id"]
                            if dones[local]:
                                views["terminal_states"][lane] = info["terminal_state"]
                                stats = info["episode_stats"]
                                views["finished_stats"][lane] = [
                                    float(stats[field]) for field in STATS_DICT_FIELDS
                                ]
                    else:
                        # Lean step: bulk-write the outcome arrays straight
                        # from the shard accessors; terminal states are not
                        # marshaled (the parent exposes no infos) and
                        # finished stats travel only for lanes whose episode
                        # ended this step.
                        views["request_done"][sl] = shard.last_request_done()
                        views["outcomes"][sl] = shard.last_outcome_codes()
                        views["request_ids"][sl] = shard.last_request_ids()
                        for local in np.flatnonzero(dones).tolist():
                            stats = shard.last_episode_stats(local)
                            views["finished_stats"][lane_lo + local] = [
                                float(stats[field]) for field in STATS_DICT_FIELDS
                            ]
                    mirror_all()
                    conn.send(("ok", None))
                elif command == "masks":
                    views["masks"][sl] = shard.valid_action_masks()
                    conn.send(("ok", None))
                elif command == "reset":
                    views["states"][sl] = shard.reset(observe=payload)
                    mirror_all()
                    conn.send(("ok", None))
                elif command == "reset_lane":
                    views["states"][lane_lo + payload] = shard.reset_lane(payload)
                    mirror_lane(payload)
                    conn.send(("ok", None))
                elif command == "context":
                    context = shard.lane_decision_context()
                    if context is None:
                        conn.send(("ok", False))
                    else:
                        views["ctx_active"][sl] = context.active
                        views["ctx_anchor_rows"][sl] = context.anchor_rows
                        views["ctx_demands"][sl] = context.demands
                        views["ctx_extras"][sl] = context.extras
                        views["ctx_budgets"][sl] = context.budgets
                        views["ctx_holding"][sl] = context.holding
                        views["ctx_used"][sl] = context.used
                        views["ctx_latency"][sl] = context.latency
                        conn.send(("ok", True))
                elif command == "bind_policy":
                    policy = payload
                    policy.bind_lanes(shard)
                    conn.send(("ok", None))
                elif command == "policy_actions":
                    if policy is None:
                        raise RuntimeError("no policy bound; call bind_policy first")
                    masks = shard.valid_action_masks()
                    views["actions"][sl] = policy.select_actions(None, masks)
                    conn.send(("ok", None))
                elif command == "policy_reset":
                    if policy is not None:
                        policy.reset()
                    conn.send(("ok", None))
                elif command == "close":
                    break
                else:
                    raise ValueError(f"unknown worker command {command!r}")
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (KeyboardInterrupt, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        if shm is not None:
            shm.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# --------------------------------------------------------------------------- #
# Parent-side proxy
# --------------------------------------------------------------------------- #
class SubprocVecPlacementEnv:
    """K placement lanes sharded across W worker processes.

    Drop-in replacement for :class:`~repro.core.vecenv.VecPlacementEnv`
    built from lane specs (see :meth:`from_scenarios` /
    :func:`~repro.core.vecenv.lane_specs_from_scenarios`); lanes are assigned
    to workers in contiguous blocks, preserving lane order, so trajectories
    are bitwise identical to the sync class on the same specs.
    """

    def __init__(
        self,
        lane_specs: Sequence[LaneSpec],
        auto_reset: bool = True,
        num_workers: int = 2,
        lane_names: Optional[Sequence[str]] = None,
        backend: str = "reference",
    ) -> None:
        if not lane_specs:
            raise ValueError("SubprocVecPlacementEnv needs at least one lane")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if backend not in ("reference", "soa"):
            raise ValueError(
                f"unknown shard backend {backend!r}; expected 'reference' or "
                "'soa' (resolve 'auto' through make_vec_env)"
            )
        self._backend = backend
        if not subproc_available():
            raise RuntimeError(
                "subprocess environments need the 'fork' start method; "
                "use make_vec_env() to fall back to the sync backend"
            )
        self._specs = list(lane_specs)
        self.auto_reset = auto_reset
        self.lane_names: List[str] = (
            list(lane_names)
            if lane_names is not None
            else [spec.name for spec in self._specs]
        )
        if len(self.lane_names) != len(self._specs):
            raise ValueError(
                f"{len(self.lane_names)} lane names for {len(self._specs)} lanes"
            )
        self.episodes_completed = 0
        self.num_workers = min(int(num_workers), len(self._specs))
        self._closed = False
        self._broken = False
        self._shm = None
        self._processes: List[mp.Process] = []
        self._conns: List = []
        self._bound_policy = None
        self._version = 0
        self._masks_cache: Optional[np.ndarray] = None
        self._masks_version = -1
        self._context: Optional[LaneDecisionContext] = None
        self._context_version = -1

        # Start the resource tracker *before* forking: workers then inherit
        # and share it, so their shared-memory attach registrations land in
        # the same (set-valued) cache the parent's unlink clears.  Forking
        # first would leave each worker to spawn its own tracker, which
        # tries to clean the parent's segment a second time at worker exit.
        try:  # pragma: no cover - tracker internals
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        # repro-lint: disable=RPL106 — best-effort tracker pre-start: on
        # platforms without it each worker falls back to spawning its own
        # tracker (slower cleanup, never incorrect), so any tracker-internal
        # error must not block env construction.
        except Exception:
            pass
        context = mp.get_context("fork")
        bounds = np.linspace(0, len(self._specs), self.num_workers + 1).astype(int)
        self._shards: List[Tuple[int, int]] = [
            (int(bounds[w]), int(bounds[w + 1])) for w in range(self.num_workers)
        ]
        # Last command sent to each worker, kept for crash diagnostics: a
        # soak-run failure report then names the dead worker's lane range and
        # what it was doing, which is all the log context triage needs.
        self._last_commands: List[Optional[str]] = [None] * self.num_workers
        try:
            for lane_lo, lane_hi in self._shards:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._specs[lane_lo:lane_hi],
                        lane_lo,
                        lane_hi,
                        auto_reset,
                        backend,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._conns.append(parent_conn)
            self._handshake()
        except Exception:
            self.close()
            raise

    def _handshake(self) -> None:
        metas = []
        for worker, conn in enumerate(self._conns):
            tag, meta = self._recv(worker)
            if tag == "error":
                raise RuntimeError(
                    f"environment worker {worker} failed to build its lanes:\n{meta}"
                )
            if tag != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"worker {worker} sent {tag!r} instead of ready")
            metas.append(meta)
        reference = metas[0]
        for worker, meta in enumerate(metas):
            if (
                meta["state_dim"] != reference["state_dim"]
                or meta["num_actions"] != reference["num_actions"]
            ):
                raise ValueError(
                    f"worker {worker} lanes have (state_dim, num_actions)="
                    f"({meta['state_dim']}, {meta['num_actions']}) but worker 0 "
                    f"has ({reference['state_dim']}, {reference['num_actions']}); "
                    "all lanes must share one observation and action space"
                )
        self._state_dim = int(reference["state_dim"])
        self._num_actions = int(reference["num_actions"])
        self._num_nodes = int(reference["num_nodes"])
        # The parent-side decision context mirrors the sync batched kernel's
        # applicability rule: every shard kernel-capable *and* structurally
        # identical across shards (same node order, latency matrix and
        # latency-mask setting).
        self._context_supported = all(meta["kernel_ok"] for meta in metas) and all(
            meta["node_order"] == reference["node_order"]
            and meta["latency_check"] == reference["latency_check"]
            and np.array_equal(meta["latency_matrix"], reference["latency_matrix"])
            for meta in metas[1:]
        )
        self._node_order = list(reference["node_order"])

        from multiprocessing import shared_memory

        self._layout = SharedLayout(
            self.num_lanes, self._state_dim, self._num_actions, self._num_nodes
        )
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._layout.total_bytes
        )
        self._views = self._layout.map_views(self._shm.buf)
        for conn in self._conns:
            conn.send(("attach", (self._shm.name, self._layout)))
        self._collect()
        # Snapshot the constant ledger stacks (written once by the workers at
        # attach): contexts assembled later hand these out, and a snapshot
        # keeps them valid even after close() unmaps the shared block.
        self._constants = {
            name: self._views[f"const_{name.lstrip('_')}"].copy()
            for name in (
                "node_capacity",
                "node_capacity_safe",
                "node_cost_per_unit",
                "_capacity_plus_tol",
            )
        }

    # ------------------------------------------------------------------ #
    # Command plumbing
    # ------------------------------------------------------------------ #
    def _worker_context(self, worker: int) -> str:
        """Crash-diagnostic context: the worker's lane range and last command."""
        lane_lo, lane_hi = self._shards[worker]
        last = self._last_commands[worker]
        command = f"last command {last!r}" if last is not None else "no command sent yet"
        return f"lanes [{lane_lo}:{lane_hi}), {command}"

    def _recv(self, worker: int):
        try:
            return self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            self._broken = True
            exitcode = self._processes[worker].exitcode
            raise RuntimeError(
                f"environment worker {worker} ({self._worker_context(worker)}) "
                f"died (exit code {exitcode}); the vectorized environment is "
                "unusable — close() it"
            ) from exc

    def _collect(self, workers: Optional[Sequence[int]] = None) -> List[object]:
        """Gather one reply per worker, keeping the pipes in lockstep.

        Every worker's pending reply is drained even when an earlier worker
        reports an error — otherwise the unread acks would desynchronize all
        later commands.  Any error marks the environment broken (the shards
        have diverged: the failing worker's lanes never advanced) so further
        commands refuse to run instead of returning torn results.
        """
        payloads = []
        errors: List[str] = []
        for worker in workers if workers is not None else range(len(self._conns)):
            try:
                tag, payload = self._recv(worker)
            except RuntimeError as exc:  # dead worker; keep draining the rest
                errors.append(str(exc))
                continue
            if tag == "error":
                errors.append(f"environment worker {worker} failed:\n{payload}")
                continue
            if tag != "ok":
                # A stray tag (a desynchronized pipe, a stale handshake
                # reply) must not silently stand in for an acknowledgement:
                # the payload would be garbage and every later command would
                # read one reply off.
                errors.append(
                    f"environment worker {worker} "
                    f"({self._worker_context(worker)}) sent unexpected reply "
                    f"tag {tag!r} (protocol desync)"
                )
                continue
            payloads.append(payload)
        if errors:
            self._broken = True
            raise RuntimeError("; ".join(errors))
        return payloads

    def _command_all(self, command: str, payload=None) -> List[object]:
        self._ensure_open()
        for worker, conn in enumerate(self._conns):
            self._last_commands[worker] = command
            try:
                conn.send((command, payload))
            except (BrokenPipeError, OSError) as exc:
                self._broken = True
                exitcode = self._processes[worker].exitcode
                raise RuntimeError(
                    f"environment worker {worker} "
                    f"({self._worker_context(worker)}) died "
                    f"(exit code {exitcode})"
                ) from exc
        return self._collect()

    def _command_one(self, worker: int, command: str, payload=None) -> object:
        self._ensure_open()
        self._last_commands[worker] = command
        try:
            self._conns[worker].send((command, payload))
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            exitcode = self._processes[worker].exitcode
            raise RuntimeError(
                f"environment worker {worker} "
                f"({self._worker_context(worker)}) died "
                f"(exit code {exitcode})"
            ) from exc
        return self._collect([worker])[0]

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("the subprocess environment has been closed")
        if self._broken:
            raise RuntimeError(
                "the subprocess environment is broken (a worker failed and "
                "its lanes diverged); close() it and build a fresh one"
            )

    def _worker_for_lane(self, lane: int) -> int:
        for worker, (lane_lo, lane_hi) in enumerate(self._shards):
            if lane_lo <= lane < lane_hi:
                return worker
        raise IndexError(f"lane {lane} out of range for {self.num_lanes} lanes")

    # ------------------------------------------------------------------ #
    # Construction from scenarios
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: Scenario,
        num_lanes: int,
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        failure_config: Optional[FailureConfig] = None,
        num_workers: int = 2,
        backend: str = "reference",
    ) -> "SubprocVecPlacementEnv":
        """K sharded lanes of one scenario with derived workload seeds."""
        if num_lanes <= 0:
            raise ValueError(f"num_lanes must be positive, got {num_lanes}")
        return cls.from_scenarios(
            [scenario] * num_lanes,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            auto_reset=auto_reset,
            failure_config=failure_config,
            num_workers=num_workers,
            backend=backend,
        )

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[Scenario],
        seed: RandomState = 0,
        env_config: Optional[EnvConfig] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        auto_reset: bool = True,
        derive_lane_seeds: bool = True,
        failure_config: Optional[FailureConfig] = None,
        num_workers: int = 2,
        backend: str = "reference",
    ) -> "SubprocVecPlacementEnv":
        """One sharded lane per scenario (seed rules match the sync class)."""
        specs = lane_specs_from_scenarios(
            scenarios,
            seed=seed,
            env_config=env_config,
            reward_config=reward_config,
            encoder_config=encoder_config,
            derive_lane_seeds=derive_lane_seeds,
            failure_config=failure_config,
        )
        return cls(
            specs, auto_reset=auto_reset, num_workers=num_workers, backend=backend
        )

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_lanes(self) -> int:
        """Number of environment lanes (K) across all workers."""
        return len(self._specs)

    @property
    def state_dim(self) -> int:
        """Width of each lane's observation vector."""
        return self._state_dim

    @property
    def num_actions(self) -> int:
        """Number of discrete actions (shared by all lanes)."""
        return self._num_actions

    @property
    def worker_shards(self) -> List[Tuple[int, int]]:
        """The ``[lane_lo, lane_hi)`` block of lanes owned by each worker."""
        return list(self._shards)

    @property
    def backend(self) -> str:
        """Backend tag of the worker shards (``"reference"`` or ``"soa"``)."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self, observe: bool = True) -> np.ndarray:
        """Reset every lane; returns the ``(K, state_dim)`` state batch."""
        self._version += 1
        self._command_all("reset", observe)
        return self._views["states"].copy()

    def reset_lane(self, lane: int) -> np.ndarray:
        """Reset a single lane; returns its fresh state vector."""
        self._version += 1
        worker = self._worker_for_lane(lane)
        lane_lo = self._shards[worker][0]
        self._command_one(worker, "reset_lane", lane - lane_lo)
        return self._views["states"][lane].copy()

    def step(
        self, actions: Sequence[int], observe: bool = True, info: bool = True
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[List[Dict[str, object]]]]:
        """Apply one action per lane (same contract as the sync class).

        ``info=False`` selects the lean-step protocol end to end: workers
        skip marshaling info payloads (terminal states, per-lane dict
        fields) through shared memory, the returned infos element is
        ``None``, and callers read outcomes through the lean accessors
        (:meth:`last_outcome_codes` et al.), which view the shared block
        directly.
        """
        self._ensure_open()
        actions = np.asarray(actions, dtype=np.int64).ravel()
        if actions.shape[0] != self.num_lanes:
            raise ValueError(
                f"got {actions.shape[0]} actions for {self.num_lanes} lanes"
            )
        self._version += 1
        views = self._views
        views["actions"][:] = actions
        self._command_all("step", (observe, info))
        states = views["states"].copy()
        rewards = views["rewards"].copy()
        dones = views["dones"].copy()
        self.episodes_completed += int(dones.sum())
        if not info:
            return states, rewards, dones, None
        infos: List[Dict[str, object]] = []
        for lane in range(self.num_lanes):
            lane_info: Dict[str, object] = {
                "request_id": int(views["request_ids"][lane]),
                "request_done": bool(views["request_done"][lane]),
                "outcome": _OUTCOMES[int(views["outcomes"][lane])],
                "episode_stats": (
                    _stats_dict_from_row(views["finished_stats"][lane])
                    if dones[lane]
                    else None
                ),
                "lane": lane,
                "lane_name": self.lane_names[lane],
            }
            if dones[lane]:
                lane_info["terminal_state"] = views["terminal_states"][lane].copy()
            infos.append(lane_info)
        return states, rewards, dones, infos

    # ------------------------------------------------------------------ #
    # Lean-step accessors (valid after the most recent step())
    # ------------------------------------------------------------------ #
    def last_outcome_codes(self) -> np.ndarray:
        """Per-lane outcome codes of the most recent step (into OUTCOMES).

        Reads the shared-memory block directly (no copy); the next step
        overwrites the returned array in place.
        """
        self._ensure_open()
        # repro-lint: disable=RPL201 — lean-step contract: zero-copy view,
        # documented single-step validity; callers copy if they retain it.
        return self._views["outcomes"]

    def last_request_done(self) -> np.ndarray:
        """Per-lane "request finished this step" flags of the last step."""
        self._ensure_open()
        # repro-lint: disable=RPL201 — lean-step contract: zero-copy view,
        # documented single-step validity; callers copy if they retain it.
        return self._views["request_done"]

    def last_request_ids(self) -> np.ndarray:
        """Per-lane ids of the request each lane acted on last step."""
        self._ensure_open()
        # repro-lint: disable=RPL201 — lean-step contract: zero-copy view,
        # documented single-step validity; callers copy if they retain it.
        return self._views["request_ids"]

    def last_episode_stats(self, lane: int) -> Dict[str, object]:
        """Finished-episode statistics of a lane whose episode ended.

        Only valid for lanes with ``dones[lane]`` true in the most recent
        step; the payload equals the ``episode_stats`` info entry of the
        full-step protocol.
        """
        self._ensure_open()
        if not bool(self._views["dones"][lane]):
            raise KeyError(
                f"lane {lane} did not finish an episode in the last step"
            )
        return _stats_dict_from_row(self._views["finished_stats"][lane])

    # ------------------------------------------------------------------ #
    # Masks, context and per-lane state
    # ------------------------------------------------------------------ #
    def valid_action_masks(self) -> np.ndarray:
        """Stacked ``(K, num_actions)`` boolean validity masks.

        Each worker runs the sync batched mask kernel over its shard and
        writes its rows into shared memory; the round-trip is memoized per
        decision step, so repeated calls between steps cost nothing.
        """
        self._ensure_open()
        if self._masks_cache is None or self._masks_version != self._version:
            self._command_all("masks")
            self._masks_cache = self._views["masks"].copy()
            self._masks_version = self._version
        return self._masks_cache.copy()

    def lane_decision_context(self) -> Optional[LaneDecisionContext]:
        """The batched decision context of the current step (memoized).

        ``None`` when the lane set does not support the batched kernel,
        mirroring the sync class.  Otherwise every worker fills its shard's
        slice of the context buffers and the parent assembles one
        :class:`~repro.core.vecenv.LaneDecisionContext` over all K lanes —
        the constant stacks (capacities, unit costs) were written once at
        construction and are shared by every context.
        """
        self._ensure_open()
        if not self._context_supported:
            return None
        if self._context is not None and self._context_version == self._version:
            return self._context
        supported = self._command_all("context")
        if not all(supported):  # pragma: no cover - shards validated at init
            return None
        views = self._views
        anchor_rows = views["ctx_anchor_rows"].copy()
        self._context = LaneDecisionContext(
            active=views["ctx_active"].copy(),
            anchor_rows=anchor_rows,
            demands=views["ctx_demands"].copy(),
            extras=views["ctx_extras"].copy(),
            budgets=views["ctx_budgets"].copy(),
            holding=views["ctx_holding"].copy(),
            used=views["ctx_used"].copy(),
            capacity_plus_tol=self._constants["_capacity_plus_tol"],
            latency=views["ctx_latency"].copy(),
            constant_stack=self._constant_stack,
        )
        self._context_version = self._version
        return self._context

    def _constant_stack(self, attr: str, ledgers=None) -> np.ndarray:
        """Constant ledger stacks snapshotted from the workers at attach."""
        return self._constants[attr]

    def lane_stats(self) -> List[EpisodeStats]:
        """Per-lane statistics of the episodes currently in progress.

        Workers mirror every lane's live counters into shared memory after
        each command, so this reads the same values the sync class would
        report — without a worker round-trip.
        """
        self._ensure_open()
        return [
            _stats_from_row(self._views["current_stats"][lane])
            for lane in range(self.num_lanes)
        ]

    def lane_failed_nodes(self) -> List[List[int]]:
        """Per-lane node ids currently fenced by an injected failure."""
        self._ensure_open()
        failed = self._views["failed_nodes"]
        return [
            [int(node) for node in row[row >= 0]]
            for row in (failed[lane] for lane in range(self.num_lanes))
        ]

    # ------------------------------------------------------------------ #
    # Remote heuristic-policy binding
    # ------------------------------------------------------------------ #
    def bind_policy(self, policy) -> None:
        """Ship a heuristic placement policy to every worker (once).

        Workers bind their own copy to their shard lanes, so the policy acts
        on the live lane substrate in-process; per-lane plan caches live with
        the lanes.  Transient lane-binding state is stripped before pickling.

        Only one policy can be bound at a time: binding a second one would
        silently hijack the first policy's parent-side proxy (its shadowed
        ``select_actions`` fetches whatever the workers' bound copy
        computed), so that is rejected — evaluate each policy on its own
        environment, exactly like the runner does.  Re-binding the *same*
        policy is allowed and refreshes the worker copies.
        """
        if self._backend == "soa":
            raise RuntimeError(
                "heuristic policies bind to live per-lane environments, which "
                "SoA lane-blocks do not expose; build the environment with "
                "backend='reference' (make_vec_env does this automatically "
                "for heuristic evaluation)"
            )
        if self._bound_policy is not None and self._bound_policy is not policy:
            raise RuntimeError(
                f"policy {getattr(self._bound_policy, 'name', '?')!r} is "
                "already bound to this environment; close() it and build a "
                "fresh one per policy"
            )
        clone = shallow_copy(policy)
        for transient in (
            "_lane_envs",
            "_lane_venv",
            "_remote_venv",
            "_lane_plans",
            "_lane_request_ids",
            "select_actions",
        ):
            clone.__dict__.pop(transient, None)
        try:
            payload = pickle.loads(pickle.dumps(clone))
        except Exception as exc:
            raise ValueError(
                f"policy {getattr(policy, 'name', policy)!r} is not picklable "
                "and cannot be shipped to environment workers; evaluate it on "
                "the sync VecPlacementEnv instead"
            ) from exc
        self._command_all("bind_policy", payload)
        self._bound_policy = policy

    def policy_actions(self) -> np.ndarray:
        """One action per lane from the worker-side bound policy copies."""
        if self._bound_policy is None:
            raise RuntimeError("no policy bound; call bind_policy() first")
        self._command_all("policy_actions")
        return self._views["actions"].copy()

    def reset_bound_policy(self) -> None:
        """Reset the worker-side policy copies (clears per-lane plan caches)."""
        if self._bound_policy is not None:
            self._command_all("policy_reset")

    def _unbind_policy(self) -> None:
        """Detach the parent-side policy proxy (called from :meth:`close`).

        The policy object outlives the environment; leaving it proxied to a
        closed env would crash its next ``select_actions``/``reset``, so the
        instance-level shadowing is undone and the policy reverts to its
        class-level (in-process) behavior until rebound.
        """
        policy = self._bound_policy
        if policy is None:
            return
        self._bound_policy = None
        if getattr(policy, "_remote_venv", None) is self:
            policy.__dict__.pop("select_actions", None)
            policy._remote_venv = None

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers and release the shared-memory block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._unbind_policy()
        for conn, process in zip(self._conns, self._processes):
            if process.is_alive():
                try:
                    conn.send(("close", None))
                except (BrokenPipeError, OSError):
                    pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._views = {}
        self._context = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._shm = None

    def __enter__(self) -> "SubprocVecPlacementEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        # repro-lint: disable=RPL106 — __del__ runs during interpreter
        # shutdown where pipes/shm may already be gone; raising here would
        # mask the original error (or crash GC), and close() is idempotent.
        except Exception:
            pass


# --------------------------------------------------------------------------- #
# Backend factory
# --------------------------------------------------------------------------- #
def make_vec_env(
    scenarios: Sequence[Scenario],
    seed: RandomState = 0,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
    auto_reset: bool = True,
    derive_lane_seeds: bool = True,
    failure_config: Optional[FailureConfig] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Build a vectorized environment, choosing worker count and lane core.

    ``workers`` (default: the ``REPRO_ENV_WORKERS`` environment variable,
    else 1) selects the process topology: with more than one worker — and
    more than one lane, a platform with ``fork``, and *not* inside another
    worker process (nested pools degrade to sync rather than spawn
    grandchildren) — a :class:`SubprocVecPlacementEnv` shards the lanes
    across processes; otherwise the lanes run in-process.

    ``backend`` (default: the ``REPRO_ENV_BACKEND`` environment variable,
    else ``"reference"``) selects the lane core:

    * ``"reference"`` — per-lane :class:`~repro.core.env.VNFPlacementEnv`
      objects behind :class:`~repro.core.vecenv.VecPlacementEnv`,
    * ``"soa"`` — the fused structure-of-arrays core
      (:class:`~repro.core.soa.SoAVecPlacementEnv`); raises ``ValueError``
      when the lane set violates its shared-topology requirements,
    * ``"auto"`` — ``"soa"`` when the lane set supports it, else
      ``"reference"``.

    All combinations build lanes from the same specs and are bitwise
    trajectory-equivalent (the differential suite asserts it), so swapping
    backends never changes results — only throughput.
    """
    if workers is None:
        env_value = os.environ.get("REPRO_ENV_WORKERS", "").strip()
        workers = int(env_value) if env_value else 1
    workers = max(1, int(workers))
    if backend is None:
        backend = os.environ.get("REPRO_ENV_BACKEND", "").strip() or "reference"
    if backend not in ("reference", "soa", "auto"):
        raise ValueError(
            f"unknown env backend {backend!r}; expected 'reference', 'soa' "
            "or 'auto'"
        )
    use_subproc = (
        workers > 1
        and len(scenarios) > 1
        and subproc_available()
        and not in_worker_process()
    )
    specs = lane_specs_from_scenarios(
        scenarios,
        seed=seed,
        env_config=env_config,
        reward_config=reward_config,
        encoder_config=encoder_config,
        derive_lane_seeds=derive_lane_seeds,
        failure_config=failure_config,
    )
    from repro.core.soa import SoAVecPlacementEnv, soa_supported

    if backend == "auto":
        backend = "soa" if soa_supported(specs) else "reference"
    if use_subproc:
        return SubprocVecPlacementEnv(
            specs, auto_reset=auto_reset, num_workers=workers, backend=backend
        )
    if backend == "soa":
        return SoAVecPlacementEnv.from_specs(specs, auto_reset=auto_reset)
    return VecPlacementEnv.from_specs(specs, auto_reset=auto_reset)
