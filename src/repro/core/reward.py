"""Reward shaping for the VNF-placement MDP.

The reward has two parts:

* a **per-step shaping term** charged for every VNF placed, proportional to
  the latency the hop adds (relative to the SLA budget) and to the hosting
  cost of the instance — this gives the agent a dense signal about which node
  choices are expensive long before the chain completes; and
* a **terminal term** granted when the whole chain is placed (acceptance
  reward scaled by revenue, minus latency and cost penalties) or when the
  request is rejected / turns out infeasible (a flat penalty).

The relative weights are the knobs of the reward-ablation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class RewardConfig:
    """Weights of the composite reward function."""

    accept_reward: float = 10.0
    reject_penalty: float = 5.0
    infeasible_penalty: float = 8.0
    latency_weight: float = 2.0
    cost_weight: float = 4.0
    step_latency_weight: float = 1.0
    step_cost_weight: float = 0.8
    load_balance_weight: float = 1.5
    revenue_scale: float = 1.0
    cost_normalizer: float = 200.0

    def __post_init__(self) -> None:
        check_non_negative(self.accept_reward, "accept_reward")
        check_non_negative(self.reject_penalty, "reject_penalty")
        check_non_negative(self.infeasible_penalty, "infeasible_penalty")
        check_non_negative(self.latency_weight, "latency_weight")
        check_non_negative(self.cost_weight, "cost_weight")
        check_non_negative(self.step_latency_weight, "step_latency_weight")
        check_non_negative(self.step_cost_weight, "step_cost_weight")
        check_non_negative(self.load_balance_weight, "load_balance_weight")
        check_non_negative(self.revenue_scale, "revenue_scale")
        if self.cost_normalizer <= 0:
            raise ValueError("cost_normalizer must be positive")


class RewardCalculator:
    """Computes per-step and terminal rewards for one request's episode segment."""

    def __init__(self, config: Optional[RewardConfig] = None) -> None:
        self.config = config or RewardConfig()

    # ------------------------------------------------------------------ #
    # Per-step shaping
    # ------------------------------------------------------------------ #
    def step_reward(
        self,
        request: SFCRequest,
        network: SubstrateNetwork,
        node_id: int,
        added_latency_ms: float,
        vnf_index: int,
    ) -> float:
        """Shaping reward for placing one VNF on ``node_id``.

        Negative and small relative to the terminal reward, so the agent is
        steered towards low-latency, cheap, lightly loaded nodes without the
        shaping dominating the accept/reject trade-off.
        """
        config = self.config
        sla = request.sla.max_latency_ms
        latency_term = config.step_latency_weight * (added_latency_ms / sla)

        vnf = request.chain.vnf_at(vnf_index)
        if network.routing == "dense":
            # Ledger fast path: read the node's cost row and memoized
            # bottleneck utilization instead of rebuilding resource vectors.
            ledger = network.ledger
            row = ledger.node_row[node_id]
            hosting = (
                float(
                    vnf.demand_array_for(request.bandwidth_mbps)
                    @ ledger.node_cost_per_unit[row]
                )
                * request.holding_time
            )
            utilization = float(ledger.max_utilization()[row])
        else:
            node = network.node(node_id)
            hosting = node.hosting_cost(
                vnf.demand_for(request.bandwidth_mbps), request.holding_time
            )
            utilization = node.max_utilization()
        cost_term = config.step_cost_weight * (hosting / config.cost_normalizer)

        balance_term = config.load_balance_weight * 0.1 * utilization
        return -(latency_term + cost_term + balance_term)

    # ------------------------------------------------------------------ #
    # Terminal rewards
    # ------------------------------------------------------------------ #
    def acceptance_reward(
        self, request: SFCRequest, placement: Placement, network: SubstrateNetwork
    ) -> float:
        """Terminal reward for successfully committing a full chain."""
        config = self.config
        sla_fraction = placement.end_to_end_latency_ms() / request.sla.max_latency_ms
        cost_fraction = placement.total_cost(network) / config.cost_normalizer
        revenue = config.revenue_scale * request.revenue() / 100.0
        reward = (
            config.accept_reward
            + revenue
            - config.latency_weight * sla_fraction
            - config.cost_weight * cost_fraction
        )
        return reward

    def rejection_penalty(self, request: SFCRequest) -> float:
        """Terminal reward (negative) for explicitly rejecting a request."""
        return -self.config.reject_penalty

    def infeasibility_penalty(self, request: SFCRequest) -> float:
        """Terminal reward (negative) when a completed assignment cannot commit."""
        return -self.config.infeasible_penalty

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, float]:
        """The reward weights as a dictionary (logged with experiment results)."""
        return {
            "accept_reward": self.config.accept_reward,
            "reject_penalty": self.config.reject_penalty,
            "infeasible_penalty": self.config.infeasible_penalty,
            "latency_weight": self.config.latency_weight,
            "cost_weight": self.config.cost_weight,
            "step_latency_weight": self.config.step_latency_weight,
            "step_cost_weight": self.config.step_cost_weight,
            "load_balance_weight": self.config.load_balance_weight,
        }


def latency_focused_config() -> RewardConfig:
    """Reward variant emphasizing latency (ablation A, latency-heavy point)."""
    return RewardConfig(latency_weight=8.0, cost_weight=0.5, step_latency_weight=2.0)


def cost_focused_config() -> RewardConfig:
    """Reward variant emphasizing operational cost (ablation A, cost-heavy point)."""
    return RewardConfig(latency_weight=1.0, cost_weight=6.0, step_cost_weight=1.0)


def acceptance_focused_config() -> RewardConfig:
    """Reward variant emphasizing raw acceptance (ablation A, accept-heavy point)."""
    return RewardConfig(
        accept_reward=20.0, reject_penalty=10.0, latency_weight=1.0, cost_weight=0.5
    )
