"""The action space of the VNF-placement MDP.

One action per substrate node ("host the next VNF here") plus an explicit
REJECT action.  The action space also computes validity masks: a node action
is valid only when the node can host the next VNF's demand and when routing
to it does not already blow the request's latency budget (a cheap,
admissible pre-check — the full feasibility check happens at commit time).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nfv.sfc import SFCRequest
from repro.substrate.ledger import LedgerRowCache
from repro.substrate.network import SubstrateNetwork


class ActionSpace:
    """Maps discrete action indices to placement decisions."""

    def __init__(self, network: SubstrateNetwork, node_order: Optional[Sequence[int]] = None) -> None:
        self.network = network
        self.node_order: List[int] = list(node_order or network.node_ids)
        if not self.node_order:
            raise ValueError("cannot build an action space over an empty network")
        self._row_cache = LedgerRowCache(self.node_order)

    # ------------------------------------------------------------------ #
    # Sizes and conversions
    # ------------------------------------------------------------------ #
    @property
    def num_actions(self) -> int:
        """Number of discrete actions (nodes + reject)."""
        return len(self.node_order) + 1

    @property
    def reject_action(self) -> int:
        """The index of the explicit reject action."""
        return len(self.node_order)

    def is_reject(self, action: int) -> bool:
        """True when ``action`` is the reject action."""
        return action == self.reject_action

    def node_for_action(self, action: int) -> int:
        """The substrate node id selected by ``action``."""
        if not 0 <= action < self.reject_action:
            raise ValueError(
                f"action {action} is not a node action (0..{self.reject_action - 1})"
            )
        return self.node_order[action]

    def action_for_node(self, node_id: int) -> int:
        """The action index that places the next VNF on ``node_id``."""
        try:
            return self.node_order.index(node_id)
        except ValueError as exc:
            raise ValueError(f"node {node_id} is not part of the action space") from exc

    # ------------------------------------------------------------------ #
    # Validity masks
    # ------------------------------------------------------------------ #
    def valid_mask(
        self,
        request: SFCRequest,
        vnf_index: int,
        partial_assignment: Sequence[int],
        partial_latency_ms: float,
        latency_check: bool = True,
    ) -> np.ndarray:
        """Boolean mask over actions for placing VNF ``vnf_index``.

        The reject action is always valid.  A node action is valid when the
        node has the free capacity for the next VNF's demand and — when
        ``latency_check`` is enabled — when routing from the current anchor to
        that node plus the VNF's processing delay still fits the SLA.

        The whole mask is one batched array expression over the substrate
        ledger and latency matrix; the per-node loop survives as
        :meth:`valid_mask_reference` and is used automatically when the
        network routes in a non-dense mode.
        """
        if self.network.routing != "dense":
            return self.valid_mask_reference(
                request,
                vnf_index,
                partial_assignment,
                partial_latency_ms,
                latency_check=latency_check,
            )
        next_vnf = request.chain.vnf_at(vnf_index)
        demand = next_vnf.demand_array_for(request.bandwidth_mbps)
        anchor = (
            partial_assignment[-1] if partial_assignment else request.source_node_id
        )
        budget = request.sla.max_latency_ms

        ledger, rows = self._row_cache.get(self.network)
        valid = ledger.can_host_all(demand)
        if not self._row_cache.identity:
            valid = valid[rows]
        if latency_check:
            latency = self.network.latency_row(anchor)
            if not self._row_cache.identity:
                latency = latency[rows]
            # Non-inplace combine: can_host_all returns a memoized read-only
            # array that must not be clobbered.
            valid = valid & (
                latency + (next_vnf.processing_delay_ms + partial_latency_ms)
                <= budget
            )
        mask = np.empty(self.num_actions, dtype=bool)
        mask[: self.reject_action] = valid
        mask[self.reject_action] = True
        return mask

    def valid_mask_reference(
        self,
        request: SFCRequest,
        vnf_index: int,
        partial_assignment: Sequence[int],
        partial_latency_ms: float,
        latency_check: bool = True,
    ) -> np.ndarray:
        """The original per-node masking loop, kept for equivalence tests."""
        next_vnf = request.chain.vnf_at(vnf_index)
        demand = next_vnf.demand_for(request.bandwidth_mbps)
        anchor = (
            partial_assignment[-1] if partial_assignment else request.source_node_id
        )
        budget = request.sla.max_latency_ms

        mask = np.zeros(self.num_actions, dtype=bool)
        mask[self.reject_action] = True
        for index, node_id in enumerate(self.node_order):
            node = self.network.node(node_id)
            if not node.can_host(demand):
                continue
            if latency_check:
                added = (
                    self.network.latency_between(anchor, node_id)
                    + next_vnf.processing_delay_ms
                )
                if partial_latency_ms + added > budget:
                    continue
            mask[index] = True
        return mask

    def greedy_fallback_action(self, mask: np.ndarray) -> int:
        """The first valid node action, or reject when none exists."""
        valid_nodes = np.flatnonzero(mask[: self.reject_action])
        if valid_nodes.size == 0:
            return self.reject_action
        return int(valid_nodes[0])
