"""Plugging a trained agent into the online simulator.

:class:`DRLPlacementPolicy` replays the environment's per-VNF decision
process greedily with a trained agent, but against the *live* substrate the
discrete-event simulator maintains.  This is how the learned controller is
compared against the heuristic baselines: all of them implement
:class:`~repro.sim.simulation.PlacementPolicy` and are evaluated by the same
:class:`~repro.sim.simulation.NFVSimulation`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.agents.base import Agent
from repro.core.action import ActionSpace
from repro.core.reward import RewardCalculator, RewardConfig
from repro.core.state import EncoderConfig, StateEncoder
from repro.nfv.catalog import VNFCatalog
from repro.nfv.placement import Placement
from repro.nfv.sfc import SFCRequest
from repro.sim.simulation import PlacementPolicy
from repro.substrate.network import NoRouteError, SubstrateNetwork


class DRLPlacementPolicy(PlacementPolicy):
    """Greedy rollout of a trained agent as an online placement policy."""

    def __init__(
        self,
        agent: Agent,
        network: SubstrateNetwork,
        catalog: VNFCatalog,
        encoder_config: Optional[EncoderConfig] = None,
        latency_mask_check: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.agent = agent
        self.catalog = catalog
        self.encoder = StateEncoder(network, catalog, encoder_config)
        self.actions = ActionSpace(network, node_order=self.encoder.node_order)
        self.latency_mask_check = latency_mask_check
        self.name = name or f"drl_{agent.name}"

    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        """Greedily roll the agent through the request's per-VNF decisions."""
        # The policy's encoder/action space were built over the same topology
        # object the simulation mutates, so utilizations reflect live state.
        partial_assignment: List[int] = []
        partial_latency = 0.0
        for vnf_index in range(request.num_vnfs):
            state = self.encoder.encode(
                request, vnf_index, partial_assignment, partial_latency
            )
            mask = self.actions.valid_mask(
                request,
                vnf_index,
                partial_assignment,
                partial_latency,
                latency_check=self.latency_mask_check,
            )
            action = self.agent.select_action(state, mask=mask, greedy=True)
            if self.actions.is_reject(action):
                return None
            node_id = self.actions.node_for_action(action)
            anchor = self.encoder.anchor_node(request, partial_assignment)
            try:
                partial_latency += (
                    network.latency_between(anchor, node_id)
                    + request.chain.vnf_at(vnf_index).processing_delay_ms
                )
            except NoRouteError:
                return None
            partial_assignment.append(node_id)

        try:
            placement = Placement.build(request, partial_assignment, network)
        except NoRouteError:
            return None
        if not placement.is_feasible(network):
            return None
        return placement
