"""Training and evaluation loops for placement agents.

The loops are built around :class:`VecTrainer`, which drives one agent
through the K lanes of a :class:`~repro.core.vecenv.VecPlacementEnv` with
batched ``select_actions`` / ``observe_batch`` calls — one agent forward pass
serves K environment steps.  :class:`Trainer` is the K=1 special case and
keeps the original single-environment API (``run_episode`` / ``train`` /
``evaluate``) byte-for-byte compatible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.agents.base import Agent
from repro.core.env import VNFPlacementEnv
from repro.core.vecenv import VecPlacementEnv
from repro.utils.validation import check_positive


@dataclass
class TrainingConfig:
    """Configuration of the episodic training loop."""

    num_episodes: int = 200
    max_steps_per_episode: int = 2000
    evaluation_interval: int = 25
    evaluation_episodes: int = 3
    log_window: int = 10

    def __post_init__(self) -> None:
        check_positive(self.num_episodes, "num_episodes")
        check_positive(self.max_steps_per_episode, "max_steps_per_episode")
        check_positive(self.evaluation_interval, "evaluation_interval")
        check_positive(self.evaluation_episodes, "evaluation_episodes")
        check_positive(self.log_window, "log_window")


@dataclass
class TrainingHistory:
    """Per-episode training curves (the data behind the convergence figure)."""

    episode_rewards: List[float] = field(default_factory=list)
    episode_acceptance: List[float] = field(default_factory=list)
    episode_latency: List[float] = field(default_factory=list)
    episode_losses: List[float] = field(default_factory=list)
    evaluation_rewards: List[float] = field(default_factory=list)
    evaluation_episodes_at: List[int] = field(default_factory=list)

    def moving_average_reward(self, window: int = 10) -> List[float]:
        """Smoothed reward curve used in the convergence figure."""
        rewards = self.episode_rewards
        if not rewards:
            return []
        smoothed: List[float] = []
        for index in range(len(rewards)):
            start = max(0, index - window + 1)
            smoothed.append(float(np.mean(rewards[start : index + 1])))
        return smoothed

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the full history."""
        return {
            "episode_rewards": list(self.episode_rewards),
            "episode_acceptance": list(self.episode_acceptance),
            "episode_latency": list(self.episode_latency),
            "episode_losses": list(self.episode_losses),
            "evaluation_rewards": list(self.evaluation_rewards),
            "evaluation_episodes_at": list(self.evaluation_episodes_at),
        }


@dataclass
class EvaluationResult:
    """Aggregate greedy-policy performance over a handful of episodes."""

    mean_reward: float
    mean_acceptance: float
    mean_latency_ms: float
    episodes: int
    #: Mean accepted-then-disrupted placements per episode (0 without
    #: fault injection).
    mean_disrupted: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view of the evaluation result."""
        return {
            "mean_reward": self.mean_reward,
            "mean_acceptance": self.mean_acceptance,
            "mean_latency_ms": self.mean_latency_ms,
            "episodes": self.episodes,
            "mean_disrupted": self.mean_disrupted,
        }


class VecTrainer:
    """Episodic trainer driving one agent through K vectorized lanes.

    Every decision loop iteration performs one batched
    ``agent.select_actions`` over the ``(K, state_dim)`` state batch, one
    ``venv.step`` and one batched ``agent.observe_batch`` — the per-step agent
    cost is amortized over K environment transitions.  Episode accounting is
    lane-agnostic: each lane completion contributes one entry to the training
    history, in completion order, exactly like the serial trainer's episode
    sequence.
    """

    def __init__(
        self,
        venv: VecPlacementEnv,  # or any env speaking the same surface,
        # e.g. a worker-backed SubprocVecPlacementEnv from make_vec_env()
        agent: Agent,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        if agent.state_dim != venv.state_dim:
            raise ValueError(
                f"agent expects state_dim={agent.state_dim} but the environment "
                f"produces {venv.state_dim}"
            )
        if agent.num_actions != venv.num_actions:
            raise ValueError(
                f"agent expects num_actions={agent.num_actions} but the environment "
                f"has {venv.num_actions}"
            )
        self.venv = venv
        self.agent = agent
        self.config = config or TrainingConfig()
        self.history = TrainingHistory()

    @property
    def num_lanes(self) -> int:
        """Number of parallel environment lanes."""
        return self.venv.num_lanes

    # ------------------------------------------------------------------ #
    # The vectorized decision loop
    # ------------------------------------------------------------------ #
    def run_episodes(
        self, episodes: int, learn: bool = True, greedy: bool = False
    ) -> List[Dict[str, float]]:
        """Reset all lanes and stream until ``episodes`` lane-episodes finish.

        Returns one summary dict per completed episode (in completion order)
        with the same keys as :meth:`Trainer.run_episode` plus the completing
        ``lane``.  Lanes that exceed ``max_steps_per_episode`` are truncated
        and summarized exactly like the serial trainer's step cap.
        """
        if episodes <= 0:
            return []
        venv = self.venv
        states = venv.reset()
        lane_steps = np.zeros(venv.num_lanes, dtype=int)
        summaries: List[Dict[str, float]] = []
        #: Losses observed since the last episode completion; each completing
        #: episode is labelled with their mean (for K=1 this is exactly the
        #: serial per-episode loss).
        recent_losses: List[float] = []
        while len(summaries) < episodes:
            masks = venv.valid_action_masks()
            actions = self.agent.select_actions(states, masks, greedy=greedy)
            # Lean-step protocol: the trainer only consumes episode_stats of
            # done lanes, which the lean accessors expose without the venv
            # building (or, under subproc, marshaling) K info dicts per step.
            next_states, rewards, dones, _ = venv.step(actions, info=False)
            lane_steps += 1
            # Lanes hitting the step cap end their episode here.  The
            # truncation flag is handed to the learner separately from the
            # termination flag: replay learners keep bootstrapping through
            # the cap, rollout learners flush the capped lane so no buffer
            # spans the forced reset below.
            truncations = (
                lane_steps >= self.config.max_steps_per_episode
            ) & ~dones
            if learn:
                next_masks = venv.valid_action_masks()
                self.agent.observe_batch(
                    states, actions, rewards, next_states, dones,
                    next_masks, truncations=truncations,
                )
                diagnostics = self.agent.update()
                if diagnostics and "loss" in diagnostics:
                    recent_losses.append(diagnostics["loss"])
            finished_this_step: List[Dict[str, float]] = []
            lane_stats = None  # fetched once per step, only if a lane truncates
            for lane, done in enumerate(dones):
                truncated = bool(truncations[lane])
                if not done and not truncated:
                    continue
                if done:
                    stats = venv.last_episode_stats(lane)
                else:
                    if lane_stats is None:
                        lane_stats = venv.lane_stats()
                    stats = lane_stats[lane].as_dict()
                finished_this_step.append(
                    {
                        "reward": float(stats["total_reward"]),
                        "acceptance": float(stats["acceptance_ratio"]),
                        "latency": float(stats["mean_latency_ms"]),
                        "lane": lane,
                    }
                )
                lane_steps[lane] = 0
                # Keep the lane streaming if more episodes are needed; a
                # done lane on an auto-reset venv has restarted already.
                needs_restart = (not venv.auto_reset) if done else True
                if needs_restart and len(summaries) + len(finished_this_step) < episodes:
                    next_states[lane] = venv.reset_lane(lane)
            if finished_this_step:
                loss = float(np.mean(recent_losses)) if recent_losses else 0.0
                recent_losses.clear()
                for summary in finished_this_step:
                    summary["loss"] = loss
                summaries.extend(finished_this_step)
            states = next_states
        if learn:
            self.agent.end_episode()
        return summaries[:episodes]

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run the full training schedule and return the learning curves."""
        target = self.config.num_episodes
        interval = self.config.evaluation_interval
        completed = 0
        while completed < target:
            boundary = min(target, (completed // interval + 1) * interval)
            for summary in self.run_episodes(
                boundary - completed, learn=True, greedy=False
            ):
                self.history.episode_rewards.append(summary["reward"])
                self.history.episode_acceptance.append(summary["acceptance"])
                self.history.episode_latency.append(summary["latency"])
                self.history.episode_losses.append(summary["loss"])
            completed = boundary
            if completed % interval == 0:
                evaluation = self.evaluate(self.config.evaluation_episodes)
                self.history.evaluation_rewards.append(evaluation.mean_reward)
                self.history.evaluation_episodes_at.append(completed)
                if verbose:
                    window = self.config.log_window
                    recent = self.history.episode_rewards[-window:]
                    print(
                        f"episode {completed:4d} | "
                        f"reward(avg {window}) {np.mean(recent):8.2f} | "
                        f"eval reward {evaluation.mean_reward:8.2f} | "
                        f"eval acceptance {evaluation.mean_acceptance:5.2f}"
                    )
        return self.history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, episodes: Optional[int] = None) -> EvaluationResult:
        """Run greedy (no-exploration, no-learning) episodes."""
        episodes = episodes or self.config.evaluation_episodes
        summaries = self.run_episodes(episodes, learn=False, greedy=True)
        return EvaluationResult(
            mean_reward=float(np.mean([s["reward"] for s in summaries])),
            mean_acceptance=float(np.mean([s["acceptance"] for s in summaries])),
            mean_latency_ms=float(np.mean([s["latency"] for s in summaries])),
            episodes=episodes,
        )

    def close(self) -> None:
        """Release the vectorized environment (stops subprocess workers)."""
        self.venv.close()


class Trainer(VecTrainer):
    """Episodic trainer driving one agent through one environment.

    This is the K=1 case of :class:`VecTrainer`: the environment is wrapped
    in a single-lane :class:`VecPlacementEnv` (without auto-reset, so episode
    boundaries behave exactly like the historical serial loop) and all agent
    interaction flows through the batched API, which every agent routes to
    its serial path for one-row batches.  The public API — ``env``,
    ``run_episode``, ``train``, ``evaluate``, ``history`` — is unchanged.
    """

    def __init__(
        self,
        env: VNFPlacementEnv,
        agent: Agent,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        super().__init__(
            VecPlacementEnv([env], auto_reset=False), agent, config
        )
        self.env = env

    def run_episode(self, learn: bool = True, greedy: bool = False) -> Dict[str, float]:
        """Run one episode; returns the episode's summary statistics."""
        summary = self.run_episodes(1, learn=learn, greedy=greedy)[0]
        return {key: summary[key] for key in ("reward", "acceptance", "latency", "loss")}
