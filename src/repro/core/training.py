"""Training and evaluation loops for placement agents."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.agents.base import Agent
from repro.core.env import VNFPlacementEnv
from repro.utils.validation import check_positive


@dataclass
class TrainingConfig:
    """Configuration of the episodic training loop."""

    num_episodes: int = 200
    max_steps_per_episode: int = 2000
    evaluation_interval: int = 25
    evaluation_episodes: int = 3
    log_window: int = 10

    def __post_init__(self) -> None:
        check_positive(self.num_episodes, "num_episodes")
        check_positive(self.max_steps_per_episode, "max_steps_per_episode")
        check_positive(self.evaluation_interval, "evaluation_interval")
        check_positive(self.evaluation_episodes, "evaluation_episodes")
        check_positive(self.log_window, "log_window")


@dataclass
class TrainingHistory:
    """Per-episode training curves (the data behind the convergence figure)."""

    episode_rewards: List[float] = field(default_factory=list)
    episode_acceptance: List[float] = field(default_factory=list)
    episode_latency: List[float] = field(default_factory=list)
    episode_losses: List[float] = field(default_factory=list)
    evaluation_rewards: List[float] = field(default_factory=list)
    evaluation_episodes_at: List[int] = field(default_factory=list)

    def moving_average_reward(self, window: int = 10) -> List[float]:
        """Smoothed reward curve used in the convergence figure."""
        rewards = self.episode_rewards
        if not rewards:
            return []
        smoothed: List[float] = []
        for index in range(len(rewards)):
            start = max(0, index - window + 1)
            smoothed.append(float(np.mean(rewards[start : index + 1])))
        return smoothed

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the full history."""
        return {
            "episode_rewards": list(self.episode_rewards),
            "episode_acceptance": list(self.episode_acceptance),
            "episode_latency": list(self.episode_latency),
            "episode_losses": list(self.episode_losses),
            "evaluation_rewards": list(self.evaluation_rewards),
            "evaluation_episodes_at": list(self.evaluation_episodes_at),
        }


@dataclass
class EvaluationResult:
    """Aggregate greedy-policy performance over a handful of episodes."""

    mean_reward: float
    mean_acceptance: float
    mean_latency_ms: float
    episodes: int

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view of the evaluation result."""
        return {
            "mean_reward": self.mean_reward,
            "mean_acceptance": self.mean_acceptance,
            "mean_latency_ms": self.mean_latency_ms,
            "episodes": self.episodes,
        }


class Trainer:
    """Episodic trainer driving one agent through one environment."""

    def __init__(
        self,
        env: VNFPlacementEnv,
        agent: Agent,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        if agent.state_dim != env.state_dim:
            raise ValueError(
                f"agent expects state_dim={agent.state_dim} but the environment "
                f"produces {env.state_dim}"
            )
        if agent.num_actions != env.num_actions:
            raise ValueError(
                f"agent expects num_actions={agent.num_actions} but the environment "
                f"has {env.num_actions}"
            )
        self.env = env
        self.agent = agent
        self.config = config or TrainingConfig()
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def run_episode(self, learn: bool = True, greedy: bool = False) -> Dict[str, float]:
        """Run one episode; returns the episode's summary statistics."""
        state = self.env.reset()
        episode_losses: List[float] = []
        for _ in range(self.config.max_steps_per_episode):
            mask = self.env.valid_action_mask()
            action = self.agent.select_action(state, mask=mask, greedy=greedy)
            next_state, reward, done, info = self.env.step(action)
            if learn:
                next_mask = self.env.valid_action_mask()
                self.agent.observe(
                    state, action, reward, next_state, done, next_mask=next_mask
                )
                diagnostics = self.agent.update()
                if diagnostics and "loss" in diagnostics:
                    episode_losses.append(diagnostics["loss"])
            state = next_state
            if done:
                break
        if learn:
            self.agent.end_episode()
        stats = self.env.stats
        return {
            "reward": stats.total_reward,
            "acceptance": stats.acceptance_ratio,
            "latency": stats.mean_latency_ms,
            "loss": float(np.mean(episode_losses)) if episode_losses else 0.0,
        }

    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run the full training schedule and return the learning curves."""
        for episode in range(1, self.config.num_episodes + 1):
            summary = self.run_episode(learn=True, greedy=False)
            self.history.episode_rewards.append(summary["reward"])
            self.history.episode_acceptance.append(summary["acceptance"])
            self.history.episode_latency.append(summary["latency"])
            self.history.episode_losses.append(summary["loss"])

            if episode % self.config.evaluation_interval == 0:
                evaluation = self.evaluate(self.config.evaluation_episodes)
                self.history.evaluation_rewards.append(evaluation.mean_reward)
                self.history.evaluation_episodes_at.append(episode)
                if verbose:
                    window = self.config.log_window
                    recent = self.history.episode_rewards[-window:]
                    print(
                        f"episode {episode:4d} | "
                        f"reward(avg {window}) {np.mean(recent):8.2f} | "
                        f"eval reward {evaluation.mean_reward:8.2f} | "
                        f"eval acceptance {evaluation.mean_acceptance:5.2f}"
                    )
        return self.history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, episodes: Optional[int] = None) -> EvaluationResult:
        """Run greedy (no-exploration, no-learning) episodes."""
        episodes = episodes or self.config.evaluation_episodes
        rewards: List[float] = []
        acceptances: List[float] = []
        latencies: List[float] = []
        for _ in range(episodes):
            summary = self.run_episode(learn=False, greedy=True)
            rewards.append(summary["reward"])
            acceptances.append(summary["acceptance"])
            latencies.append(summary["latency"])
        return EvaluationResult(
            mean_reward=float(np.mean(rewards)),
            mean_acceptance=float(np.mean(acceptances)),
            mean_latency_ms=float(np.mean(latencies)),
            episodes=episodes,
        )
