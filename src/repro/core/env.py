"""The VNF-placement reinforcement-learning environment.

:class:`VNFPlacementEnv` exposes the online placement problem with the usual
``reset`` / ``step`` interface:

* an **episode** processes ``requests_per_episode`` SFC requests drawn from a
  workload generator;
* a **step** places one VNF of the current request on a substrate node (or
  rejects the request);
* when the last VNF of a request is placed the environment attempts to commit
  the full placement — success yields the acceptance reward and reserves
  resources until the request's departure time, failure yields the
  infeasibility penalty;
* between requests the environment advances simulated time and releases the
  resources of departed requests, so the agent experiences realistic load
  dynamics.

The environment follows the Gym calling convention
``step(action) -> (next_state, reward, done, info)`` with an additional
``valid_action_mask()`` accessor used for masked exploration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.action import ActionSpace
from repro.core.reward import RewardCalculator, RewardConfig
from repro.core.state import EncoderConfig, StateEncoder
from repro.nfv.catalog import VNFCatalog, default_catalog
from repro.nfv.placement import Placement, PlacementError
from repro.nfv.sfc import SFCRequest
from repro.substrate.network import NoRouteError, SubstrateNetwork
from repro.utils.validation import check_positive
from repro.workloads.generator import RequestGenerator


@dataclass
class EnvConfig:
    """Environment-level configuration."""

    requests_per_episode: int = 50
    latency_mask_check: bool = True

    def __post_init__(self) -> None:
        check_positive(self.requests_per_episode, "requests_per_episode")


@dataclass
class EpisodeStats:
    """Statistics accumulated over one episode."""

    requests_seen: int = 0
    accepted: int = 0
    rejected: int = 0
    infeasible: int = 0
    total_reward: float = 0.0
    total_latency_ms: float = 0.0
    total_cost: float = 0.0

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of this episode's requests that were accepted."""
        return self.accepted / self.requests_seen if self.requests_seen else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over accepted requests."""
        return self.total_latency_ms / self.accepted if self.accepted else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view of the episode statistics."""
        return {
            "requests_seen": self.requests_seen,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "infeasible": self.infeasible,
            "total_reward": self.total_reward,
            "acceptance_ratio": self.acceptance_ratio,
            "mean_latency_ms": self.mean_latency_ms,
            "total_cost": self.total_cost,
        }


class VNFPlacementEnv:
    """Sequential per-VNF placement environment over a stream of requests."""

    def __init__(
        self,
        network: SubstrateNetwork,
        generator: RequestGenerator,
        catalog: Optional[VNFCatalog] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        config: Optional[EnvConfig] = None,
    ) -> None:
        self.network = network
        self.generator = generator
        self.catalog = catalog or generator.catalog or default_catalog()
        self.config = config or EnvConfig()
        self.encoder = StateEncoder(network, self.catalog, encoder_config)
        self.actions = ActionSpace(network, node_order=self.encoder.node_order)
        self.rewards = RewardCalculator(reward_config)

        self._requests: List[SFCRequest] = []
        self._request_index = 0
        self._current_request: Optional[SFCRequest] = None
        self._vnf_index = 0
        self._partial_assignment: List[int] = []
        self._partial_latency = 0.0
        #: Min-heap of (departure_time, tie-break counter, placement) so that
        #: releasing departed placements pops only expired entries instead of
        #: scanning every active placement each step.
        self._active: List[Tuple[float, int, Placement]] = []
        self._active_counter = 0
        self._episode_done = True
        self.stats = EpisodeStats()

    # ------------------------------------------------------------------ #
    # Gym-style dimensions
    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        """Width of observation vectors."""
        return self.encoder.state_dim

    @property
    def num_actions(self) -> int:
        """Number of discrete actions."""
        return self.actions.num_actions

    @property
    def current_request(self) -> Optional[SFCRequest]:
        """The request currently being placed (None between episodes)."""
        return self._current_request

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> np.ndarray:
        """Start a new episode with a fresh request batch and empty substrate."""
        self.network.reset()
        self._active.clear()
        self._requests = self.generator.generate_batch(self.config.requests_per_episode)
        self._request_index = 0
        self.stats = EpisodeStats()
        self._episode_done = False
        self._begin_next_request()
        return self._observe()

    def _begin_next_request(self) -> None:
        """Advance to the next request, releasing departed placements first."""
        if self._request_index >= len(self._requests):
            self._current_request = None
            self._episode_done = True
            return
        request = self._requests[self._request_index]
        self._request_index += 1
        self._release_departed(request.arrival_time)
        self._current_request = request
        self._vnf_index = 0
        self._partial_assignment = []
        self._partial_latency = 0.0
        self.stats.requests_seen += 1

    def _release_departed(self, now: float) -> None:
        while self._active and self._active[0][0] <= now:
            _, _, placement = heapq.heappop(self._active)
            if placement.is_committed:
                placement.release(self.network)

    def _track_placement(self, departure_time: float, placement: Placement) -> None:
        self._active_counter += 1
        heapq.heappush(self._active, (departure_time, self._active_counter, placement))

    # ------------------------------------------------------------------ #
    # Observations and masks
    # ------------------------------------------------------------------ #
    def _observe(self) -> np.ndarray:
        if self._current_request is None:
            return np.zeros(self.state_dim, dtype=float)
        return self.encoder.encode(
            self._current_request,
            self._vnf_index,
            self._partial_assignment,
            self._partial_latency,
        )

    def valid_action_mask(self) -> np.ndarray:
        """Boolean mask of currently valid actions (reject always valid)."""
        if self._current_request is None:
            mask = np.zeros(self.num_actions, dtype=bool)
            mask[self.actions.reject_action] = True
            return mask
        return self.actions.valid_mask(
            self._current_request,
            self._vnf_index,
            self._partial_assignment,
            self._partial_latency,
            latency_check=self.config.latency_mask_check,
        )

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, object]]:
        """Apply one placement decision.

        Returns ``(next_state, reward, done, info)`` where ``done`` marks the
        end of the *episode* (all requests processed); ``info["request_done"]``
        marks the end of the current request's decision sequence.
        """
        if self._episode_done or self._current_request is None:
            raise RuntimeError("step() called on a finished episode; call reset()")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside the action space")

        request = self._current_request
        info: Dict[str, object] = {"request_id": request.request_id, "request_done": False}

        if self.actions.is_reject(action):
            reward = self.rewards.rejection_penalty(request)
            self.stats.rejected += 1
            info["outcome"] = "rejected"
            info["request_done"] = True
            self._begin_next_request()
        else:
            node_id = self.actions.node_for_action(action)
            reward, request_done, outcome = self._place_vnf(request, node_id)
            info["outcome"] = outcome
            info["request_done"] = request_done
            if request_done:
                self._begin_next_request()

        self.stats.total_reward += reward
        done = self._episode_done
        next_state = self._observe()
        info["episode_stats"] = self.stats.as_dict() if done else None
        return next_state, reward, done, info

    def _place_vnf(
        self, request: SFCRequest, node_id: int
    ) -> Tuple[float, bool, str]:
        """Place the current VNF on ``node_id``; commit when the chain completes."""
        anchor = self.encoder.anchor_node(request, self._partial_assignment)
        try:
            added_latency = (
                self.network.latency_between(anchor, node_id)
                + request.chain.vnf_at(self._vnf_index).processing_delay_ms
            )
        except NoRouteError:
            self.stats.infeasible += 1
            return self.rewards.infeasibility_penalty(request), True, "no_route"

        reward = self.rewards.step_reward(
            request, self.network, node_id, added_latency, self._vnf_index
        )
        self._partial_assignment.append(node_id)
        self._partial_latency += added_latency
        self._vnf_index += 1

        if self._vnf_index < request.num_vnfs:
            return reward, False, "placed"

        # Chain complete: attempt to commit the full placement.
        try:
            placement = Placement.build(request, self._partial_assignment, self.network)
        except NoRouteError:
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "no_route",
            )
        if not placement.is_feasible(self.network):
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "infeasible",
            )
        try:
            placement.commit(self.network)
        except PlacementError:
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "commit_failed",
            )
        self._track_placement(request.departure_time, placement)
        self.stats.accepted += 1
        self.stats.total_latency_ms += placement.end_to_end_latency_ms()
        self.stats.total_cost += placement.total_cost(self.network)
        terminal = self.rewards.acceptance_reward(request, placement, self.network)
        return reward + terminal, True, "accepted"
