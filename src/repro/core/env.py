"""The VNF-placement reinforcement-learning environment.

:class:`VNFPlacementEnv` exposes the online placement problem with the usual
``reset`` / ``step`` interface:

* an **episode** processes ``requests_per_episode`` SFC requests drawn from a
  workload generator;
* a **step** places one VNF of the current request on a substrate node (or
  rejects the request);
* when the last VNF of a request is placed the environment attempts to commit
  the full placement — success yields the acceptance reward and reserves
  resources until the request's departure time, failure yields the
  infeasibility penalty;
* between requests the environment advances simulated time and releases the
  resources of departed requests, so the agent experiences realistic load
  dynamics.

The environment follows the Gym calling convention
``step(action) -> (next_state, reward, done, info)`` with an additional
``valid_action_mask()`` accessor used for masked exploration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.action import ActionSpace
from repro.core.reward import RewardCalculator, RewardConfig
from repro.core.state import EncoderConfig, StateEncoder
from repro.nfv.catalog import VNFCatalog, default_catalog
from repro.nfv.placement import Placement, PlacementError
from repro.nfv.sfc import SFCRequest
from repro.sim.failures import FailureConfig, FailureEvent, FailureInjector
from repro.substrate.network import NoRouteError, SubstrateNetwork
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive
from repro.workloads.generator import RequestGenerator


@dataclass
class EnvConfig:
    """Environment-level configuration."""

    requests_per_episode: int = 50
    latency_mask_check: bool = True

    def __post_init__(self) -> None:
        check_positive(self.requests_per_episode, "requests_per_episode")


@dataclass
class EpisodeStats:
    """Statistics accumulated over one episode."""

    requests_seen: int = 0
    accepted: int = 0
    rejected: int = 0
    infeasible: int = 0
    total_reward: float = 0.0
    total_latency_ms: float = 0.0
    total_cost: float = 0.0
    #: Accepted placements torn down by an injected node failure.
    disrupted: int = 0

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of this episode's requests that were accepted."""
        return self.accepted / self.requests_seen if self.requests_seen else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over accepted requests."""
        return self.total_latency_ms / self.accepted if self.accepted else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view of the episode statistics."""
        return {
            "requests_seen": self.requests_seen,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "infeasible": self.infeasible,
            "total_reward": self.total_reward,
            "acceptance_ratio": self.acceptance_ratio,
            "mean_latency_ms": self.mean_latency_ms,
            "total_cost": self.total_cost,
            "disrupted": self.disrupted,
        }


class VNFPlacementEnv:
    """Sequential per-VNF placement environment over a stream of requests.

    With a ``failure_config`` the environment injects node failures into the
    episode: a reproducible :class:`~repro.sim.failures.FailureInjector`
    schedule is drawn per episode, failure/recovery events are applied as
    simulated time advances between requests (failed nodes are *fenced* — any
    remaining capacity is reserved under a failure handle — and active
    placements hosting a VNF there are torn down and counted as
    ``disrupted``), and failed nodes are masked out of
    :meth:`valid_action_mask` until they recover.
    """

    _FENCE_PREFIX = "fence:env:"

    def __init__(
        self,
        network: SubstrateNetwork,
        generator: RequestGenerator,
        catalog: Optional[VNFCatalog] = None,
        reward_config: Optional[RewardConfig] = None,
        encoder_config: Optional[EncoderConfig] = None,
        config: Optional[EnvConfig] = None,
        failure_config: Optional[FailureConfig] = None,
    ) -> None:
        self.network = network
        self.generator = generator
        self.catalog = catalog or generator.catalog or default_catalog()
        self.config = config or EnvConfig()
        self.encoder = StateEncoder(network, self.catalog, encoder_config)
        self.actions = ActionSpace(network, node_order=self.encoder.node_order)
        self.rewards = RewardCalculator(reward_config)
        self.failure_config = failure_config

        self._requests: List[SFCRequest] = []
        self._request_index = 0
        self._current_request: Optional[SFCRequest] = None
        self._vnf_index = 0
        self._partial_assignment: List[int] = []
        self._partial_latency = 0.0
        #: Min-heap of (departure_time, tie-break counter, placement) so that
        #: releasing departed placements pops only expired entries instead of
        #: scanning every active placement each step.
        self._active: List[Tuple[float, int, Placement]] = []
        self._active_counter = 0
        self._episode_done = True
        self.stats = EpisodeStats()
        self._node_action = {
            node_id: index for index, node_id in enumerate(self.actions.node_order)
        }
        self._failure_schedule: List[FailureEvent] = []
        self._failure_cursor = 0
        self._failed_nodes: Set[int] = set()
        self._episode_counter = 0
        zero_state = np.zeros(self.encoder.state_dim, dtype=float)
        zero_state.setflags(write=False)
        self._zero_state = zero_state

    # ------------------------------------------------------------------ #
    # Gym-style dimensions
    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        """Width of observation vectors."""
        return self.encoder.state_dim

    @property
    def num_actions(self) -> int:
        """Number of discrete actions."""
        return self.actions.num_actions

    @property
    def current_request(self) -> Optional[SFCRequest]:
        """The request currently being placed (None between episodes)."""
        return self._current_request

    @property
    def vnf_index(self) -> int:
        """Chain position of the VNF being placed next (0-based)."""
        return self._vnf_index

    @property
    def partial_assignment(self) -> List[int]:
        """Nodes already chosen for the current request, in chain order."""
        return list(self._partial_assignment)

    @property
    def partial_latency_ms(self) -> float:
        """Accumulated latency of the current request's placed prefix."""
        return self._partial_latency

    @property
    def anchor_node_id(self) -> int:
        """The node traffic currently sits at (last placed VNF or ingress).

        Raises when no request is in flight.
        """
        if self._current_request is None:
            raise RuntimeError("no request in flight; the episode is finished")
        return self.encoder.anchor_node(self._current_request, self._partial_assignment)

    @property
    def failed_nodes(self) -> List[int]:
        """Node ids currently fenced by an injected failure."""
        return sorted(self._failed_nodes)

    # ------------------------------------------------------------------ #
    # Episode lifecycle
    # ------------------------------------------------------------------ #
    def reset(self, observe: bool = True) -> np.ndarray:
        """Start a new episode with a fresh request batch and empty substrate.

        ``observe=False`` skips encoding the initial observation (fast path
        for live-substrate policies).
        """
        self.network.reset()
        self._active.clear()
        self._failed_nodes.clear()
        self._failure_cursor = 0
        self._requests = self.generator.generate_batch(self.config.requests_per_episode)
        self._failure_schedule = self._draw_failure_schedule()
        self._episode_counter += 1
        self._request_index = 0
        self.stats = EpisodeStats()
        self._episode_done = False
        self._begin_next_request()
        return self._observe() if observe else self._zero_state

    def _draw_failure_schedule(self) -> List[FailureEvent]:
        """The episode's failure/recovery events (empty without fault injection).

        Each episode draws its own schedule from a seed derived from
        ``(failure seed, episode index)``, so episodes see independent but
        individually reproducible failure patterns.
        """
        if self.failure_config is None or not self._requests:
            return []
        horizon = self._requests[-1].arrival_time
        if horizon <= 0:
            return []
        episode_config = replace(
            self.failure_config,
            seed=derive_seed(
                self.failure_config.seed, "env_failures", self._episode_counter
            ),
        )
        return FailureInjector(episode_config).schedule(self.network, horizon)

    def _begin_next_request(self) -> None:
        """Advance to the next request, applying departures and failures first."""
        if self._request_index >= len(self._requests):
            self._current_request = None
            self._episode_done = True
            return
        request = self._requests[self._request_index]
        self._request_index += 1
        self._advance_time(request.arrival_time)
        self._current_request = request
        self._vnf_index = 0
        self._partial_assignment = []
        self._partial_latency = 0.0
        self.stats.requests_seen += 1

    def _advance_time(self, now: float) -> None:
        """Apply departures and scheduled failure events up to ``now``.

        Departures and failure/recovery events interleave chronologically:
        a placement departing before a node fails frees its capacity before
        the fence is sized, exactly as in the discrete-event simulator.
        """
        schedule = self._failure_schedule
        while (
            self._failure_cursor < len(schedule)
            and schedule[self._failure_cursor].time <= now
        ):
            event = schedule[self._failure_cursor]
            self._failure_cursor += 1
            self._release_departed(event.time)
            if event.is_failure:
                self._fail_node(event.node_id)
            else:
                self._recover_node(event.node_id)
        self._release_departed(now)

    def _fence_handle(self, node_id: int) -> str:
        return f"{self._FENCE_PREFIX}{node_id}"

    def _fail_node(self, node_id: int) -> None:
        """Fence ``node_id`` and tear down every active placement on it."""
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        for _, _, placement in self._active:
            if placement.is_committed and node_id in placement.node_assignment:
                placement.release(self.network)
                self.stats.disrupted += 1
        node = self.network.node(node_id)
        remaining = node.available
        if not remaining.is_zero():
            node.allocate(self._fence_handle(node_id), remaining)

    def _recover_node(self, node_id: int) -> None:
        """Lift the fence of a recovered node."""
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        node = self.network.node(node_id)
        if node.holds(self._fence_handle(node_id)):
            node.release(self._fence_handle(node_id))

    def _release_departed(self, now: float) -> None:
        while self._active and self._active[0][0] <= now:
            _, _, placement = heapq.heappop(self._active)
            if placement.is_committed:
                placement.release(self.network)

    def _track_placement(self, departure_time: float, placement: Placement) -> None:
        self._active_counter += 1
        heapq.heappush(self._active, (departure_time, self._active_counter, placement))

    # ------------------------------------------------------------------ #
    # Observations and masks
    # ------------------------------------------------------------------ #
    def _observe(self) -> np.ndarray:
        if self._current_request is None:
            return np.zeros(self.state_dim, dtype=float)
        return self.encoder.encode(
            self._current_request,
            self._vnf_index,
            self._partial_assignment,
            self._partial_latency,
        )

    def valid_action_mask(self) -> np.ndarray:
        """Boolean mask of currently valid actions (reject always valid).

        Nodes fenced by an injected failure are masked out explicitly: the
        fence already consumes their capacity, but folding failure state into
        the mask keeps them unplaceable even if capacity accounting and
        failure state ever disagree.
        """
        if self._current_request is None:
            mask = np.zeros(self.num_actions, dtype=bool)
            mask[self.actions.reject_action] = True
            return mask
        mask = self.actions.valid_mask(
            self._current_request,
            self._vnf_index,
            self._partial_assignment,
            self._partial_latency,
            latency_check=self.config.latency_mask_check,
        )
        for node_id in self._failed_nodes:
            mask[self._node_action[node_id]] = False
        return mask

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(
        self, action: int, observe: bool = True
    ) -> Tuple[np.ndarray, float, bool, Dict[str, object]]:
        """Apply one placement decision.

        Returns ``(next_state, reward, done, info)`` where ``done`` marks the
        end of the *episode* (all requests processed); ``info["request_done"]``
        marks the end of the current request's decision sequence.  With
        ``observe=False`` the (relatively expensive) next-state encoding is
        skipped and a read-only zero vector is returned instead — the fast
        path for policies that decide from the live substrate rather than
        the encoded observation.
        """
        if self._episode_done or self._current_request is None:
            raise RuntimeError("step() called on a finished episode; call reset()")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside the action space")

        request = self._current_request
        info: Dict[str, object] = {"request_id": request.request_id, "request_done": False}

        if self.actions.is_reject(action):
            reward = self.rewards.rejection_penalty(request)
            self.stats.rejected += 1
            info["outcome"] = "rejected"
            info["request_done"] = True
            self._begin_next_request()
        else:
            node_id = self.actions.node_for_action(action)
            reward, request_done, outcome = self._place_vnf(request, node_id)
            info["outcome"] = outcome
            info["request_done"] = request_done
            if request_done:
                self._begin_next_request()

        self.stats.total_reward += reward
        done = self._episode_done
        next_state = self._observe() if observe else self._zero_state
        info["episode_stats"] = self.stats.as_dict() if done else None
        return next_state, reward, done, info

    def _place_vnf(
        self, request: SFCRequest, node_id: int
    ) -> Tuple[float, bool, str]:
        """Place the current VNF on ``node_id``; commit when the chain completes."""
        anchor = self.encoder.anchor_node(request, self._partial_assignment)
        try:
            added_latency = (
                self.network.latency_between(anchor, node_id)
                + request.chain.vnf_at(self._vnf_index).processing_delay_ms
            )
        except NoRouteError:
            self.stats.infeasible += 1
            return self.rewards.infeasibility_penalty(request), True, "no_route"

        reward = self.rewards.step_reward(
            request, self.network, node_id, added_latency, self._vnf_index
        )
        self._partial_assignment.append(node_id)
        self._partial_latency += added_latency
        self._vnf_index += 1

        if self._vnf_index < request.num_vnfs:
            return reward, False, "placed"

        # Chain complete: attempt to commit the full placement.
        try:
            placement = Placement.build(request, self._partial_assignment, self.network)
        except NoRouteError:
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "no_route",
            )
        if not placement.is_feasible(self.network):
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "infeasible",
            )
        try:
            placement.commit(self.network)
        except PlacementError:
            self.stats.infeasible += 1
            return (
                reward + self.rewards.infeasibility_penalty(request),
                True,
                "commit_failed",
            )
        self._track_placement(request.departure_time, placement)
        self.stats.accepted += 1
        self.stats.total_latency_ms += placement.end_to_end_latency_ms()
        self.stats.total_cost += placement.total_cost(self.network)
        terminal = self.rewards.acceptance_reward(request, placement, self.network)
        return reward + terminal, True, "accepted"
