"""Per-figure reproduction functions.

Each ``figure_*`` function regenerates the data series behind one figure of
the reconstructed evaluation and returns a plain dictionary:

``{"figure": <id>, "x_label": ..., "x": [...], "series": {name: [...]}, ...}``

The functions only *compute* — printing/formatting lives in
:mod:`repro.experiments.reporting` and persistence in the benchmark files —
so they are equally usable from benchmarks, examples and notebooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.agents.dqn import make_dqn_variant
from repro.baselines import standard_baselines
from repro.core.env import VNFPlacementEnv
from repro.core.manager import VNFManager
from repro.core.reward import (
    RewardConfig,
    acceptance_focused_config,
    cost_focused_config,
    latency_focused_config,
)
from repro.core.training import Trainer, TrainingConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_reference_scenario,
    evaluate_drl_and_baselines,
    train_manager,
    vec_sweep_env_eval,
)
from repro.utils.rng import derive_seed
from repro.workloads.scenarios import scalability_scenario, scenario_grid


def _env_eval_baselines(config: ExperimentConfig):
    """The baseline panel evaluated through the vec lanes of ``env_eval``."""
    return standard_baselines(seed=derive_seed(config.seed, "env_eval_baselines"))


# --------------------------------------------------------------------------- #
# Fig. 1 — training convergence
# --------------------------------------------------------------------------- #
def figure_training_convergence(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Episode reward (raw and smoothed) of the DRL agent during training."""
    config = config or ExperimentConfig.fast()
    scenario = build_reference_scenario(config)
    manager = train_manager(scenario, config)
    history = manager.trainer.history
    return {
        "figure": "fig1_training_convergence",
        "x_label": "training episode",
        "y_label": "episode reward",
        "x": list(range(1, len(history.episode_rewards) + 1)),
        "series": {
            "episode_reward": list(history.episode_rewards),
            "smoothed_reward": history.moving_average_reward(config.training_episodes // 10 or 1),
            "acceptance_ratio": list(history.episode_acceptance),
        },
        "evaluation": {
            "episodes": list(history.evaluation_episodes_at),
            "rewards": list(history.evaluation_rewards),
        },
    }


# --------------------------------------------------------------------------- #
# Figs. 2-4 — load sweeps (acceptance, latency, cost vs arrival rate)
# --------------------------------------------------------------------------- #
def _load_sweep(
    config: ExperimentConfig, metric: str
) -> Dict[str, object]:
    """Shared implementation of the arrival-rate sweep figures."""
    scenario = build_reference_scenario(config)
    manager = train_manager(scenario, config)
    series: Dict[str, List[float]] = {}
    for rate in config.arrival_rates:
        swept = scenario.with_arrival_rate(rate)
        results = evaluate_drl_and_baselines(swept, manager, config)
        for name, result in results.items():
            value = getattr(result.summary, metric)
            series.setdefault(name, []).append(float(value))
    # The environment-level sweep runs as ONE scenario-diverse vectorized
    # batch per policy: one lane per load point, one batched pass for the
    # agent and for every baseline of the comparison panel.
    env_eval = vec_sweep_env_eval(
        manager,
        scenario_grid(scenario, arrival_rates=config.arrival_rates),
        config,
        baselines=_env_eval_baselines(config),
    )
    return {
        "x_label": "arrival rate (requests / time unit)",
        "x": list(config.arrival_rates),
        "series": series,
        "env_eval": env_eval,
    }


def figure_acceptance_vs_arrival(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 2 — acceptance ratio vs offered load, DRL vs baselines."""
    config = config or ExperimentConfig.fast()
    data = _load_sweep(config, "acceptance_ratio")
    data.update({"figure": "fig2_acceptance_vs_arrival", "y_label": "acceptance ratio"})
    return data


def figure_latency_vs_arrival(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 3 — mean end-to-end latency of accepted requests vs offered load."""
    config = config or ExperimentConfig.fast()
    data = _load_sweep(config, "mean_latency_ms")
    data.update({"figure": "fig3_latency_vs_arrival", "y_label": "mean latency (ms)"})
    return data


def figure_cost_vs_arrival(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 4 — mean operational cost per accepted request vs offered load."""
    config = config or ExperimentConfig.fast()
    data = _load_sweep(config, "mean_cost_per_accepted")
    data.update(
        {"figure": "fig4_cost_vs_arrival", "y_label": "cost per accepted request"}
    )
    return data


# --------------------------------------------------------------------------- #
# Fig. 5 — scalability over the number of edge nodes
# --------------------------------------------------------------------------- #
def figure_acceptance_vs_edges(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 5 — acceptance ratio as the topology grows (per-node load fixed).

    The DRL controller is retrained per topology size (the state and action
    spaces change with the topology), exactly as the paper retrains its agent
    per substrate.
    """
    config = config or ExperimentConfig.fast()
    series: Dict[str, List[float]] = {}
    env_eval: Dict[str, object] = {
        "lanes_per_size": [],
        "mean_reward": [],
        "acceptance_ratio": [],
        "mean_latency_ms": [],
        "baselines": {},
    }
    for num_edges in config.edge_node_sweep:
        scenario = scalability_scenario(
            num_edges,
            horizon=config.evaluation_horizon,
            seed=derive_seed(config.seed, "scalability", num_edges),
        )
        manager = train_manager(scenario, config)
        results = evaluate_drl_and_baselines(scenario, manager, config)
        for name, result in results.items():
            series.setdefault(name, []).append(result.summary.acceptance_ratio)
        # Environment-level greedy evaluation at this size runs as one vec
        # batch of seed-diverse replicated lanes (the state/action spaces
        # change with the topology, so sizes cannot share one batch).
        lanes = 2
        size_eval = vec_sweep_env_eval(
            manager,
            [scenario] * lanes,
            config,
            episodes_per_scenario=1,
            baselines=_env_eval_baselines(config),
        )
        env_eval["lanes_per_size"].append(lanes)
        env_eval["mean_reward"].append(float(np.mean(size_eval["mean_reward"])))
        env_eval["acceptance_ratio"].append(
            float(np.mean(size_eval["acceptance_ratio"]))
        )
        env_eval["mean_latency_ms"].append(
            float(np.mean(size_eval["mean_latency_ms"]))
        )
        for name, entry in size_eval.get("baselines", {}).items():
            folded = env_eval["baselines"].setdefault(
                name, {"acceptance_ratio": [], "mean_latency_ms": []}
            )
            folded["acceptance_ratio"].append(
                float(np.mean(entry["acceptance_ratio"]))
            )
            folded["mean_latency_ms"].append(
                float(np.mean(entry["mean_latency_ms"]))
            )
    return {
        "figure": "fig5_acceptance_vs_edges",
        "x_label": "number of edge nodes",
        "y_label": "acceptance ratio",
        "x": list(config.edge_node_sweep),
        "series": series,
        "env_eval": env_eval,
    }


# --------------------------------------------------------------------------- #
# Fig. 6 — SLA-strictness sensitivity
# --------------------------------------------------------------------------- #
def figure_sla_sensitivity(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 6 — acceptance ratio vs latency-SLA scale (0.5x stricter .. 2x looser)."""
    config = config or ExperimentConfig.fast()
    scenario = build_reference_scenario(config)
    manager = train_manager(scenario, config)
    series: Dict[str, List[float]] = {}
    violation_series: Dict[str, List[float]] = {}
    for scale in config.sla_scales:
        swept = scenario.with_sla_scale(scale)
        results = evaluate_drl_and_baselines(swept, manager, config)
        for name, result in results.items():
            series.setdefault(name, []).append(result.summary.acceptance_ratio)
            violation_series.setdefault(name, []).append(
                result.summary.sla_violation_ratio
            )
    # The SLA sweep's environment-level evaluation runs as one
    # scenario-diverse vec batch (one lane per SLA scale) for the agent and
    # each baseline, mirroring the load sweeps of Figs. 2-4.
    env_eval = vec_sweep_env_eval(
        manager,
        scenario_grid(scenario, sla_scales=config.sla_scales),
        config,
        baselines=_env_eval_baselines(config),
    )
    return {
        "figure": "fig6_sla_sensitivity",
        "x_label": "SLA scale factor (1.0 = reference budgets)",
        "y_label": "acceptance ratio",
        "x": list(config.sla_scales),
        "series": series,
        "sla_violation_series": violation_series,
        "env_eval": env_eval,
    }


# --------------------------------------------------------------------------- #
# Fig. 7 — utilization and load balance at the reference load
# --------------------------------------------------------------------------- #
def figure_utilization(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Fig. 7 — mean edge utilization and imbalance per algorithm."""
    config = config or ExperimentConfig.fast()
    scenario = build_reference_scenario(config)
    manager = train_manager(scenario, config)
    results = evaluate_drl_and_baselines(scenario, manager, config)
    policies = list(results.keys())
    return {
        "figure": "fig7_utilization",
        "x_label": "policy",
        "y_label": "mean edge utilization",
        "x": policies,
        "series": {
            "mean_edge_utilization": [
                results[p].summary.mean_edge_utilization for p in policies
            ],
            "utilization_imbalance": [
                results[p].summary.mean_utilization_imbalance for p in policies
            ],
            "acceptance_ratio": [
                results[p].summary.acceptance_ratio for p in policies
            ],
        },
    }


# --------------------------------------------------------------------------- #
# Ablation A — reward-weight variants
# --------------------------------------------------------------------------- #
def figure_reward_ablation(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Ablation A — how reward weighting moves the latency/cost/acceptance balance."""
    config = config or ExperimentConfig.fast()
    scenario = build_reference_scenario(config)
    variants: Dict[str, RewardConfig] = {
        "balanced": RewardConfig(),
        "latency_focused": latency_focused_config(),
        "cost_focused": cost_focused_config(),
        "acceptance_focused": acceptance_focused_config(),
    }
    rows: Dict[str, Dict[str, float]] = {}
    for name, reward in variants.items():
        manager = train_manager(scenario, config, reward=reward)
        results = evaluate_drl_and_baselines(
            scenario, manager, config, include_baselines=False
        )
        summary = next(iter(results.values())).summary
        rows[name] = {
            "acceptance_ratio": summary.acceptance_ratio,
            "mean_latency_ms": summary.mean_latency_ms,
            "mean_cost_per_accepted": summary.mean_cost_per_accepted,
            "sla_violation_ratio": summary.sla_violation_ratio,
        }
    variant_names = list(rows.keys())
    return {
        "figure": "ablation_reward_weights",
        "x_label": "reward variant",
        "y_label": "metric value",
        "x": variant_names,
        "series": {
            metric: [rows[name][metric] for name in variant_names]
            for metric in (
                "acceptance_ratio",
                "mean_latency_ms",
                "mean_cost_per_accepted",
                "sla_violation_ratio",
            )
        },
    }


# --------------------------------------------------------------------------- #
# Ablation B — agent variants
# --------------------------------------------------------------------------- #
def figure_agent_ablation(
    config: Optional[ExperimentConfig] = None,
    variants: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Ablation B — DQN vs Double vs Dueling vs tabular Q on the same scenario."""
    config = config or ExperimentConfig.fast()
    variants = variants or ["dqn", "double", "dueling"]
    scenario = build_reference_scenario(config)

    results: Dict[str, Dict[str, float]] = {}
    for variant in variants:
        network = scenario.build_network()
        generator = scenario.build_generator(network)
        env = VNFPlacementEnv(
            network=network,
            generator=generator,
            catalog=scenario.catalog,
            config=config.manager_config().env,
        )
        agent = make_dqn_variant(
            variant,
            env.state_dim,
            env.num_actions,
            config=config.dqn_config(),
            seed=derive_seed(config.seed, "agent_ablation", variant),
        )
        trainer = Trainer(
            env,
            agent,
            TrainingConfig(
                num_episodes=config.training_episodes,
                evaluation_interval=max(5, config.training_episodes // 2),
                evaluation_episodes=2,
            ),
        )
        trainer.train()
        evaluation = trainer.evaluate(3)
        results[agent.name] = {
            "mean_reward": evaluation.mean_reward,
            "mean_acceptance": evaluation.mean_acceptance,
            "mean_latency_ms": evaluation.mean_latency_ms,
        }
    agent_names = list(results.keys())
    return {
        "figure": "ablation_agent_variants",
        "x_label": "agent variant",
        "y_label": "greedy evaluation metric",
        "x": agent_names,
        "series": {
            metric: [results[name][metric] for name in agent_names]
            for metric in ("mean_reward", "mean_acceptance", "mean_latency_ms")
        },
    }
