"""Shared runners used by the figure/table reproduction functions.

Policy evaluations fan out over worker processes via
:mod:`repro.experiments.parallel` — each policy simulates on its own fresh
substrate copy, so the runs are independent and their results identical to a
serial sweep.  Set ``REPRO_MAX_WORKERS=1`` (or pass ``max_workers=1``) to
force the serial path.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent
from repro.baselines import standard_baselines
from repro.core.env import EnvConfig
from repro.core.manager import VNFManager
from repro.core.reward import RewardConfig
from repro.core.state import EncoderConfig
from repro.core.subproc import make_vec_env
from repro.core.training import EvaluationResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import parallel_policy_comparison
from repro.serving.service import FallbackChain, OnlinePlacementService, ServingConfig
from repro.sim.arrivals import ArrivalProcess
from repro.sim.failures import (
    DomainFailureConfig,
    DomainFailureInjector,
    FailureConfig,
    fault_domains_from_network,
)
from repro.sim.simulation import (
    PlacementPolicy,
    SimulationConfig,
    SimulationResult,
)
from repro.utils.rng import RandomState, derive_seed
from repro.workloads.scenarios import Scenario, reference_scenario

#: Anything that speaks the batched acting protocol: a learning agent or a
#: lane-bindable placement policy.
BatchedPolicy = Union[Agent, PlacementPolicy]


def build_reference_scenario(
    config: ExperimentConfig, arrival_rate: Optional[float] = None
) -> Scenario:
    """The reference scenario at the experiment's scale and (optional) load."""
    return reference_scenario(
        arrival_rate=arrival_rate or config.reference_arrival_rate,
        num_edge_nodes=config.num_edge_nodes,
        horizon=config.evaluation_horizon,
        seed=config.seed,
    )


def train_manager(
    scenario: Scenario,
    config: ExperimentConfig,
    reward: Optional[RewardConfig] = None,
    verbose: bool = False,
) -> VNFManager:
    """Train a DQN-based manager on ``scenario`` with the experiment settings."""
    manager = VNFManager(
        scenario,
        config=config.manager_config(reward),
        seed=derive_seed(config.seed, "manager", scenario.name),
    )
    manager.train(verbose=verbose)
    return manager


def evaluate_policies(
    scenario: Scenario,
    policies: Sequence[PlacementPolicy],
    horizon: Optional[float] = None,
    max_workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run every policy over the scenario's trace on fresh substrate copies.

    Policies are simulated in parallel worker processes (one per policy, up to
    ``max_workers``); results keep the order of ``policies``.
    """
    requests = scenario.generate_requests(horizon=horizon)
    simulation_config = SimulationConfig(
        horizon=horizon or scenario.workload_config.horizon
    )
    return parallel_policy_comparison(
        network_factory=scenario.build_network,
        policies=list(policies),
        requests=requests,
        config=simulation_config,
        max_workers=max_workers,
    )


def evaluate_drl_and_baselines(
    scenario: Scenario,
    manager: VNFManager,
    config: ExperimentConfig,
    include_baselines: bool = True,
    max_workers: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Evaluate the trained DRL policy and the standard baselines.

    The DRL policy needs its encoder bound to the *same network object* the
    simulation mutates, so it is constructed per evaluation via a small
    adapter around :meth:`VNFManager.build_policy`.
    """
    requests = scenario.generate_requests()
    simulation_config = SimulationConfig(horizon=scenario.workload_config.horizon)
    results: Dict[str, SimulationResult] = {}

    # DRL policy: build network first, bind the policy to it, then simulate.
    from repro.sim.simulation import NFVSimulation

    drl_network = scenario.build_network()
    drl_policy = manager.build_policy(drl_network)
    drl_result = NFVSimulation(drl_network, drl_policy, simulation_config).run(requests)
    results[drl_policy.name] = drl_result

    if include_baselines:
        baselines = standard_baselines(seed=derive_seed(config.seed, "baselines"))
        baseline_results = parallel_policy_comparison(
            network_factory=scenario.build_network,
            policies=baselines,
            requests=requests,
            config=simulation_config,
            max_workers=max_workers,
        )
        for policy, result in zip(baselines, baseline_results):
            results[policy.name] = result
    return results


def evaluate_agent_across_scenarios(
    agent: BatchedPolicy,
    scenarios: Sequence[Scenario],
    episodes_per_scenario: int = 2,
    seed: RandomState = 0,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    encoder_config: Optional[EncoderConfig] = None,
    max_steps_per_episode: int = 2000,
    failure_config: Optional[FailureConfig] = None,
    env_workers: Optional[int] = None,
) -> List[EvaluationResult]:
    """Greedy-evaluate one batched policy over a scenario-diverse vec batch.

    Builds a vectorized environment with one lane per scenario (e.g. every
    load point of an arrival-rate sweep) and streams all lanes together, so
    the whole sweep is one batched decision loop instead of K serial
    evaluation runs.  Returns one :class:`EvaluationResult` per scenario,
    aggregated over ``episodes_per_scenario`` completed lane episodes.

    ``agent`` is anything speaking the batched acting protocol: a learning
    :class:`~repro.agents.base.Agent`, or a heuristic
    :class:`~repro.sim.simulation.PlacementPolicy` (it is bound to the lanes
    and — since heuristics decide from the live lane substrate — state
    encoding is skipped entirely, the lane fast path).  With a
    ``failure_config``, per-lane failure schedules are injected and the
    returned results carry the disruption statistics (an availability
    sweep).

    All scenarios must share the agent's observation and action space (same
    topology size); per-lane workload seeds are derived from ``seed``.

    With ``env_workers`` > 1 the lanes are sharded across that many worker
    processes behind shared memory (see
    :func:`~repro.core.subproc.make_vec_env`); trajectories — and therefore
    results — are identical to the in-process backend, heuristic policies
    included (their worker-side copies act on the live shard substrate).
    """
    if episodes_per_scenario <= 0:
        raise ValueError(
            f"episodes_per_scenario must be positive, got {episodes_per_scenario}"
        )
    # Heuristics plan against live per-lane substrate, which only the
    # reference lane core exposes; learning agents act purely on encoded
    # batches and take the SoA core whenever the lane set supports it.
    is_heuristic = isinstance(agent, PlacementPolicy)
    venv = make_vec_env(
        scenarios,
        seed=seed,
        env_config=env_config,
        reward_config=reward_config,
        encoder_config=encoder_config,
        failure_config=failure_config,
        workers=env_workers,
        backend="reference" if is_heuristic else "auto",
    )
    try:
        if is_heuristic:
            agent.bind_lanes(venv)
            agent.reset()
        observe = not is_heuristic
        # A policy remote-bound to a worker-backed env decides inside the
        # workers (which compute their shard masks locally), so fetching the
        # stacked masks here would be one wasted worker round-trip per step.
        skip_masks = is_heuristic and getattr(agent, "_remote_venv", None) is venv
        num_lanes = venv.num_lanes
        counts = np.zeros(num_lanes, dtype=int)
        lane_steps = np.zeros(num_lanes, dtype=int)
        per_lane: List[List[Dict[str, float]]] = [[] for _ in range(num_lanes)]
        states = venv.reset(observe=observe)
        while (counts < episodes_per_scenario).any():
            masks = None if skip_masks else venv.valid_action_masks()
            actions = agent.select_actions(states, masks, greedy=True)
            # Lean-step protocol: evaluation only reads finished-episode
            # stats, so no per-step info dicts are built (and the subproc
            # backend skips the info marshaling round entirely).
            states, _, dones, _ = venv.step(actions, observe=observe, info=False)
            lane_steps += 1
            lane_stats = None  # fetched once per step, only if a lane truncates
            for lane, done in enumerate(dones):
                truncated = lane_steps[lane] >= max_steps_per_episode
                if not done and not truncated:
                    continue
                if counts[lane] < episodes_per_scenario:
                    if done:
                        stats = venv.last_episode_stats(lane)
                    else:
                        if lane_stats is None:
                            lane_stats = venv.lane_stats()
                        stats = lane_stats[lane].as_dict()
                    per_lane[lane].append(stats)
                    counts[lane] += 1
                if truncated and not done:
                    states[lane] = venv.reset_lane(lane)
                lane_steps[lane] = 0
    finally:
        venv.close()
    return [
        EvaluationResult(
            mean_reward=float(np.mean([s["total_reward"] for s in stats_list])),
            mean_acceptance=float(
                np.mean([s["acceptance_ratio"] for s in stats_list])
            ),
            mean_latency_ms=float(
                np.mean([s["mean_latency_ms"] for s in stats_list])
            ),
            episodes=len(stats_list),
            mean_disrupted=float(
                np.mean([s.get("disrupted", 0) for s in stats_list])
            ),
        )
        for stats_list in per_lane
    ]


def evaluate_baseline_across_scenarios(
    policy: PlacementPolicy,
    scenarios: Sequence[Scenario],
    episodes_per_scenario: int = 2,
    seed: RandomState = 0,
    env_config: Optional[EnvConfig] = None,
    reward_config: Optional[RewardConfig] = None,
    failure_config: Optional[FailureConfig] = None,
    env_workers: Optional[int] = None,
) -> List[EvaluationResult]:
    """Evaluate one heuristic baseline over the same vec batch as an agent.

    Thin wrapper over :func:`evaluate_agent_across_scenarios` that gives the
    baseline lanes the serial admission semantics: the capacity-only action
    masks mirror ``hosting_candidates`` (no latency pre-mask — the policy
    proposes and the lane rejects SLA-infeasible chains at commit time,
    exactly like :class:`~repro.sim.simulation.NFVSimulation` does with
    :meth:`~repro.sim.simulation.PlacementPolicy.place`).  Pass the same
    ``reward_config`` used for the agent so the reward series of both are
    scored with identical weights.
    """
    env_config = env_config or EnvConfig()
    baseline_env_config = dataclass_replace(env_config, latency_mask_check=False)
    return evaluate_agent_across_scenarios(
        policy,
        scenarios,
        episodes_per_scenario=episodes_per_scenario,
        seed=seed,
        env_config=baseline_env_config,
        reward_config=reward_config,
        failure_config=failure_config,
        env_workers=env_workers,
    )


def vec_sweep_env_eval(
    manager: VNFManager,
    scenarios: Sequence[Scenario],
    config: ExperimentConfig,
    episodes_per_scenario: int = 2,
    baselines: Optional[Sequence[PlacementPolicy]] = None,
    failure_config: Optional[FailureConfig] = None,
    env_workers: Optional[int] = None,
) -> Dict[str, object]:
    """JSON-friendly scenario-diverse vec evaluation of a trained manager.

    One batched pass over all sweep points; the environment/reward/encoder
    configuration mirrors the manager's training environment so the numbers
    are comparable with its training-time evaluations.  With ``baselines``,
    each baseline policy is evaluated over an identically-seeded lane batch
    (fresh substrate copies per policy, same request streams) and reported
    under the ``"baselines"`` key; with a ``failure_config`` the whole sweep
    runs fault-injected and gains a ``"mean_disrupted"`` series.
    """
    seed = derive_seed(config.seed, "vec_env_eval")
    results = evaluate_agent_across_scenarios(
        manager.agent,
        scenarios,
        episodes_per_scenario=episodes_per_scenario,
        seed=seed,
        env_config=manager.config.env,
        reward_config=manager.config.reward,
        encoder_config=manager.config.encoder,
        failure_config=failure_config,
        env_workers=env_workers,
    )
    payload: Dict[str, object] = {
        "scenarios": [scenario.name for scenario in scenarios],
        "episodes_per_scenario": episodes_per_scenario,
        "mean_reward": [result.mean_reward for result in results],
        "acceptance_ratio": [result.mean_acceptance for result in results],
        "mean_latency_ms": [result.mean_latency_ms for result in results],
    }
    if failure_config is not None:
        payload["mean_disrupted"] = [result.mean_disrupted for result in results]
    if baselines:
        baseline_payload: Dict[str, Dict[str, List[float]]] = {}
        for policy in baselines:
            baseline_results = evaluate_baseline_across_scenarios(
                policy,
                scenarios,
                episodes_per_scenario=episodes_per_scenario,
                seed=seed,
                env_config=manager.config.env,
                reward_config=manager.config.reward,
                failure_config=failure_config,
                env_workers=env_workers,
            )
            entry = {
                "mean_reward": [r.mean_reward for r in baseline_results],
                "acceptance_ratio": [r.mean_acceptance for r in baseline_results],
                "mean_latency_ms": [r.mean_latency_ms for r in baseline_results],
            }
            if failure_config is not None:
                entry["mean_disrupted"] = [
                    r.mean_disrupted for r in baseline_results
                ]
            baseline_payload[policy.name] = entry
        payload["baselines"] = baseline_payload
    return payload


def availability_sweep(
    manager: VNFManager,
    scenario: Scenario,
    config: ExperimentConfig,
    mean_times_to_failure: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
    mean_time_to_repair: float = 25.0,
    lanes_per_point: int = 2,
    episodes_per_scenario: int = 1,
    baselines: Optional[Sequence[PlacementPolicy]] = None,
) -> Dict[str, object]:
    """Fault-tolerance sweep over failure intensity, all through vec lanes.

    For each mean-time-to-failure point the trained agent (and optionally
    every baseline) is evaluated on ``lanes_per_point`` fault-injected lanes
    of the scenario in one batched pass.  Returns index-aligned series of
    acceptance, latency and disruptions per MTTF point, plus the model's
    steady-state availability at each point.
    """
    if lanes_per_point <= 0:
        raise ValueError(f"lanes_per_point must be positive, got {lanes_per_point}")
    points: List[FailureConfig] = [
        FailureConfig(
            mean_time_to_failure=mttf, mean_time_to_repair=mean_time_to_repair
        )
        for mttf in mean_times_to_failure
    ]
    series: Dict[str, Dict[str, List[float]]] = {}

    def accumulate(name: str, results: List[EvaluationResult]) -> None:
        entry = series.setdefault(
            name,
            {"acceptance_ratio": [], "mean_latency_ms": [], "mean_disrupted": []},
        )
        entry["acceptance_ratio"].append(
            float(np.mean([r.mean_acceptance for r in results]))
        )
        entry["mean_latency_ms"].append(
            float(np.mean([r.mean_latency_ms for r in results]))
        )
        entry["mean_disrupted"].append(
            float(np.mean([r.mean_disrupted for r in results]))
        )

    drl_name = f"drl_{manager.agent.name}"
    for failure_config in points:
        seed = derive_seed(
            config.seed, "availability", failure_config.mean_time_to_failure
        )
        accumulate(
            drl_name,
            evaluate_agent_across_scenarios(
                manager.agent,
                [scenario] * lanes_per_point,
                episodes_per_scenario=episodes_per_scenario,
                seed=seed,
                env_config=manager.config.env,
                reward_config=manager.config.reward,
                encoder_config=manager.config.encoder,
                failure_config=failure_config,
            ),
        )
        for policy in baselines or ():
            accumulate(
                policy.name,
                evaluate_baseline_across_scenarios(
                    policy,
                    [scenario] * lanes_per_point,
                    episodes_per_scenario=episodes_per_scenario,
                    seed=seed,
                    env_config=manager.config.env,
                    reward_config=manager.config.reward,
                    failure_config=failure_config,
                ),
            )
    return {
        "scenario": scenario.name,
        "mean_times_to_failure": list(mean_times_to_failure),
        "mean_time_to_repair": mean_time_to_repair,
        "steady_state_availability": [
            point.steady_state_availability for point in points
        ],
        "lanes_per_point": lanes_per_point,
        "series": series,
    }


def run_serving_soak(
    scenario: Scenario,
    chain: FallbackChain,
    serving_config: ServingConfig,
    domain_config: Optional[DomainFailureConfig] = None,
    arrival_process: Optional[ArrivalProcess] = None,
):
    """Replay a scenario's trace through the online serving loop.

    Builds a fresh substrate, wires the fallback ``chain`` and (with a
    ``domain_config``) correlated fault-domain chaos into an
    :class:`~repro.serving.service.OnlinePlacementService`, and streams the
    scenario's request trace through it lazily — the trace is never
    materialized, so the soak is memory-flat at any horizon.  Returns the
    :class:`~repro.serving.report.ServingReport`.
    """
    network = scenario.build_network()
    chaos = None
    if domain_config is not None:
        chaos = DomainFailureInjector(
            fault_domains_from_network(network), domain_config
        )
    service = OnlinePlacementService(network, chain, serving_config, chaos=chaos)
    generator = scenario.build_generator()
    stream = generator.iter_trace(
        arrival_process=arrival_process or scenario.build_arrival_process(),
        horizon=serving_config.horizon,
    )
    return service.run(stream)


def results_to_rows(results: Dict[str, SimulationResult]) -> List[Dict[str, object]]:
    """Flatten named simulation results into table rows."""
    rows: List[Dict[str, object]] = []
    for name, result in results.items():
        summary = result.summary
        rows.append(
            {
                "policy": name,
                "acceptance_ratio": round(summary.acceptance_ratio, 4),
                "mean_latency_ms": round(summary.mean_latency_ms, 3),
                "sla_violation_ratio": round(summary.sla_violation_ratio, 4),
                "total_cost": round(summary.total_cost, 2),
                "total_revenue": round(summary.total_revenue, 2),
                "profit": round(summary.profit, 2),
                "mean_edge_utilization": round(summary.mean_edge_utilization, 4),
                "utilization_imbalance": round(summary.mean_utilization_imbalance, 4),
            }
        )
    return rows
