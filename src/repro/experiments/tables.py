"""Per-table reproduction functions (Table I and Table II)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_reference_scenario,
    evaluate_drl_and_baselines,
    results_to_rows,
    train_manager,
)
from repro.nfv.catalog import default_catalog, default_chain_templates


def table_simulation_settings(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Table I — the simulation settings of the reference scenario.

    This is the static "parameters" table every simulation paper includes; it
    is generated from the actual objects (topology config, VNF catalog, chain
    templates) rather than hand-written so it can never drift from the code.
    """
    config = config or ExperimentConfig.paper()
    scenario = build_reference_scenario(config)
    network = scenario.build_network()
    catalog = default_catalog()
    templates = default_chain_templates()

    vnf_rows: List[Dict[str, object]] = [
        {
            "vnf": vnf.name,
            "cpu": vnf.base_demand.cpu,
            "memory_gb": vnf.base_demand.memory,
            "cpu_per_mbps": vnf.demand_per_mbps.cpu,
            "processing_delay_ms": vnf.processing_delay_ms,
        }
        for vnf in catalog.types()
    ]
    chain_rows: List[Dict[str, object]] = [
        {
            "service_class": template.name,
            "chain": " -> ".join(template.vnf_sequence),
            "bandwidth_mbps": list(template.bandwidth_range),
            "latency_sla_ms": list(template.latency_sla_range_ms),
            "mean_holding_time": template.mean_holding_time,
            "weight": template.weight,
        }
        for template in templates
    ]
    return {
        "table": "table1_simulation_settings",
        "topology": {
            "edge_nodes": len(network.edge_node_ids),
            "cloud_nodes": len(network.cloud_node_ids),
            "links": network.num_links,
            "total_edge_capacity": network.total_capacity().as_dict(),
        },
        "workload": {
            "arrival_process": scenario.arrival_kind,
            "reference_arrival_rate": config.reference_arrival_rate,
            "horizon": config.evaluation_horizon,
        },
        "training": {
            "episodes": config.training_episodes,
            "requests_per_episode": config.requests_per_episode,
            "hidden_layers": list(config.hidden_layers),
        },
        "vnf_catalog": vnf_rows,
        "chain_templates": chain_rows,
    }


def table_summary_comparison(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, object]:
    """Table II — summary comparison of all policies at the reference load."""
    config = config or ExperimentConfig.fast()
    scenario = build_reference_scenario(config)
    manager = train_manager(scenario, config)
    results = evaluate_drl_and_baselines(scenario, manager, config)
    rows = results_to_rows(results)
    rows.sort(key=lambda row: row["acceptance_ratio"], reverse=True)
    return {
        "table": "table2_summary_comparison",
        "arrival_rate": config.reference_arrival_rate,
        "num_edge_nodes": config.num_edge_nodes,
        "rows": rows,
    }
