"""Experiment harness: figure and table reproduction.

``figure_*`` / ``table_*`` functions recompute one artifact of the
reconstructed evaluation from an :class:`ExperimentConfig` preset
(``smoke`` / ``fast`` / ``paper``).  Policy evaluations fan out over worker
processes via :mod:`repro.experiments.parallel`, and completed payloads can
be memoized on disk with :class:`ResultCache` (keyed by a hash of the
configuration), so re-running an unchanged experiment is free.

>>> from repro.experiments import ExperimentConfig, figure_utilization
>>> data = figure_utilization(ExperimentConfig.smoke())
>>> sorted(data["series"])
['acceptance_ratio', 'mean_edge_utilization', 'utilization_imbalance']
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure_acceptance_vs_arrival,
    figure_acceptance_vs_edges,
    figure_agent_ablation,
    figure_cost_vs_arrival,
    figure_latency_vs_arrival,
    figure_reward_ablation,
    figure_sla_sensitivity,
    figure_training_convergence,
    figure_utilization,
)
from repro.experiments.parallel import (
    ResultCache,
    config_hash,
    derive_worker_seeds,
    parallel_policy_comparison,
    run_parallel,
)
from repro.experiments.reporting import (
    format_series,
    format_table,
    print_figure,
    print_table,
)
from repro.experiments.runner import (
    build_reference_scenario,
    evaluate_drl_and_baselines,
    evaluate_policies,
    results_to_rows,
    train_manager,
)
from repro.experiments.stats import (
    MetricSummary,
    compare_policies,
    replicate,
    summarize_metric,
    summarize_replications,
)
from repro.experiments.tables import table_simulation_settings, table_summary_comparison

__all__ = [
    "ExperimentConfig",
    "figure_acceptance_vs_arrival",
    "figure_acceptance_vs_edges",
    "figure_agent_ablation",
    "figure_cost_vs_arrival",
    "figure_latency_vs_arrival",
    "figure_reward_ablation",
    "figure_sla_sensitivity",
    "figure_training_convergence",
    "figure_utilization",
    "ResultCache",
    "config_hash",
    "derive_worker_seeds",
    "parallel_policy_comparison",
    "run_parallel",
    "format_series",
    "format_table",
    "print_figure",
    "print_table",
    "build_reference_scenario",
    "evaluate_drl_and_baselines",
    "evaluate_policies",
    "results_to_rows",
    "train_manager",
    "MetricSummary",
    "compare_policies",
    "replicate",
    "summarize_metric",
    "summarize_replications",
    "table_simulation_settings",
    "table_summary_comparison",
]
