"""Configuration of the reproduction experiments.

Two presets are provided:

* :meth:`ExperimentConfig.paper` — the full-scale settings matching the
  reconstructed evaluation (16 edge nodes, hundreds of training episodes,
  dense sweeps).  Running every figure at this scale takes a few hours on a
  laptop.
* :meth:`ExperimentConfig.fast` — a scaled-down preset used by the pytest
  benchmarks and CI: the same code paths and the same qualitative shapes, at
  a fraction of the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.agents.dqn import DQNConfig
from repro.core.env import EnvConfig
from repro.core.manager import ManagerConfig
from repro.core.reward import RewardConfig
from repro.core.training import TrainingConfig
from repro.utils.validation import check_positive


@dataclass
class ExperimentConfig:
    """Shared knobs of the experiment harness."""

    num_edge_nodes: int = 16
    training_episodes: int = 200
    requests_per_episode: int = 50
    hidden_layers: Sequence[int] = (128, 128)
    evaluation_horizon: float = 600.0
    arrival_rates: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2)
    edge_node_sweep: Sequence[int] = (8, 12, 16, 24, 32)
    sla_scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0)
    reference_arrival_rate: float = 0.8
    seed: int = 0
    epsilon_decay_steps: int = 20_000

    def __post_init__(self) -> None:
        check_positive(self.num_edge_nodes, "num_edge_nodes")
        check_positive(self.training_episodes, "training_episodes")
        check_positive(self.requests_per_episode, "requests_per_episode")
        check_positive(self.evaluation_horizon, "evaluation_horizon")
        check_positive(self.reference_arrival_rate, "reference_arrival_rate")
        if not self.arrival_rates:
            raise ValueError("arrival_rates must not be empty")
        if not self.edge_node_sweep:
            raise ValueError("edge_node_sweep must not be empty")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Full-scale settings (hours of laptop time across all figures)."""
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """Scaled-down settings used by the pytest benchmarks.

        Sweeps keep at least three points so crossover shapes remain visible;
        network and training sizes are reduced by roughly an order of
        magnitude.
        """
        return cls(
            num_edge_nodes=8,
            training_episodes=60,
            requests_per_episode=30,
            hidden_layers=(64, 64),
            evaluation_horizon=200.0,
            arrival_rates=(0.4, 0.8, 1.2),
            edge_node_sweep=(6, 10, 14),
            sla_scales=(0.5, 1.0, 2.0),
            reference_arrival_rate=1.0,
            seed=0,
            epsilon_decay_steps=5000,
        )

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Minimal settings for unit tests: seconds, not minutes."""
        return cls(
            num_edge_nodes=6,
            training_episodes=4,
            requests_per_episode=8,
            hidden_layers=(16, 16),
            evaluation_horizon=60.0,
            arrival_rates=(0.5, 1.0),
            edge_node_sweep=(4, 6),
            sla_scales=(0.5, 1.5),
            reference_arrival_rate=0.8,
            seed=0,
            epsilon_decay_steps=300,
        )

    # ------------------------------------------------------------------ #
    # Derived configurations
    # ------------------------------------------------------------------ #
    def manager_config(self, reward: RewardConfig | None = None) -> ManagerConfig:
        """The :class:`ManagerConfig` implied by this experiment preset."""
        return ManagerConfig(
            training=TrainingConfig(
                num_episodes=self.training_episodes,
                evaluation_interval=max(5, self.training_episodes // 4),
                evaluation_episodes=2,
            ),
            env=EnvConfig(requests_per_episode=self.requests_per_episode),
            reward=reward or RewardConfig(),
            dqn=DQNConfig(
                hidden_layers=tuple(self.hidden_layers),
                epsilon_decay_steps=self.epsilon_decay_steps,
                min_replay_size=min(500, self.requests_per_episode * 10),
                batch_size=min(64, max(16, self.requests_per_episode)),
            ),
        )

    def dqn_config(self) -> DQNConfig:
        """A stand-alone DQN configuration matching :meth:`manager_config`."""
        return self.manager_config().dqn
