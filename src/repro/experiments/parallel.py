"""Parallel experiment execution and on-disk result caching.

The figure/table reproductions are embarrassingly parallel at two levels:
independent policies evaluated over the same trace, and independent
replications/sweep points.  This module provides

* :func:`run_parallel` — an ordered ``map`` over a :class:`ProcessPoolExecutor`
  that degrades gracefully to a serial loop (single worker requested, a single
  task, or un-picklable work),
* :func:`parallel_policy_comparison` — the parallel counterpart of
  :func:`repro.sim.simulation.run_policy_comparison`,
* :func:`derive_worker_seeds` — per-task seeds derived with
  :func:`repro.utils.rng.derive_seed` so results are reproducible regardless
  of worker scheduling, and
* :class:`ResultCache` — a JSON cache keyed by a stable hash of the
  experiment configuration, so re-running a benchmark with unchanged settings
  is free.

Environment knobs
-----------------
``REPRO_MAX_WORKERS``
    Default worker count for all parallel entry points (``1`` forces serial).
``REPRO_CACHE_DIR``
    Default directory of :class:`ResultCache` instances created without an
    explicit path.
``REPRO_NO_CACHE``
    Set to ``1`` to disable cache reads/writes without touching call sites.

Example
-------
>>> from repro.experiments.parallel import ResultCache, run_parallel
>>> squares = run_parallel(pow, [(i, 2) for i in range(4)], max_workers=2)
>>> cache = ResultCache()
>>> data, hit = cache.get_or_compute("fig2", config, lambda: slow_figure(config))
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.simulation import (
    NFVSimulation,
    PlacementPolicy,
    SimulationConfig,
    SimulationResult,
)
from repro.utils.rng import RandomState, derive_seed
from repro.utils.serialization import to_jsonable

__all__ = [
    "ResultCache",
    "config_hash",
    "default_max_workers",
    "derive_worker_seeds",
    "parallel_policy_comparison",
    "run_parallel",
]


# --------------------------------------------------------------------------- #
# Worker-count resolution
# --------------------------------------------------------------------------- #
def default_max_workers() -> int:
    """Worker count from ``REPRO_MAX_WORKERS``, else the CPU count."""
    env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def derive_worker_seeds(base_seed: RandomState, labels: Sequence[object]) -> List[int]:
    """One deterministic seed per task label.

    Deriving seeds from ``(base_seed, label)`` rather than a shared generator
    makes each task's randomness independent of how tasks are scheduled across
    workers, so parallel and serial runs produce identical results.
    """
    return [derive_seed(base_seed, label) for label in labels]


# --------------------------------------------------------------------------- #
# Ordered parallel map
# --------------------------------------------------------------------------- #
def _call_star(payload: Tuple[Callable, tuple]) -> Any:
    fn, args = payload
    return fn(*args)


def _mark_pool_worker() -> None:
    """Pool-worker initializer: flag the process as a worker.

    :func:`repro.core.subproc.make_vec_env` reads this flag (and the process
    parentage) and degrades subprocess environments to the in-process
    backend — a task already running inside the experiment pool must not
    spawn a second tier of environment workers and oversubscribe the
    machine.
    """
    from repro.core.subproc import POOL_WORKER_ENV

    os.environ[POOL_WORKER_ENV] = "1"


def run_parallel(
    fn: Callable,
    tasks: Sequence[tuple],
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Apply ``fn`` to each argument tuple in ``tasks``; results keep order.

    Runs on a :class:`ProcessPoolExecutor` with ``max_workers`` processes
    (default :func:`default_max_workers`).  Falls back to a plain serial loop
    when one worker is requested, there is at most one task, or the work is
    not picklable — so callers never need a separate serial code path.
    """
    tasks = list(tasks)
    workers = max_workers if max_workers is not None else default_max_workers()
    workers = min(max(1, int(workers)), max(1, len(tasks)))
    if workers <= 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    payloads = [(fn, tuple(args)) for args in tasks]
    try:
        # Cheap picklability probe on one payload; tasks are homogeneous, so
        # probing them all would serialize the dominant data twice.  The
        # catch is narrowed to the ways pickling actually refuses an object
        # (lambdas/local functions raise PicklingError or AttributeError,
        # code/file handles raise TypeError); fn is not called inside the
        # try, so no real worker error can be swallowed here.
        pickle.dumps(payloads[0])
    except (TypeError, AttributeError, NotImplementedError, pickle.PicklingError):
        return [fn(*args) for args in tasks]
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_mark_pool_worker
        ) as pool:
            return list(pool.map(_call_star, payloads))
    except (OSError, BrokenProcessPool, pickle.PicklingError):
        # Sandboxes without process spawning, reaped workers, or pickling
        # failures the probe missed degrade to the serial loop.  Exceptions
        # raised by ``fn`` itself propagate unchanged.
        return [fn(*args) for args in tasks]


# --------------------------------------------------------------------------- #
# Parallel policy comparison
# --------------------------------------------------------------------------- #
def _simulate_policy(
    network_factory: Callable,
    policy: PlacementPolicy,
    requests: Sequence,
    config: Optional[SimulationConfig],
) -> SimulationResult:
    network = network_factory()
    return NFVSimulation(network, policy, config).run(list(requests))


def parallel_policy_comparison(
    network_factory: Callable,
    policies: Sequence[PlacementPolicy],
    requests: Sequence,
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Evaluate several policies on identical traces, one process per policy.

    The parallel counterpart of
    :func:`repro.sim.simulation.run_policy_comparison`: ``network_factory`` is
    called once per policy inside its worker, so allocations made by one
    policy can never leak into another policy's run.  Results are returned in
    the order of ``policies``.
    """
    # One shared trace tuple: pickling hands each worker its own copy, and
    # _simulate_policy re-lists it, so per-policy copies here would be waste.
    trace = tuple(requests)
    tasks = [(network_factory, policy, trace, config) for policy in policies]
    return run_parallel(_simulate_policy, tasks, max_workers=max_workers)


# --------------------------------------------------------------------------- #
# On-disk result cache
# --------------------------------------------------------------------------- #
def config_hash(*objects: Any) -> str:
    """A stable hex digest of arbitrary configuration objects.

    Objects are converted with :func:`repro.utils.serialization.to_jsonable`
    (dataclasses become field dicts) and serialized with sorted keys, so the
    digest depends only on configuration *values* — not object identity,
    insertion order or process.  Objects that fall back to the default
    ``object.__repr__`` (which embeds a memory address and would make the
    digest differ per process) are rejected with :class:`ValueError` — pass
    dataclasses, dicts or other JSON-representable values instead.
    """
    canonical = json.dumps(to_jsonable(list(objects)), sort_keys=True)
    if re.search(r" object at 0x[0-9a-fA-F]+", canonical):
        raise ValueError(
            "config objects must have a value-based representation "
            "(dataclass, dict, sequence or scalar); got a default object "
            f"repr in {canonical[:120]!r}"
        )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ResultCache:
    """JSON result cache keyed by experiment name + configuration hash.

    Entries live under ``directory`` as ``<name>-<hash>.json``.  The cache is
    content-addressed: any change to the configuration changes the key, so a
    stale entry can never be returned for new settings.  Set ``REPRO_NO_CACHE=1``
    to turn every lookup into a miss (and every store into a no-op).
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        if directory is None:
            directory = os.environ.get(
                "REPRO_CACHE_DIR",
                os.path.join(os.path.expanduser("~"), ".cache", "repro-experiments"),
            )
        self.directory = Path(directory)

    @property
    def enabled(self) -> bool:
        """False when ``REPRO_NO_CACHE=1`` is set in the environment."""
        return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("1", "true", "yes")

    def path_for(self, name: str, *config: Any) -> Path:
        """The on-disk path for ``name`` under configuration ``config``."""
        return self.directory / f"{name}-{config_hash(*config)}.json"

    def load(self, name: str, *config: Any) -> Optional[Dict]:
        """The cached payload, or ``None`` on a miss/disabled cache."""
        if not self.enabled:
            return None
        path = self.path_for(name, *config)
        if not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def store(self, name: str, data: Dict, *config: Any) -> Optional[Path]:
        """Persist ``data`` for ``name``/``config``; returns the path written.

        The write is atomic (temp file in the same directory, then
        ``os.replace``): concurrent sweep workers storing the same key race
        harmlessly — a reader only ever sees a complete payload, never torn
        JSON from an in-progress write.
        """
        if not self.enabled:
            return None
        path = self.path_for(name, *config)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp_path = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with temp_path.open("w", encoding="utf-8") as handle:
                json.dump(to_jsonable(data), handle, indent=2)
            os.replace(temp_path, path)
        finally:
            if temp_path.exists():
                temp_path.unlink()
        return path

    def get_or_compute(
        self, name: str, config: Any, compute: Callable[[], Dict]
    ) -> Tuple[Dict, bool]:
        """Return ``(payload, was_cache_hit)``, computing and storing on miss."""
        cached = self.load(name, config)
        if cached is not None:
            return cached, True
        data = compute()
        self.store(name, data, config)
        return data, False

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
