"""Plain-text rendering of figure series and table rows.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output readable without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) or list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    divider = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered_rows
    )
    return f"{header}\n{divider}\n{body}"


def format_series(figure_data: Mapping[str, object], precision: int = 4) -> str:
    """Render a ``figure_*`` result as an x-by-series text table."""
    x_values = list(figure_data.get("x", []))
    series: Dict[str, List[float]] = dict(figure_data.get("series", {}))
    rows: List[Dict[str, object]] = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {str(figure_data.get("x_label", "x")): x}
        for name, values in series.items():
            if index < len(values):
                row[name] = _round(values[index], precision)
        rows.append(row)
    title = figure_data.get("figure", "figure")
    return f"== {title} ==\n" + format_table(rows)


def print_figure(figure_data: Mapping[str, object]) -> None:
    """Print a figure's series to stdout (used by the benchmark harness)."""
    print(format_series(figure_data))


def print_table(table_data: Mapping[str, object]) -> None:
    """Print a table's rows to stdout (used by the benchmark harness)."""
    title = table_data.get("table", "table")
    rows = table_data.get("rows")
    print(f"== {title} ==")
    if isinstance(rows, list) and rows:
        print(format_table(rows))
    else:
        for key, value in table_data.items():
            if key == "table":
                continue
            print(f"{key}: {value}")


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _round(value: object, precision: int) -> object:
    if isinstance(value, float):
        return round(value, precision)
    return value
