"""Multi-seed replication and summary statistics for experiment results.

Single-seed simulation results are noisy; the paper-style figures report the
mean over several independent replications.  This module provides

* :func:`replicate` — run an experiment function over several seeds and
  collect per-seed scalar metrics,
* :func:`summarize_replications` — mean / standard deviation / 95% confidence
  intervals per metric, and
* :func:`compare_policies` — pairwise mean differences with confidence
  intervals, the statistic behind "policy A beats policy B" claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread and confidence interval of one scalar metric."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    samples: int

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view."""
        return {
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "samples": self.samples,
        }


def replicate(
    experiment: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> List[Dict[str, float]]:
    """Run ``experiment(seed)`` for every seed and collect its metric dicts.

    The experiment callable receives a seed and returns a flat mapping of
    metric name to scalar value (e.g. the dict of a
    :class:`~repro.sim.metrics.MetricsSummary`).
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    results: List[Dict[str, float]] = []
    for seed in seeds:
        outcome = experiment(int(seed))
        results.append({key: float(value) for key, value in outcome.items()
                        if isinstance(value, (int, float)) and not isinstance(value, bool)})
    return results


def summarize_metric(values: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Mean, std and a t-based confidence interval for one metric."""
    check_positive(confidence, "confidence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty metric series")
    mean = float(data.mean())
    if data.size == 1:
        return MetricSummary(mean=mean, std=0.0, ci_low=mean, ci_high=mean, samples=1)
    std = float(data.std(ddof=1))
    sem = std / np.sqrt(data.size)
    margin = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1) * sem)
    return MetricSummary(
        mean=mean,
        std=std,
        ci_low=mean - margin,
        ci_high=mean + margin,
        samples=int(data.size),
    )


def summarize_replications(
    replications: Sequence[Mapping[str, float]], confidence: float = 0.95
) -> Dict[str, MetricSummary]:
    """Per-metric summaries over a list of per-seed metric dictionaries."""
    if not replications:
        raise ValueError("at least one replication is required")
    metrics = sorted(set().union(*(r.keys() for r in replications)))
    summaries: Dict[str, MetricSummary] = {}
    for metric in metrics:
        values = [r[metric] for r in replications if metric in r]
        summaries[metric] = summarize_metric(values, confidence)
    return summaries


def compare_policies(
    per_policy_replications: Mapping[str, Sequence[Mapping[str, float]]],
    metric: str,
    confidence: float = 0.95,
) -> List[Dict[str, object]]:
    """Pairwise comparison of policies on one metric.

    Returns one row per ordered pair (a, b) with the mean difference
    ``mean(a) - mean(b)`` and a Welch confidence interval; a pair whose
    interval excludes zero is a statistically meaningful win/loss.
    """
    names = list(per_policy_replications.keys())
    rows: List[Dict[str, object]] = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            a = np.array([r[metric] for r in per_policy_replications[first]], dtype=float)
            b = np.array([r[metric] for r in per_policy_replications[second]], dtype=float)
            difference = float(a.mean() - b.mean())
            if a.size > 1 and b.size > 1:
                sem = np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
                df = max(1.0, min(a.size, b.size) - 1)
                margin = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=df) * sem)
            else:
                margin = float("inf")
            rows.append(
                {
                    "first": first,
                    "second": second,
                    "metric": metric,
                    "mean_difference": difference,
                    "ci_low": difference - margin,
                    "ci_high": difference + margin,
                    "significant": (difference - margin > 0) or (difference + margin < 0),
                }
            )
    return rows
