"""Command-line interface for the experiment harness.

Run any reproduced table or figure without writing Python::

    python -m repro.experiments.cli list
    python -m repro.experiments.cli run fig2 --preset fast
    python -m repro.experiments.cli run table2 --preset smoke --output results/table2.json
    python -m repro.experiments.cli run all --preset fast --output-dir results/

The ``fast`` preset matches the pytest benchmarks; ``paper`` runs the
full-scale settings; ``smoke`` finishes in seconds and exists for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure_acceptance_vs_arrival,
    figure_acceptance_vs_edges,
    figure_agent_ablation,
    figure_cost_vs_arrival,
    figure_latency_vs_arrival,
    figure_reward_ablation,
    figure_sla_sensitivity,
    figure_training_convergence,
    figure_utilization,
)
from repro.experiments.reporting import print_figure, print_table
from repro.experiments.tables import table_simulation_settings, table_summary_comparison
from repro.utils.serialization import save_json

#: Experiment id -> (runner, kind) registry used by ``run`` and ``list``.
EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "table1": {
        "runner": table_simulation_settings,
        "kind": "table",
        "description": "Table I — simulation settings",
    },
    "table2": {
        "runner": table_summary_comparison,
        "kind": "table",
        "description": "Table II — policy comparison at reference load",
    },
    "fig1": {
        "runner": figure_training_convergence,
        "kind": "figure",
        "description": "Fig. 1 — training convergence",
    },
    "fig2": {
        "runner": figure_acceptance_vs_arrival,
        "kind": "figure",
        "description": "Fig. 2 — acceptance ratio vs arrival rate",
    },
    "fig3": {
        "runner": figure_latency_vs_arrival,
        "kind": "figure",
        "description": "Fig. 3 — mean latency vs arrival rate",
    },
    "fig4": {
        "runner": figure_cost_vs_arrival,
        "kind": "figure",
        "description": "Fig. 4 — cost per accepted request vs arrival rate",
    },
    "fig5": {
        "runner": figure_acceptance_vs_edges,
        "kind": "figure",
        "description": "Fig. 5 — acceptance ratio vs number of edge nodes",
    },
    "fig6": {
        "runner": figure_sla_sensitivity,
        "kind": "figure",
        "description": "Fig. 6 — sensitivity to SLA strictness",
    },
    "fig7": {
        "runner": figure_utilization,
        "kind": "figure",
        "description": "Fig. 7 — edge utilization and load balance",
    },
    "ablation-reward": {
        "runner": figure_reward_ablation,
        "kind": "figure",
        "description": "Ablation A — reward-weight variants",
    },
    "ablation-agents": {
        "runner": figure_agent_ablation,
        "kind": "figure",
        "description": "Ablation B — DQN variants",
    },
}


def resolve_config(preset: str) -> ExperimentConfig:
    """Map a preset name to an :class:`ExperimentConfig`."""
    presets: Dict[str, Callable[[], ExperimentConfig]] = {
        "paper": ExperimentConfig.paper,
        "fast": ExperimentConfig.fast,
        "smoke": ExperimentConfig.smoke,
    }
    if preset not in presets:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(presets)}")
    return presets[preset]()


def run_experiment(
    experiment_id: str,
    config: ExperimentConfig,
    output: Optional[Path] = None,
    quiet: bool = False,
) -> Dict[str, object]:
    """Run one experiment, print its result, optionally persist JSON."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    entry = EXPERIMENTS[experiment_id]
    # perf_counter, not time.time: wall clock is not monotonic (NTP slews
    # can make a short run report negative or wildly wrong durations).
    start = time.perf_counter()
    data = entry["runner"](config)
    elapsed = time.perf_counter() - start
    if not quiet:
        if entry["kind"] == "table":
            print_table(data)
        else:
            print_figure(data)
        print(f"[{experiment_id}] completed in {elapsed:.1f}s")
    if output is not None:
        save_json(data, output)
        if not quiet:
            print(f"[{experiment_id}] wrote {output}")
    return data


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description="Reproduce the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (see 'list'), or 'all'")
    run_parser.add_argument(
        "--preset", default="fast", choices=("paper", "fast", "smoke"),
        help="experiment scale preset",
    )
    run_parser.add_argument("--output", type=Path, default=None, help="write JSON result here")
    run_parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="with 'all': directory receiving one JSON file per experiment",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress table/series output")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, entry in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {entry['description']}")
        return 0

    config = resolve_config(args.preset)
    if args.experiment == "all":
        for key in EXPERIMENTS:
            output = None
            if args.output_dir is not None:
                output = Path(args.output_dir) / f"{key}.json"
            run_experiment(key, config, output=output, quiet=args.quiet)
        return 0

    try:
        run_experiment(args.experiment, config, output=args.output, quiet=args.quiet)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
