"""Stochastic arrival processes for SFC requests.

Three processes cover the evaluation regimes:

* :class:`PoissonProcess` — the standard memoryless arrival model, swept over
  rates for the load experiments.
* :class:`MMPPProcess` — a Markov-modulated Poisson process that alternates
  between a low-rate and a high-rate phase, producing bursty arrivals.
* :class:`DiurnalProcess` — a non-homogeneous Poisson process whose rate
  follows a sinusoidal day/night profile, the classic operator traffic shape.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional

from repro.utils.rng import RandomState, exponential_sample, new_rng
from repro.utils.validation import check_non_negative, check_positive


class ArrivalProcess(ABC):
    """Interface of all arrival processes: a generator of arrival times."""

    @abstractmethod
    def arrival_times(self, horizon: float) -> Iterator[float]:
        """Yield arrival times in increasing order until ``horizon``."""

    def arrivals_until(self, horizon: float) -> List[float]:
        """Materialize all arrival times up to ``horizon``."""
        return list(self.arrival_times(horizon))

    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run average arrival rate (requests per time unit)."""


class PoissonProcess(ArrivalProcess):
    """A homogeneous Poisson process with rate ``rate`` (requests / time unit)."""

    def __init__(self, rate: float, seed: RandomState = None) -> None:
        check_positive(rate, "rate")
        self.rate = rate
        self._rng = new_rng(seed)

    def arrival_times(self, horizon: float) -> Iterator[float]:
        check_non_negative(horizon, "horizon")
        time = 0.0
        while True:
            time += float(exponential_sample(self._rng, self.rate))
            if time > horizon:
                return
            yield time

    def mean_rate(self) -> float:
        return self.rate


class MMPPProcess(ArrivalProcess):
    """A two-phase Markov-modulated Poisson process.

    The process alternates between a "calm" phase with rate ``low_rate`` and
    a "burst" phase with rate ``high_rate``.  Phase durations are exponential
    with means ``mean_low_duration`` and ``mean_high_duration``.
    """

    def __init__(
        self,
        low_rate: float,
        high_rate: float,
        mean_low_duration: float = 200.0,
        mean_high_duration: float = 50.0,
        seed: RandomState = None,
    ) -> None:
        check_positive(low_rate, "low_rate")
        check_positive(high_rate, "high_rate")
        check_positive(mean_low_duration, "mean_low_duration")
        check_positive(mean_high_duration, "mean_high_duration")
        if high_rate < low_rate:
            raise ValueError("high_rate must be >= low_rate")
        self.low_rate = low_rate
        self.high_rate = high_rate
        self.mean_low_duration = mean_low_duration
        self.mean_high_duration = mean_high_duration
        self._rng = new_rng(seed)

    def arrival_times(self, horizon: float) -> Iterator[float]:
        check_non_negative(horizon, "horizon")
        time = 0.0
        in_burst = False
        phase_end = float(
            exponential_sample(self._rng, 1.0 / self.mean_low_duration)
        )
        while time <= horizon:
            rate = self.high_rate if in_burst else self.low_rate
            candidate = time + float(exponential_sample(self._rng, rate))
            # A candidate drawn at this phase's rate is only valid inside the
            # phase.  When it crosses the boundary, restart the residual draw
            # *from the boundary* at the next phase's rate (truncating an
            # exponential is exact by memorylessness); keeping the old
            # candidate would carry the previous phase's rate into the new
            # phase and bias the process towards the longer-lived rate.
            while candidate > phase_end:
                time = phase_end
                in_burst = not in_burst
                mean_duration = (
                    self.mean_high_duration if in_burst else self.mean_low_duration
                )
                phase_end += float(
                    exponential_sample(self._rng, 1.0 / mean_duration)
                )
                rate = self.high_rate if in_burst else self.low_rate
                candidate = time + float(exponential_sample(self._rng, rate))
            time = candidate
            if time > horizon:
                return
            yield time

    def mean_rate(self) -> float:
        total = self.mean_low_duration + self.mean_high_duration
        return (
            self.low_rate * self.mean_low_duration
            + self.high_rate * self.mean_high_duration
        ) / total


class DiurnalProcess(ArrivalProcess):
    """A non-homogeneous Poisson process with a sinusoidal daily profile.

    The instantaneous rate is ``base_rate * (1 + amplitude * sin(2π t / period
    + phase))``, clipped at a small positive floor.  Generated by thinning a
    homogeneous process at the peak rate.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.6,
        period: float = 1440.0,
        phase: float = 0.0,
        seed: RandomState = None,
    ) -> None:
        check_positive(base_rate, "base_rate")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        check_positive(period, "period")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self._rng = new_rng(seed)

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time``."""
        modulation = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * time / self.period + self.phase
        )
        return max(1e-9, self.base_rate * modulation)

    def arrival_times(self, horizon: float) -> Iterator[float]:
        check_non_negative(horizon, "horizon")
        peak_rate = self.base_rate * (1.0 + self.amplitude)
        time = 0.0
        while True:
            time += float(exponential_sample(self._rng, peak_rate))
            if time > horizon:
                return
            # Thinning: accept with probability rate(t) / peak_rate.
            if self._rng.uniform() <= self.rate_at(time) / peak_rate:
                yield time

    def mean_rate(self) -> float:
        return self.base_rate


class DeterministicProcess(ArrivalProcess):
    """Evenly spaced arrivals, useful for analytically checkable tests."""

    def __init__(self, interval: float, start: float = 0.0) -> None:
        check_positive(interval, "interval")
        check_non_negative(start, "start")
        self.interval = interval
        self.start = start

    def arrival_times(self, horizon: float) -> Iterator[float]:
        check_non_negative(horizon, "horizon")
        time = self.start if self.start > 0 else self.interval
        while time <= horizon:
            yield time
            time += self.interval

    def mean_rate(self) -> float:
        return 1.0 / self.interval


def make_arrival_process(
    kind: str,
    rate: float,
    seed: RandomState = None,
    **kwargs,
) -> ArrivalProcess:
    """Factory used by experiment configuration files.

    ``kind`` is one of ``poisson``, ``mmpp``, ``diurnal`` or ``deterministic``.
    """
    kind = kind.lower()
    if kind == "poisson":
        return PoissonProcess(rate, seed=seed)
    if kind == "mmpp":
        return MMPPProcess(
            low_rate=rate * kwargs.get("low_factor", 0.5),
            high_rate=rate * kwargs.get("high_factor", 2.0),
            mean_low_duration=kwargs.get("mean_low_duration", 200.0),
            mean_high_duration=kwargs.get("mean_high_duration", 50.0),
            seed=seed,
        )
    if kind == "diurnal":
        return DiurnalProcess(
            base_rate=rate,
            amplitude=kwargs.get("amplitude", 0.6),
            period=kwargs.get("period", 1440.0),
            seed=seed,
        )
    if kind == "deterministic":
        return DeterministicProcess(interval=1.0 / rate)
    raise ValueError(f"unknown arrival process kind {kind!r}")
