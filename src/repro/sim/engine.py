"""A minimal, dependency-free discrete-event simulation engine.

The engine is deliberately generic: it owns a clock and a priority queue of
:class:`~repro.sim.events.Event` objects and dispatches them to registered
handlers.  Domain logic (placement, departures, metric sampling) lives in
:class:`~repro.sim.simulation.NFVSimulation`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.events import Event, EventType

EventHandler = Callable[[Event], None]


class SimulationClockError(RuntimeError):
    """Raised when an event is scheduled in the past."""


class EventEngine:
    """Priority-queue based discrete-event engine."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now = 0.0
        self._handlers: Dict[EventType, List[EventHandler]] = {}
        self._processed = 0
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Clock and queue
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    def schedule(self, event: Event) -> None:
        """Enqueue an event; it must not be earlier than the current time."""
        if event.time < self._now - 1e-12:
            raise SimulationClockError(
                f"cannot schedule event at t={event.time} before now={self._now}"
            )
        heapq.heappush(self._queue, event)

    def schedule_all(self, events: Iterable[Event]) -> None:
        """Enqueue an iterable of events atomically.

        All events are validated against the current clock *before* any is
        enqueued, so a batch containing a stale event raises
        :class:`SimulationClockError` without partially mutating the queue.
        """
        events = list(events)
        for index, event in enumerate(events):
            if event.time < self._now - 1e-12:
                raise SimulationClockError(
                    f"cannot schedule event {index} of {len(events)} "
                    f"({event.event_type.name} at t={event.time}) before "
                    f"now={self._now}; no event of the batch was enqueued"
                )
        for event in events:
            heapq.heappush(self._queue, event)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def on(self, event_type: EventType, handler: EventHandler) -> None:
        """Register ``handler`` for ``event_type`` (multiple handlers allowed)."""
        self._handlers.setdefault(event_type, []).append(handler)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[Event]:
        """Dispatch the next event, returning it (or ``None`` if queue empty)."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        for handler in self._handlers.get(event.event_type, []):
            handler(event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue empties, a limit hits, or stop().

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this time.
        max_events:
            Hard cap on the number of events to process in this call.

        Returns the number of events processed by this call.
        """
        processed_before = self._processed
        self._stopped = False
        while self._queue and not self._stopped:
            if until is not None and self._queue[0].time > until:
                break
            if (
                max_events is not None
                and self._processed - processed_before >= max_events
            ):
                break
            event = self.step()
            if event is not None and event.event_type is EventType.END_OF_SIMULATION:
                break
        return self._processed - processed_before

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
        self._stopped = False
