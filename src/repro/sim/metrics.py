"""Metric collection for online placement simulations.

The :class:`MetricsCollector` accumulates per-request outcomes and periodic
substrate samples, and reduces them into the summary statistics reported by
the paper-style figures: acceptance ratio, mean end-to-end latency, SLA
violation rate, operational cost, revenue, and edge utilization / balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class RequestOutcome:
    """Outcome of a single request's admission decision."""

    request_id: int
    service_class: str
    accepted: bool
    arrival_time: float
    latency_ms: Optional[float] = None
    sla_satisfied: Optional[bool] = None
    cost: float = 0.0
    revenue: float = 0.0
    edge_fraction: Optional[float] = None
    rejected_reason: Optional[str] = None


@dataclass
class UtilizationSample:
    """A periodic sample of substrate utilization."""

    time: float
    mean_edge_utilization: float
    utilization_imbalance: float
    cost_rate: float
    active_requests: int


@dataclass
class MetricsSummary:
    """Reduced metrics over one simulation run."""

    total_requests: int
    accepted_requests: int
    rejected_requests: int
    acceptance_ratio: float
    mean_latency_ms: float
    p95_latency_ms: float
    sla_violation_ratio: float
    total_cost: float
    total_revenue: float
    profit: float
    mean_cost_per_accepted: float
    mean_edge_utilization: float
    peak_edge_utilization: float
    mean_utilization_imbalance: float
    mean_edge_fraction: float
    acceptance_by_class: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Return the summary as a plain dictionary."""
        return {
            "total_requests": self.total_requests,
            "accepted_requests": self.accepted_requests,
            "rejected_requests": self.rejected_requests,
            "acceptance_ratio": self.acceptance_ratio,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "sla_violation_ratio": self.sla_violation_ratio,
            "total_cost": self.total_cost,
            "total_revenue": self.total_revenue,
            "profit": self.profit,
            "mean_cost_per_accepted": self.mean_cost_per_accepted,
            "mean_edge_utilization": self.mean_edge_utilization,
            "peak_edge_utilization": self.peak_edge_utilization,
            "mean_utilization_imbalance": self.mean_utilization_imbalance,
            "mean_edge_fraction": self.mean_edge_fraction,
            "acceptance_by_class": dict(self.acceptance_by_class),
        }


class MetricsCollector:
    """Accumulates request outcomes and utilization samples."""

    def __init__(self) -> None:
        self.outcomes: List[RequestOutcome] = []
        self.samples: List[UtilizationSample] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_acceptance(
        self,
        request,
        latency_ms: float,
        sla_satisfied: bool,
        cost: float,
        revenue: float,
        edge_fraction: float,
    ) -> None:
        """Record an accepted request and its placement quality."""
        self.outcomes.append(
            RequestOutcome(
                request_id=request.request_id,
                service_class=request.service_class,
                accepted=True,
                arrival_time=request.arrival_time,
                latency_ms=latency_ms,
                sla_satisfied=sla_satisfied,
                cost=cost,
                revenue=revenue,
                edge_fraction=edge_fraction,
            )
        )

    def record_rejection(self, request, reason: str = "no_feasible_placement") -> None:
        """Record a rejected request."""
        self.outcomes.append(
            RequestOutcome(
                request_id=request.request_id,
                service_class=request.service_class,
                accepted=False,
                arrival_time=request.arrival_time,
                rejected_reason=reason,
            )
        )

    def record_utilization(
        self,
        time: float,
        mean_edge_utilization: float,
        utilization_imbalance: float,
        cost_rate: float,
        active_requests: int,
    ) -> None:
        """Record one periodic substrate sample."""
        self.samples.append(
            UtilizationSample(
                time=time,
                mean_edge_utilization=mean_edge_utilization,
                utilization_imbalance=utilization_imbalance,
                cost_rate=cost_rate,
                active_requests=active_requests,
            )
        )

    # ------------------------------------------------------------------ #
    # Reduction
    # ------------------------------------------------------------------ #
    @property
    def total_requests(self) -> int:
        """Number of requests whose outcome was recorded."""
        return len(self.outcomes)

    @property
    def accepted(self) -> List[RequestOutcome]:
        """Outcomes of accepted requests."""
        return [o for o in self.outcomes if o.accepted]

    @property
    def rejected(self) -> List[RequestOutcome]:
        """Outcomes of rejected requests."""
        return [o for o in self.outcomes if not o.accepted]

    def acceptance_ratio(self) -> float:
        """Fraction of requests accepted (0 when no requests were seen)."""
        if not self.outcomes:
            return 0.0
        return len(self.accepted) / len(self.outcomes)

    def acceptance_by_class(self) -> Dict[str, float]:
        """Per-service-class acceptance ratios."""
        totals: Dict[str, int] = {}
        accepted: Dict[str, int] = {}
        for outcome in self.outcomes:
            totals[outcome.service_class] = totals.get(outcome.service_class, 0) + 1
            if outcome.accepted:
                accepted[outcome.service_class] = (
                    accepted.get(outcome.service_class, 0) + 1
                )
        return {
            cls: accepted.get(cls, 0) / count for cls, count in sorted(totals.items())
        }

    def summary(self) -> MetricsSummary:
        """Reduce everything recorded so far into a :class:`MetricsSummary`.

        All scalar reductions run as numpy array operations over columnar
        gathers of the recorded outcomes.
        """
        accepted = self.accepted
        count = len(accepted)
        latencies = np.array(
            [o.latency_ms for o in accepted if o.latency_ms is not None], dtype=float
        )
        costs = np.fromiter((o.cost for o in accepted), dtype=float, count=count)
        revenues = np.fromiter((o.revenue for o in accepted), dtype=float, count=count)
        total_cost = float(costs.sum())
        total_revenue = float(revenues.sum())
        sla_violations = int(
            np.sum(np.fromiter(
                (o.sla_satisfied is False for o in accepted), dtype=bool, count=count
            ))
        )
        edge_fractions = np.array(
            [o.edge_fraction for o in accepted if o.edge_fraction is not None],
            dtype=float,
        )
        num_samples = len(self.samples)
        utilizations = np.fromiter(
            (s.mean_edge_utilization for s in self.samples),
            dtype=float,
            count=num_samples,
        )
        imbalances = np.fromiter(
            (s.utilization_imbalance for s in self.samples),
            dtype=float,
            count=num_samples,
        )
        return MetricsSummary(
            total_requests=self.total_requests,
            accepted_requests=len(accepted),
            rejected_requests=len(self.rejected),
            acceptance_ratio=self.acceptance_ratio(),
            mean_latency_ms=float(latencies.mean()) if latencies.size else 0.0,
            p95_latency_ms=(
                float(np.percentile(latencies, 95)) if latencies.size else 0.0
            ),
            sla_violation_ratio=(
                sla_violations / len(accepted) if accepted else 0.0
            ),
            total_cost=total_cost,
            total_revenue=total_revenue,
            profit=total_revenue - total_cost,
            mean_cost_per_accepted=(
                total_cost / len(accepted) if accepted else 0.0
            ),
            mean_edge_utilization=(
                float(utilizations.mean()) if utilizations.size else 0.0
            ),
            peak_edge_utilization=(
                float(utilizations.max()) if utilizations.size else 0.0
            ),
            mean_utilization_imbalance=(
                float(imbalances.mean()) if imbalances.size else 0.0
            ),
            mean_edge_fraction=(
                float(edge_fractions.mean()) if edge_fractions.size else 0.0
            ),
            acceptance_by_class=self.acceptance_by_class(),
        )

    def reset(self) -> None:
        """Clear everything recorded so far."""
        self.outcomes.clear()
        self.samples.clear()
