"""Online NFV simulation: arrivals, admission, departures, metrics.

:class:`NFVSimulation` wires a :class:`SubstrateNetwork`, a stream of
:class:`~repro.nfv.sfc.SFCRequest` objects and a :class:`PlacementPolicy`
into the discrete-event engine.  Every policy — learned or heuristic — is
evaluated through exactly the same admission loop, which is what makes the
cross-policy comparisons in the benchmark harness fair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.nfv.placement import Placement, PlacementError
from repro.nfv.sfc import SFCRequest
from repro.sim.engine import EventEngine
from repro.sim.events import (
    Event,
    EventType,
    arrival_event,
    departure_event,
    monitoring_event,
)
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_positive


class PlacementPolicy(ABC):
    """Interface every online placement policy implements.

    A policy receives one request at a time together with the *current*
    substrate state and returns either a routed :class:`Placement` to commit
    or ``None`` to reject the request.  Policies must not mutate the network;
    the simulation commits the returned placement itself.
    """

    #: Human-readable name used in result tables.
    name: str = "policy"

    @abstractmethod
    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        """Return a feasible placement for ``request`` or ``None`` to reject."""

    def on_departure(self, request_id: int, network: SubstrateNetwork) -> None:
        """Hook invoked when an accepted request departs (optional)."""

    def reset(self) -> None:
        """Hook invoked at the start of every simulation run (optional)."""


@dataclass
class SimulationConfig:
    """Configuration of one online simulation run."""

    horizon: float = 1000.0
    monitoring_interval: float = 25.0
    revenue_per_mbps: float = 1.0
    commit_placements: bool = True

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        check_positive(self.monitoring_interval, "monitoring_interval")


@dataclass
class SimulationResult:
    """The outcome of one simulation run."""

    policy_name: str
    summary: MetricsSummary
    collector: MetricsCollector
    processed_events: int
    horizon: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view used by the experiment harness."""
        data = self.summary.as_dict()
        data["policy"] = self.policy_name
        data["processed_events"] = self.processed_events
        data["horizon"] = self.horizon
        return data


class NFVSimulation:
    """Drives one placement policy over one request trace."""

    def __init__(
        self,
        network: SubstrateNetwork,
        policy: PlacementPolicy,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.network = network
        self.policy = policy
        self.config = config or SimulationConfig()
        self.engine = EventEngine()
        self.collector = MetricsCollector()
        self._active_placements: Dict[int, Placement] = {}
        self._register_handlers()

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _register_handlers(self) -> None:
        self.engine.on(EventType.REQUEST_ARRIVAL, self._handle_arrival)
        self.engine.on(EventType.REQUEST_DEPARTURE, self._handle_departure)
        self.engine.on(EventType.MONITORING, self._handle_monitoring)

    def _handle_arrival(self, event: Event) -> None:
        request: SFCRequest = event.payload
        placement = self.policy.place(request, self.network)
        if placement is None:
            self.collector.record_rejection(request, reason="policy_rejected")
            return
        if not placement.is_feasible(self.network):
            self.collector.record_rejection(request, reason="infeasible_placement")
            return
        if self.config.commit_placements:
            try:
                placement.commit(self.network)
            except PlacementError:
                self.collector.record_rejection(request, reason="commit_failed")
                return
            self._active_placements[request.request_id] = placement
            self.engine.schedule(
                departure_event(request.departure_time, request.request_id)
            )
        self.collector.record_acceptance(
            request,
            latency_ms=placement.end_to_end_latency_ms(),
            sla_satisfied=placement.satisfies_sla(self.network),
            cost=placement.total_cost(self.network),
            revenue=request.revenue(self.config.revenue_per_mbps),
            edge_fraction=placement.edge_fraction(self.network),
        )

    def _handle_departure(self, event: Event) -> None:
        request_id: int = event.payload
        placement = self._active_placements.pop(request_id, None)
        if placement is not None and placement.is_committed:
            placement.release(self.network)
        self.policy.on_departure(request_id, self.network)

    def _handle_monitoring(self, event: Event) -> None:
        # One pass over the ledger arrays yields all three utilization
        # statistics instead of three object-by-object sweeps.
        ledger = self.network.ledger
        mean_edge_utilization, utilization_imbalance = ledger.utilization_stats(
            edge_only=True
        )
        self.collector.record_utilization(
            time=event.time,
            mean_edge_utilization=mean_edge_utilization,
            utilization_imbalance=utilization_imbalance,
            cost_rate=ledger.cost_rate(),
            active_requests=len(self._active_placements),
        )

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[SFCRequest]) -> SimulationResult:
        """Simulate the policy over ``requests`` and return reduced metrics."""
        self.network.reset()
        self.engine.reset()
        self.collector.reset()
        self._active_placements.clear()
        self.policy.reset()

        request_list = sorted(requests, key=lambda r: r.arrival_time)
        for request in request_list:
            self.engine.schedule(arrival_event(request.arrival_time, request))

        time = self.config.monitoring_interval
        while time <= self.config.horizon:
            self.engine.schedule(monitoring_event(time))
            time += self.config.monitoring_interval

        processed = self.engine.run(until=self.config.horizon)
        # Drain departures scheduled past the horizon so allocations release.
        processed += self.engine.run()

        return SimulationResult(
            policy_name=self.policy.name,
            summary=self.collector.summary(),
            collector=self.collector,
            processed_events=processed,
            horizon=self.config.horizon,
        )


def run_policy_comparison(
    network_factory,
    policies: Sequence[PlacementPolicy],
    requests: Sequence[SFCRequest],
    config: Optional[SimulationConfig] = None,
) -> List[SimulationResult]:
    """Evaluate several policies on identical traces and fresh substrates.

    ``network_factory`` is called once per policy so allocations made by one
    policy can never leak into another policy's run.
    """
    results: List[SimulationResult] = []
    for policy in policies:
        network = network_factory()
        simulation = NFVSimulation(network, policy, config)
        results.append(simulation.run(list(requests)))
    return results
