"""Online NFV simulation: arrivals, admission, departures, metrics.

:class:`NFVSimulation` wires a :class:`SubstrateNetwork`, a stream of
:class:`~repro.nfv.sfc.SFCRequest` objects and a :class:`PlacementPolicy`
into the discrete-event engine.  Every policy — learned or heuristic — is
evaluated through exactly the same admission loop, which is what makes the
cross-policy comparisons in the benchmark harness fair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nfv.placement import Placement, PlacementError
from repro.nfv.sfc import SFCRequest
from repro.sim.engine import EventEngine
from repro.sim.events import (
    Event,
    EventType,
    arrival_event,
    departure_event,
    monitoring_event,
)
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_positive


class PlacementPolicy(ABC):
    """Interface every online placement policy implements.

    A policy receives one request at a time together with the *current*
    substrate state and returns either a routed :class:`Placement` to commit
    or ``None`` to reject the request.  Policies must not mutate the network;
    the simulation commits the returned placement itself.

    Batched protocol
    ----------------
    Beyond the per-request :meth:`place` entry point, every policy speaks the
    same batched acting API as a learning agent: after :meth:`bind_lanes` ties
    the policy to the lane environments of a
    :class:`~repro.core.vecenv.VecPlacementEnv`, :meth:`select_actions` emits
    one action per lane for each batched decision step, which makes
    heuristics, tabular agents and neural agents interchangeable in
    vectorized evaluation loops.  The default implementation plans each
    lane's current request once through :meth:`plan_assignment` (the
    per-request reference backend) and replays the planned nodes one VNF at a
    time; vectorizable heuristics override :meth:`select_actions` with array
    kernels over the ``(K, A)`` validity masks.
    """

    #: Human-readable name used in result tables.
    name: str = "policy"

    @abstractmethod
    def place(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Placement]:
        """Return a feasible placement for ``request`` or ``None`` to reject."""

    def plan_assignment(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> Optional[Tuple[int, ...]]:
        """The node assignment this policy would choose, or ``None`` to reject.

        This is the per-request reference backend of the batched protocol.
        The default derives it from :meth:`place`; assignment-first policies
        override it directly and derive :meth:`place` from it instead.
        """
        placement = self.place(request, network)
        return None if placement is None else tuple(placement.node_assignment)

    # ------------------------------------------------------------------ #
    # Batched acting API (vectorized-environment lanes)
    # ------------------------------------------------------------------ #
    def bind_lanes(self, lanes) -> "PlacementPolicy":
        """Bind this policy to vectorized environment lanes.

        ``lanes`` is a :class:`~repro.core.vecenv.VecPlacementEnv`, a plain
        sequence of :class:`~repro.core.env.VNFPlacementEnv` objects, or a
        :class:`~repro.core.subproc.SubprocVecPlacementEnv`.  Binding
        initializes the per-lane plan cache used by the default
        :meth:`select_actions`; returns ``self`` for chaining.

        Subprocess environments have no in-process lanes to bind: the policy
        is shipped to every worker instead (via ``bind_policy``), each copy
        binds to its shard's live lanes there, and this parent-side object
        turns into a thin proxy — ``select_actions`` is shadowed with a
        delegate that fetches the worker-computed actions through shared
        memory, so heuristic subclasses (whatever vectorized overrides they
        define) run unmodified on either backend.
        """
        if hasattr(lanes, "bind_policy"):  # a worker-backed vectorized env
            lanes.bind_policy(self)
            self._remote_venv = lanes
            self._lane_envs = None
            self._lane_venv = None
            # Shadow the class-level select_actions (including subclass
            # overrides) on this instance only; unbinding removes it.
            self.select_actions = self._remote_select_actions
            return self
        if getattr(lanes, "backend", None) == "soa":
            raise TypeError(
                "heuristic policies plan against live per-lane environments, "
                "which the SoA lane-block does not expose; build the "
                "vectorized environment with backend='reference' instead"
            )
        self.__dict__.pop("select_actions", None)
        self._remote_venv = None
        envs = list(getattr(lanes, "envs", lanes))
        if not envs:
            raise ValueError("bind_lanes() needs at least one lane")
        self._lane_envs = envs
        # When bound to a whole VecPlacementEnv, vectorized kernels can share
        # its per-step LaneDecisionContext instead of re-gathering per lane.
        self._lane_venv = lanes if hasattr(lanes, "lane_decision_context") else None
        self._lane_plans: List[Optional[List[int]]] = [None] * len(envs)
        self._lane_request_ids: List[Optional[int]] = [None] * len(envs)
        return self

    def _remote_select_actions(
        self,
        states: Optional[np.ndarray] = None,
        masks: Optional[np.ndarray] = None,
        greedy: bool = True,
    ) -> np.ndarray:
        """Batched acting against worker-held lanes (subprocess binding).

        The worker-side policy copies decide from their shard's live
        substrate — recomputing the shard masks locally, exactly what the
        in-process path would feed them — and only the chosen actions cross
        back, so ``states``/``masks`` are accepted for signature
        compatibility and ignored.
        """
        return self._remote_venv.policy_actions()

    @property
    def bound_context(self):
        """The bound vec env's batched decision context, or ``None``."""
        venv = getattr(self, "_lane_venv", None)
        return None if venv is None else venv.lane_decision_context()

    @property
    def bound_lanes(self) -> List:
        """The lane environments bound with :meth:`bind_lanes`."""
        lanes = getattr(self, "_lane_envs", None)
        if not lanes:
            raise RuntimeError(
                f"policy {self.name!r} is not bound to vectorized lanes; "
                "call bind_lanes(venv) first"
            )
        return lanes

    def select_actions(
        self,
        states: Optional[np.ndarray] = None,
        masks: Optional[np.ndarray] = None,
        greedy: bool = True,
    ) -> np.ndarray:
        """One action per bound lane for the current batched decision step.

        Mirrors ``Agent.select_actions``: ``states`` is the ``(K, S)``
        observation batch and ``masks`` the ``(K, A)`` validity masks.
        Heuristic policies decide from the live lane substrate rather than
        the encoded observations, so ``states`` may be ``None`` (and lane
        evaluation may skip encoding entirely); ``greedy`` is accepted for
        signature compatibility and ignored — heuristics have no exploration
        mode.
        """
        return self.select_actions_reference(states, masks, greedy=greedy)

    def select_actions_reference(
        self,
        states: Optional[np.ndarray] = None,
        masks: Optional[np.ndarray] = None,
        greedy: bool = True,
    ) -> np.ndarray:
        """The per-request reference backend of the batched acting API.

        Plans each lane's current request once via :meth:`plan_assignment`
        (against that lane's live substrate) and replays the planned nodes
        one VNF decision at a time.  Vectorized overrides of
        :meth:`select_actions` must be decision-for-decision identical to
        this path; the equivalence suite asserts it bitwise.
        """
        lanes = self.bound_lanes
        actions = np.empty(len(lanes), dtype=int)
        for lane, env in enumerate(lanes):
            actions[lane] = self._lane_reference_action(lane, env)
        return actions

    def _lane_reference_action(self, lane: int, env) -> int:
        request = env.current_request
        if request is None:
            return env.actions.reject_action
        if self._lane_request_ids[lane] != request.request_id:
            self._lane_request_ids[lane] = request.request_id
            assignment = self.plan_assignment(request, env.network)
            self._lane_plans[lane] = (
                None
                if assignment is None
                else [env.actions.action_for_node(node) for node in assignment]
            )
        plan = self._lane_plans[lane]
        if plan is None:
            return env.actions.reject_action
        return plan[env.vnf_index]

    def on_departure(self, request_id: int, network: SubstrateNetwork) -> None:
        """Hook invoked when an accepted request departs (optional)."""

    def reset(self) -> None:
        """Hook invoked at the start of every simulation run (optional).

        Clears the per-lane plan cache of the batched protocol (forwarding
        to the worker-side copies when bound to a subprocess environment);
        subclasses extending this must call ``super().reset()``.
        """
        remote = getattr(self, "_remote_venv", None)
        if remote is not None:
            remote.reset_bound_policy()
        lanes = getattr(self, "_lane_envs", None)
        if lanes:
            self._lane_plans = [None] * len(lanes)
            self._lane_request_ids = [None] * len(lanes)


@dataclass
class SimulationConfig:
    """Configuration of one online simulation run."""

    horizon: float = 1000.0
    monitoring_interval: float = 25.0
    revenue_per_mbps: float = 1.0
    commit_placements: bool = True

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        check_positive(self.monitoring_interval, "monitoring_interval")


@dataclass
class SimulationResult:
    """The outcome of one simulation run."""

    policy_name: str
    summary: MetricsSummary
    collector: MetricsCollector
    processed_events: int
    horizon: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view used by the experiment harness."""
        data = self.summary.as_dict()
        data["policy"] = self.policy_name
        data["processed_events"] = self.processed_events
        data["horizon"] = self.horizon
        return data


class NFVSimulation:
    """Drives one placement policy over one request trace."""

    def __init__(
        self,
        network: SubstrateNetwork,
        policy: PlacementPolicy,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.network = network
        self.policy = policy
        self.config = config or SimulationConfig()
        self.engine = EventEngine()
        self.collector = MetricsCollector()
        self._active_placements: Dict[int, Placement] = {}
        self._register_handlers()

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _register_handlers(self) -> None:
        self.engine.on(EventType.REQUEST_ARRIVAL, self._handle_arrival)
        self.engine.on(EventType.REQUEST_DEPARTURE, self._handle_departure)
        self.engine.on(EventType.MONITORING, self._handle_monitoring)

    def _handle_arrival(self, event: Event) -> None:
        request: SFCRequest = event.payload
        placement = self.policy.place(request, self.network)
        if placement is None:
            self.collector.record_rejection(request, reason="policy_rejected")
            return
        if not placement.is_feasible(self.network):
            self.collector.record_rejection(request, reason="infeasible_placement")
            return
        if self.config.commit_placements:
            try:
                placement.commit(self.network)
            except PlacementError:
                self.collector.record_rejection(request, reason="commit_failed")
                return
            self._active_placements[request.request_id] = placement
            self.engine.schedule(
                departure_event(request.departure_time, request.request_id)
            )
        self.collector.record_acceptance(
            request,
            latency_ms=placement.end_to_end_latency_ms(),
            sla_satisfied=placement.satisfies_sla(self.network),
            cost=placement.total_cost(self.network),
            revenue=request.revenue(self.config.revenue_per_mbps),
            edge_fraction=placement.edge_fraction(self.network),
        )

    def _handle_departure(self, event: Event) -> None:
        request_id: int = event.payload
        placement = self._active_placements.pop(request_id, None)
        if placement is not None and placement.is_committed:
            placement.release(self.network)
        self.policy.on_departure(request_id, self.network)

    def _handle_monitoring(self, event: Event) -> None:
        # One pass over the ledger arrays yields all three utilization
        # statistics instead of three object-by-object sweeps.
        ledger = self.network.ledger
        mean_edge_utilization, utilization_imbalance = ledger.utilization_stats(
            edge_only=True
        )
        self.collector.record_utilization(
            time=event.time,
            mean_edge_utilization=mean_edge_utilization,
            utilization_imbalance=utilization_imbalance,
            cost_rate=ledger.cost_rate(),
            active_requests=len(self._active_placements),
        )

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[SFCRequest]) -> SimulationResult:
        """Simulate the policy over ``requests`` and return reduced metrics."""
        self.network.reset()
        self.engine.reset()
        self.collector.reset()
        self._active_placements.clear()
        self.policy.reset()

        request_list = sorted(requests, key=lambda r: r.arrival_time)
        for request in request_list:
            self.engine.schedule(arrival_event(request.arrival_time, request))

        time = self.config.monitoring_interval
        while time <= self.config.horizon:
            self.engine.schedule(monitoring_event(time))
            time += self.config.monitoring_interval

        processed = self.engine.run(until=self.config.horizon)
        # Drain departures scheduled past the horizon so allocations release.
        processed += self.engine.run()

        return SimulationResult(
            policy_name=self.policy.name,
            summary=self.collector.summary(),
            collector=self.collector,
            processed_events=processed,
            horizon=self.config.horizon,
        )


def run_policy_comparison(
    network_factory,
    policies: Sequence[PlacementPolicy],
    requests: Sequence[SFCRequest],
    config: Optional[SimulationConfig] = None,
) -> List[SimulationResult]:
    """Evaluate several policies on identical traces and fresh substrates.

    ``network_factory`` is called once per policy so allocations made by one
    policy can never leak into another policy's run.
    """
    results: List[SimulationResult] = []
    for policy in policies:
        network = network_factory()
        simulation = NFVSimulation(network, policy, config)
        results.append(simulation.run(list(requests)))
    return results
