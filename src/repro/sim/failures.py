"""Node failure injection for availability / fault-tolerance evaluation.

The base :class:`~repro.sim.simulation.NFVSimulation` assumes a fault-free
substrate.  This module adds the failure model used by availability
experiments:

* :class:`FailureConfig` / :class:`FailureInjector` — generate a reproducible
  failure/recovery schedule per node (exponential time-to-failure and
  time-to-repair), and
* :class:`FaultyNFVSimulation` — an :class:`NFVSimulation` subclass that
  injects those events into the run: when a node fails, every active placement
  hosting a VNF on it is torn down and counted as *disrupted*, and the node is
  fenced off (its remaining capacity is reserved under a failure handle) so no
  policy can place onto it until it recovers.

Disruptions are reported separately from rejections: a disrupted request was
admitted and then lost service, which is the quantity availability SLAs care
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nfv.placement import Placement
from repro.sim.events import Event, EventType
from repro.sim.simulation import NFVSimulation, PlacementPolicy, SimulationConfig, SimulationResult
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FailureConfig:
    """Parameters of the per-node failure/repair process.

    Each node fails independently with exponentially distributed time to
    failure and time to repair, i.e. a two-state Markov availability model
    with steady-state availability ``MTTF / (MTTF + MTTR)``.
    """

    mean_time_to_failure: float = 500.0
    mean_time_to_repair: float = 25.0
    edge_only: bool = True
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive(self.mean_time_to_failure, "mean_time_to_failure")
        check_positive(self.mean_time_to_repair, "mean_time_to_repair")

    @property
    def steady_state_availability(self) -> float:
        """Long-run fraction of time a node is up under this model."""
        return self.mean_time_to_failure / (
            self.mean_time_to_failure + self.mean_time_to_repair
        )


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure or recovery of a node."""

    time: float
    node_id: int
    is_failure: bool


class FailureInjector:
    """Generates a reproducible failure/recovery schedule for a substrate."""

    def __init__(self, config: Optional[FailureConfig] = None) -> None:
        self.config = config or FailureConfig()

    def schedule(
        self, network: SubstrateNetwork, horizon: float
    ) -> List[FailureEvent]:
        """Alternating failure/recovery events per node up to ``horizon``.

        Events for each node alternate FAIL → RECOVER → FAIL → ...; the whole
        schedule is returned time-sorted.
        """
        check_positive(horizon, "horizon")
        rng = new_rng(self.config.seed)
        node_ids = (
            network.edge_node_ids if self.config.edge_only else network.node_ids
        )
        events: List[FailureEvent] = []
        for node_id in node_ids:
            time = 0.0
            while True:
                time += float(rng.exponential(self.config.mean_time_to_failure))
                if time > horizon:
                    break
                events.append(FailureEvent(time=time, node_id=node_id, is_failure=True))
                time += float(rng.exponential(self.config.mean_time_to_repair))
                if time > horizon:
                    break
                events.append(FailureEvent(time=time, node_id=node_id, is_failure=False))
        events.sort(key=lambda e: e.time)
        return events


@dataclass
class DisruptionReport:
    """Fault-tolerance statistics of one faulty simulation run."""

    failure_events: int = 0
    recovery_events: int = 0
    disrupted_requests: int = 0
    disrupted_request_ids: List[int] = field(default_factory=list)

    def disruption_ratio(self, accepted_requests: int) -> float:
        """Fraction of accepted requests whose service was disrupted."""
        if accepted_requests <= 0:
            return 0.0
        return self.disrupted_requests / accepted_requests

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "failure_events": self.failure_events,
            "recovery_events": self.recovery_events,
            "disrupted_requests": self.disrupted_requests,
        }


class FaultyNFVSimulation(NFVSimulation):
    """An online simulation with node failures and recoveries.

    On failure, the node is *fenced*: its free capacity is allocated under a
    failure handle so no subsequent placement can use it, and every active
    placement with a VNF on the node is released and counted as disrupted.
    On recovery the fence is removed.
    """

    _FENCE_PREFIX = "fence:node:"

    def __init__(
        self,
        network: SubstrateNetwork,
        policy: PlacementPolicy,
        config: Optional[SimulationConfig] = None,
        failure_config: Optional[FailureConfig] = None,
    ) -> None:
        super().__init__(network, policy, config)
        self.failure_config = failure_config or FailureConfig()
        self.injector = FailureInjector(self.failure_config)
        self.report = DisruptionReport()
        self._failed_nodes: set[int] = set()
        self.engine.on(EventType.NODE_FAILURE, self._handle_failure)
        self.engine.on(EventType.NODE_RECOVERY, self._handle_recovery)

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    @property
    def failed_nodes(self) -> List[int]:
        """Node ids currently fenced due to failure."""
        return sorted(self._failed_nodes)

    def _fence_handle(self, node_id: int) -> str:
        return f"{self._FENCE_PREFIX}{node_id}"

    def _handle_failure(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        self.report.failure_events += 1
        self._evict_placements_on(node_id)
        # Fence the node: consume whatever capacity remains so that placement
        # feasibility checks reject it until recovery.
        self._refresh_fence(node_id)

    def _handle_recovery(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        self.report.recovery_events += 1
        node = self.network.node(node_id)
        if node.holds(self._fence_handle(node_id)):
            node.release(self._fence_handle(node_id))

    def _handle_departure(self, event: Event) -> None:
        # A departing placement should never still touch a fenced node (its
        # placements were torn down when the node failed), but if any release
        # does free capacity on a failed node, fold it back into the fence so
        # a fenced node can never regain placeable capacity mid-failure.
        placement = self._active_placements.get(event.payload)
        super()._handle_departure(event)
        if placement is not None and self._failed_nodes:
            for node_id in set(placement.node_assignment) & self._failed_nodes:
                self._refresh_fence(node_id)

    def _refresh_fence(self, node_id: int) -> None:
        """(Re)size the failure fence to consume all free capacity of a node.

        Idempotent: releases any existing fence first, then reserves whatever
        is free.  Keeps the invariant "a failed node has zero available
        capacity" even when capacity is freed on an already-fenced node.
        """
        node = self.network.node(node_id)
        handle = self._fence_handle(node_id)
        if node.holds(handle):
            node.release(handle)
        remaining = node.available
        if not remaining.is_zero():
            node.allocate(handle, remaining)

    def release_fences(self) -> None:
        """Release every failure fence and clear the failed-node set.

        Called at the start of :meth:`run` so a rerun on a substrate that
        still carries fences from a previous (interrupted or horizon-ended)
        run starts from a conserved state; also usable by callers that want
        to reuse the network after a run that ended with nodes still down.
        """
        for node_id in sorted(self._failed_nodes):
            node = self.network.node(node_id)
            handle = self._fence_handle(node_id)
            if node.holds(handle):
                node.release(handle)
        self._failed_nodes.clear()

    def _evict_placements_on(self, node_id: int) -> None:
        """Tear down every active placement hosting a VNF on ``node_id``."""
        victims: List[Tuple[int, Placement]] = [
            (request_id, placement)
            for request_id, placement in self._active_placements.items()
            if node_id in placement.node_assignment
        ]
        for request_id, placement in victims:
            if placement.is_committed:
                placement.release(self.network)
            del self._active_placements[request_id]
            self.report.disrupted_requests += 1
            self.report.disrupted_request_ids.append(request_id)

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, requests) -> SimulationResult:
        """Run the simulation with failure/recovery events injected."""
        # Pre-generate the failure schedule so that a fresh engine (reset in
        # the parent run()) can be populated before arrivals are processed.
        schedule = self.injector.schedule(self.network, self.config.horizon)
        self.report = DisruptionReport()
        # Fully release fences left by a previous run (the parent run() also
        # resets the whole network right after, but the explicit release keeps
        # fence bookkeeping and the failed-node set consistent on their own).
        self.release_fences()
        # The parent run() resets the engine before scheduling arrivals, so the
        # failure schedule is injected right after that reset by temporarily
        # wrapping the engine's reset method.
        original_reset = self.engine.reset

        def reset_and_inject() -> None:
            original_reset()
            for failure in schedule:
                self.engine.schedule(
                    Event.create(
                        failure.time,
                        EventType.NODE_FAILURE
                        if failure.is_failure
                        else EventType.NODE_RECOVERY,
                        payload=failure.node_id,
                    )
                )

        self.engine.reset = reset_and_inject  # type: ignore[method-assign]
        try:
            result = super().run(requests)
        finally:
            self.engine.reset = original_reset  # type: ignore[method-assign]
        return result
