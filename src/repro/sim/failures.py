"""Failure injection for availability / fault-tolerance evaluation.

The base :class:`~repro.sim.simulation.NFVSimulation` assumes a fault-free
substrate.  This module adds the failure models used by availability
experiments and the online serving harness:

* :class:`FailureConfig` / :class:`FailureInjector` — generate a reproducible
  *independent per-node* failure/recovery schedule (exponential time to
  failure and time to repair),
* :class:`FaultDomain` / :class:`DomainFailureConfig` /
  :class:`DomainFailureInjector` — *correlated* failures: a whole rack/metro/
  region domain of nodes fails together, optionally taking its incident links
  down with it, plus independent link failures, and
* :class:`FaultyNFVSimulation` — an :class:`NFVSimulation` subclass that
  injects those events into the run: when a node (or link) fails, every active
  placement touching it is torn down and counted as *disrupted*, and the
  component is fenced off (its remaining capacity/bandwidth is reserved under
  a failure handle) so no policy can place onto it until it recovers.

The fencing primitives (:func:`refresh_node_fence`, :func:`refresh_link_fence`
and their release counterparts) are module-level so other consumers — notably
the :mod:`repro.serving` online loop — apply the exact same capacity-fencing
semantics without subclassing the simulation.

Disruptions are reported separately from rejections: a disrupted request was
admitted and then lost service, which is the quantity availability SLAs care
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nfv.placement import Placement
from repro.sim.events import Event, EventType
from repro.sim.simulation import NFVSimulation, PlacementPolicy, SimulationConfig, SimulationResult
from repro.substrate.link import canonical_endpoints
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive


# --------------------------------------------------------------------------- #
# Capacity fencing primitives
# --------------------------------------------------------------------------- #
_NODE_FENCE_PREFIX = "fence:node:"
_LINK_FENCE_PREFIX = "fence:link:"


def node_fence_handle(node_id: int) -> str:
    """The allocation handle a failed node's fence reserves capacity under."""
    return f"{_NODE_FENCE_PREFIX}{node_id}"


def link_fence_handle(endpoints: Tuple[int, int]) -> str:
    """The reservation handle a failed link's fence reserves bandwidth under."""
    u, v = canonical_endpoints(*endpoints)
    return f"{_LINK_FENCE_PREFIX}{u}:{v}"


def refresh_node_fence(network: SubstrateNetwork, node_id: int) -> None:
    """(Re)size a node's failure fence to consume all of its free capacity.

    Idempotent: releases any existing fence first, then reserves whatever is
    free.  Keeps the invariant "a failed node has zero available capacity"
    even when capacity is freed on an already-fenced node.
    """
    node = network.node(node_id)
    handle = node_fence_handle(node_id)
    if node.holds(handle):
        node.release(handle)
    remaining = node.available
    if not remaining.is_zero():
        node.allocate(handle, remaining)


def release_node_fence(network: SubstrateNetwork, node_id: int) -> None:
    """Drop a node's failure fence (no-op when the node holds none)."""
    node = network.node(node_id)
    handle = node_fence_handle(node_id)
    if node.holds(handle):
        node.release(handle)


def refresh_link_fence(network: SubstrateNetwork, endpoints: Tuple[int, int]) -> None:
    """(Re)size a link's failure fence to consume all of its free bandwidth.

    The bandwidth analogue of :func:`refresh_node_fence`: a failed link must
    never offer placeable bandwidth, even when reservations on it are released
    mid-failure.
    """
    link = network.link(*endpoints)
    handle = link_fence_handle(endpoints)
    if link.holds(handle):
        link.release(handle)
    remaining = link.available_bandwidth
    if remaining > 0.0:
        link.reserve(handle, remaining)


def release_link_fence(network: SubstrateNetwork, endpoints: Tuple[int, int]) -> None:
    """Drop a link's failure fence (no-op when the link holds none)."""
    link = network.link(*endpoints)
    handle = link_fence_handle(endpoints)
    if link.holds(handle):
        link.release(handle)


def placement_traverses_link(
    placement: Placement, endpoints: Tuple[int, int]
) -> bool:
    """True when any routed segment of ``placement`` crosses ``endpoints``."""
    key = canonical_endpoints(*endpoints)
    return any(
        key in segment.path.links() for segment in placement.segments
    )


@dataclass(frozen=True)
class FailureConfig:
    """Parameters of the per-node failure/repair process.

    Each node fails independently with exponentially distributed time to
    failure and time to repair, i.e. a two-state Markov availability model
    with steady-state availability ``MTTF / (MTTF + MTTR)``.
    """

    mean_time_to_failure: float = 500.0
    mean_time_to_repair: float = 25.0
    edge_only: bool = True
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive(self.mean_time_to_failure, "mean_time_to_failure")
        check_positive(self.mean_time_to_repair, "mean_time_to_repair")

    @property
    def steady_state_availability(self) -> float:
        """Long-run fraction of time a node is up under this model."""
        return self.mean_time_to_failure / (
            self.mean_time_to_failure + self.mean_time_to_repair
        )


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled failure or recovery of a node."""

    time: float
    node_id: int
    is_failure: bool


class FailureInjector:
    """Generates a reproducible failure/recovery schedule for a substrate."""

    def __init__(self, config: Optional[FailureConfig] = None) -> None:
        self.config = config or FailureConfig()

    def schedule(
        self, network: SubstrateNetwork, horizon: float
    ) -> List[FailureEvent]:
        """Alternating failure/recovery events per node up to ``horizon``.

        Events for each node alternate FAIL → RECOVER → FAIL → ...; the whole
        schedule is returned time-sorted.
        """
        check_positive(horizon, "horizon")
        rng = new_rng(self.config.seed)
        node_ids = (
            network.edge_node_ids if self.config.edge_only else network.node_ids
        )
        events: List[FailureEvent] = []
        for node_id in node_ids:
            time = 0.0
            while True:
                time += float(rng.exponential(self.config.mean_time_to_failure))
                if time > horizon:
                    break
                events.append(FailureEvent(time=time, node_id=node_id, is_failure=True))
                time += float(rng.exponential(self.config.mean_time_to_repair))
                if time > horizon:
                    break
                events.append(FailureEvent(time=time, node_id=node_id, is_failure=False))
        events.sort(key=lambda e: e.time)
        return events


# --------------------------------------------------------------------------- #
# Correlated fault domains and link failures
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultDomain:
    """A set of substrate nodes that fails (and recovers) together.

    A domain models shared infrastructure — a rack PDU, a metro aggregation
    site, a regional power grid.  The member nodes go down simultaneously;
    their incident links can optionally be taken down with them (configured on
    :class:`DomainFailureConfig`).
    """

    name: str
    node_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError(f"fault domain {self.name!r} has no member nodes")
        object.__setattr__(self, "node_ids", tuple(self.node_ids))


def fault_domains_from_network(
    network: SubstrateNetwork, edge_only: bool = True
) -> List[FaultDomain]:
    """Derive fault domains from a substrate's node names.

    Nodes generated by the topology builders carry names like
    ``new_york-edge-3`` / ``denver-cloud-0``; everything before the tier
    marker is the metro/site the node lives in, which is exactly the blast
    radius a correlated infrastructure failure has.  Nodes without a
    recognizable site prefix each form a singleton domain (independent
    failure), so the derivation degrades gracefully on hand-built topologies.
    """
    groups: Dict[str, List[int]] = {}
    node_ids = network.edge_node_ids if edge_only else network.node_ids
    for node_id in node_ids:
        name = network.node(node_id).name or ""
        site = name
        for marker in ("-edge-", "-cloud-"):
            if marker in name:
                site = name.split(marker)[0]
                break
        else:
            site = f"node-{node_id}"
        groups.setdefault(site, []).append(node_id)
    return [
        FaultDomain(name=site, node_ids=tuple(members))
        for site, members in sorted(groups.items())
    ]


@dataclass(frozen=True)
class DomainFailureConfig:
    """Parameters of the correlated domain + link failure process.

    Each fault domain fails independently of the others with exponential time
    to failure / time to repair — but *within* a domain, every member node
    (and, with ``fail_incident_links``, every link touching a member) goes
    down and comes back at the same instant.  Optionally, individual links
    also fail independently (``link_mean_time_to_failure``), modelling fibre
    cuts that take out a span without touching any compute.
    """

    mean_time_to_failure: float = 2000.0
    mean_time_to_repair: float = 50.0
    fail_incident_links: bool = True
    link_mean_time_to_failure: Optional[float] = None
    link_mean_time_to_repair: float = 25.0
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive(self.mean_time_to_failure, "mean_time_to_failure")
        check_positive(self.mean_time_to_repair, "mean_time_to_repair")
        if self.link_mean_time_to_failure is not None:
            check_positive(self.link_mean_time_to_failure, "link_mean_time_to_failure")
        check_positive(self.link_mean_time_to_repair, "link_mean_time_to_repair")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled component failure or recovery.

    ``kind`` is one of ``node_failure`` / ``node_recovery`` /
    ``link_failure`` / ``link_recovery``; node events carry ``node_id``, link
    events carry the canonical ``endpoints`` pair.  ``domain`` names the fault
    domain that caused a correlated event (``None`` for independent link
    failures).
    """

    time: float
    kind: str
    node_id: Optional[int] = None
    endpoints: Optional[Tuple[int, int]] = None
    domain: Optional[str] = None

    def to_engine_event(self) -> Event:
        """The :class:`~repro.sim.events.Event` this chaos event injects."""
        if self.kind == "node_failure":
            return Event.create(self.time, EventType.NODE_FAILURE, payload=self.node_id)
        if self.kind == "node_recovery":
            return Event.create(self.time, EventType.NODE_RECOVERY, payload=self.node_id)
        if self.kind == "link_failure":
            return Event.create(self.time, EventType.LINK_FAILURE, payload=self.endpoints)
        if self.kind == "link_recovery":
            return Event.create(self.time, EventType.LINK_RECOVERY, payload=self.endpoints)
        raise ValueError(f"unknown chaos event kind {self.kind!r}")


class DomainFailureInjector:
    """Generates correlated domain + link failure/recovery schedules.

    Every domain alternates FAIL → RECOVER with exponential dwell times; a
    domain failure expands into simultaneous node failures for all members
    plus (optionally) link failures for every link incident to a member, and
    the matching recovery restores them all at once.  Independent link
    failures, when configured, follow their own per-link alternating process.
    The whole schedule is returned time-sorted and is a pure function of
    ``(config.seed, domains, horizon)``.
    """

    def __init__(
        self,
        domains: Sequence[FaultDomain],
        config: Optional[DomainFailureConfig] = None,
    ) -> None:
        if not domains:
            raise ValueError("DomainFailureInjector needs at least one fault domain")
        names = [domain.name for domain in domains]
        if len(set(names)) != len(names):
            raise ValueError(f"fault domain names must be unique, got {sorted(names)}")
        self.domains = list(domains)
        self.config = config or DomainFailureConfig()

    def _incident_links(
        self, network: SubstrateNetwork, domain: FaultDomain
    ) -> List[Tuple[int, int]]:
        members = set(domain.node_ids)
        return sorted(
            link.endpoints
            for link in network.links()
            if members & set(link.endpoints)
        )

    def schedule(
        self, network: SubstrateNetwork, horizon: float
    ) -> List[ChaosEvent]:
        """The time-sorted chaos schedule up to ``horizon``."""
        check_positive(horizon, "horizon")
        config = self.config
        events: List[ChaosEvent] = []
        for domain in self.domains:
            unknown = [n for n in domain.node_ids if n not in set(network.node_ids)]
            if unknown:
                raise ValueError(
                    f"fault domain {domain.name!r} references unknown nodes {unknown}"
                )
            rng = new_rng(derive_seed(config.seed, "domain", domain.name))
            links = (
                self._incident_links(network, domain)
                if config.fail_incident_links
                else []
            )
            time = 0.0
            while True:
                time += float(rng.exponential(config.mean_time_to_failure))
                if time > horizon:
                    break
                events.extend(self._domain_events(domain, links, time, failed=True))
                time += float(rng.exponential(config.mean_time_to_repair))
                if time > horizon:
                    break
                events.extend(self._domain_events(domain, links, time, failed=False))
        if config.link_mean_time_to_failure is not None:
            for link in network.links():
                rng = new_rng(derive_seed(config.seed, "link", *link.endpoints))
                time = 0.0
                while True:
                    time += float(rng.exponential(config.link_mean_time_to_failure))
                    if time > horizon:
                        break
                    events.append(
                        ChaosEvent(time=time, kind="link_failure", endpoints=link.endpoints)
                    )
                    time += float(rng.exponential(config.link_mean_time_to_repair))
                    if time > horizon:
                        break
                    events.append(
                        ChaosEvent(time=time, kind="link_recovery", endpoints=link.endpoints)
                    )
        events.sort(key=lambda e: e.time)
        return events

    def _domain_events(
        self,
        domain: FaultDomain,
        links: Sequence[Tuple[int, int]],
        time: float,
        failed: bool,
    ) -> List[ChaosEvent]:
        suffix = "failure" if failed else "recovery"
        batch = [
            ChaosEvent(
                time=time, kind=f"node_{suffix}", node_id=node_id, domain=domain.name
            )
            for node_id in domain.node_ids
        ]
        batch.extend(
            ChaosEvent(
                time=time, kind=f"link_{suffix}", endpoints=endpoints, domain=domain.name
            )
            for endpoints in links
        )
        return batch


@dataclass
class DisruptionReport:
    """Fault-tolerance statistics of one faulty simulation run."""

    failure_events: int = 0
    recovery_events: int = 0
    link_failure_events: int = 0
    link_recovery_events: int = 0
    disrupted_requests: int = 0
    disrupted_request_ids: List[int] = field(default_factory=list)

    def disruption_ratio(self, accepted_requests: int) -> float:
        """Fraction of accepted requests whose service was disrupted."""
        if accepted_requests <= 0:
            return 0.0
        return self.disrupted_requests / accepted_requests

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "failure_events": self.failure_events,
            "recovery_events": self.recovery_events,
            "link_failure_events": self.link_failure_events,
            "link_recovery_events": self.link_recovery_events,
            "disrupted_requests": self.disrupted_requests,
        }


class FaultyNFVSimulation(NFVSimulation):
    """An online simulation with node, link, and fault-domain failures.

    On failure, the component is *fenced*: its free capacity (node) or
    bandwidth (link) is reserved under a failure handle so no subsequent
    placement can use it, and every active placement hosting a VNF on the
    node — or routed across the link — is released and counted as disrupted.
    On recovery the fence is removed.

    Failure processes compose: ``failure_config`` drives independent per-node
    failures, ``domain_config`` drives correlated domain + link chaos.  When
    neither is given the historical default (independent node failures with
    :class:`FailureConfig` defaults) applies; passing only ``domain_config``
    runs pure correlated chaos without an extra independent-node process.
    """

    _FENCE_PREFIX = _NODE_FENCE_PREFIX

    def __init__(
        self,
        network: SubstrateNetwork,
        policy: PlacementPolicy,
        config: Optional[SimulationConfig] = None,
        failure_config: Optional[FailureConfig] = None,
        domain_config: Optional[DomainFailureConfig] = None,
        domains: Optional[Sequence[FaultDomain]] = None,
    ) -> None:
        super().__init__(network, policy, config)
        if failure_config is None and domain_config is None and domains is None:
            failure_config = FailureConfig()
        self.failure_config = failure_config
        self.injector = (
            FailureInjector(failure_config) if failure_config is not None else None
        )
        self.domain_injector: Optional[DomainFailureInjector] = None
        if domain_config is not None or domains is not None:
            resolved = (
                list(domains) if domains is not None
                else fault_domains_from_network(network)
            )
            self.domain_injector = DomainFailureInjector(resolved, domain_config)
        self.report = DisruptionReport()
        self._failed_nodes: set[int] = set()
        self._failed_links: set[Tuple[int, int]] = set()
        self.engine.on(EventType.NODE_FAILURE, self._handle_failure)
        self.engine.on(EventType.NODE_RECOVERY, self._handle_recovery)
        self.engine.on(EventType.LINK_FAILURE, self._handle_link_failure)
        self.engine.on(EventType.LINK_RECOVERY, self._handle_link_recovery)

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    @property
    def failed_nodes(self) -> List[int]:
        """Node ids currently fenced due to failure."""
        return sorted(self._failed_nodes)

    @property
    def failed_links(self) -> List[Tuple[int, int]]:
        """Canonical endpoint pairs of links currently fenced due to failure."""
        return sorted(self._failed_links)

    def _fence_handle(self, node_id: int) -> str:
        return node_fence_handle(node_id)

    def _handle_failure(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        self.report.failure_events += 1
        self._evict_placements_on(node_id)
        # Fence the node: consume whatever capacity remains so that placement
        # feasibility checks reject it until recovery.
        self._refresh_fence(node_id)

    def _handle_recovery(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        self.report.recovery_events += 1
        release_node_fence(self.network, node_id)

    def _handle_link_failure(self, event: Event) -> None:
        endpoints = canonical_endpoints(*event.payload)
        if endpoints in self._failed_links or not self.network.has_link(*endpoints):
            return
        self._failed_links.add(endpoints)
        self.report.link_failure_events += 1
        self._evict_placements_traversing(endpoints)
        refresh_link_fence(self.network, endpoints)

    def _handle_link_recovery(self, event: Event) -> None:
        endpoints = canonical_endpoints(*event.payload)
        if endpoints not in self._failed_links:
            return
        self._failed_links.discard(endpoints)
        self.report.link_recovery_events += 1
        release_link_fence(self.network, endpoints)

    def _handle_departure(self, event: Event) -> None:
        # A departing placement should never still touch a fenced component
        # (its placements were torn down when the component failed), but if
        # any release does free capacity on a failed node or bandwidth on a
        # failed link, fold it back into the fence so a fenced component can
        # never regain placeable capacity mid-failure.
        placement = self._active_placements.get(event.payload)
        super()._handle_departure(event)
        if placement is None:
            return
        if self._failed_nodes:
            for node_id in set(placement.node_assignment) & self._failed_nodes:
                self._refresh_fence(node_id)
        if self._failed_links:
            for endpoints in self._failed_links:
                if placement_traverses_link(placement, endpoints):
                    refresh_link_fence(self.network, endpoints)

    def _refresh_fence(self, node_id: int) -> None:
        """(Re)size the failure fence to consume all free capacity of a node."""
        refresh_node_fence(self.network, node_id)

    def release_fences(self) -> None:
        """Release every failure fence and clear the failed-component sets.

        Called at the start of :meth:`run` so a rerun on a substrate that
        still carries fences from a previous (interrupted or horizon-ended)
        run starts from a conserved state; also usable by callers that want
        to reuse the network after a run that ended with components still
        down.
        """
        for node_id in sorted(self._failed_nodes):
            release_node_fence(self.network, node_id)
        self._failed_nodes.clear()
        for endpoints in sorted(self._failed_links):
            release_link_fence(self.network, endpoints)
        self._failed_links.clear()

    def _evict_placements_on(self, node_id: int) -> None:
        """Tear down every active placement hosting a VNF on ``node_id``."""
        self._evict(
            [
                (request_id, placement)
                for request_id, placement in self._active_placements.items()
                if node_id in placement.node_assignment
            ]
        )

    def _evict_placements_traversing(self, endpoints: Tuple[int, int]) -> None:
        """Tear down every active placement routed across ``endpoints``."""
        self._evict(
            [
                (request_id, placement)
                for request_id, placement in self._active_placements.items()
                if placement_traverses_link(placement, endpoints)
            ]
        )

    def _evict(self, victims: List[Tuple[int, Placement]]) -> None:
        for request_id, placement in victims:
            if placement.is_committed:
                placement.release(self.network)
            del self._active_placements[request_id]
            self.report.disrupted_requests += 1
            self.report.disrupted_request_ids.append(request_id)
            # The release may have freed capacity on components that failed
            # *earlier* and are already fenced — fold it back into the fences.
            for node_id in set(placement.node_assignment) & self._failed_nodes:
                refresh_node_fence(self.network, node_id)
            for endpoints in self._failed_links:
                if placement_traverses_link(placement, endpoints):
                    refresh_link_fence(self.network, endpoints)

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, requests) -> SimulationResult:
        """Run the simulation with failure/recovery events injected."""
        # Pre-generate the failure schedules so that a fresh engine (reset in
        # the parent run()) can be populated before arrivals are processed.
        schedule: List[FailureEvent] = (
            self.injector.schedule(self.network, self.config.horizon)
            if self.injector is not None
            else []
        )
        chaos: List[ChaosEvent] = (
            self.domain_injector.schedule(self.network, self.config.horizon)
            if self.domain_injector is not None
            else []
        )
        self.report = DisruptionReport()
        # Fully release fences left by a previous run (the parent run() also
        # resets the whole network right after, but the explicit release keeps
        # fence bookkeeping and the failed-component sets consistent on their
        # own).
        self.release_fences()
        # The parent run() resets the engine before scheduling arrivals, so the
        # failure schedule is injected right after that reset by temporarily
        # wrapping the engine's reset method.
        original_reset = self.engine.reset

        def reset_and_inject() -> None:
            original_reset()
            for failure in schedule:
                self.engine.schedule(
                    Event.create(
                        failure.time,
                        EventType.NODE_FAILURE
                        if failure.is_failure
                        else EventType.NODE_RECOVERY,
                        payload=failure.node_id,
                    )
                )
            for chaos_event in chaos:
                self.engine.schedule(chaos_event.to_engine_event())

        self.engine.reset = reset_and_inject  # type: ignore[method-assign]
        try:
            result = super().run(requests)
        finally:
            self.engine.reset = original_reset  # type: ignore[method-assign]
        return result
