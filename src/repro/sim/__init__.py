"""Discrete-event simulation of online VNF placement."""

from repro.sim.arrivals import (
    ArrivalProcess,
    DeterministicProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    make_arrival_process,
)
from repro.sim.engine import EventEngine, SimulationClockError
from repro.sim.failures import (
    DisruptionReport,
    FailureConfig,
    FailureEvent,
    FailureInjector,
    FaultyNFVSimulation,
)
from repro.sim.events import (
    Event,
    EventType,
    arrival_event,
    departure_event,
    end_event,
    monitoring_event,
)
from repro.sim.metrics import (
    MetricsCollector,
    MetricsSummary,
    RequestOutcome,
    UtilizationSample,
)
from repro.sim.simulation import (
    NFVSimulation,
    PlacementPolicy,
    SimulationConfig,
    SimulationResult,
    run_policy_comparison,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicProcess",
    "DiurnalProcess",
    "MMPPProcess",
    "PoissonProcess",
    "make_arrival_process",
    "EventEngine",
    "SimulationClockError",
    "DisruptionReport",
    "FailureConfig",
    "FailureEvent",
    "FailureInjector",
    "FaultyNFVSimulation",
    "Event",
    "EventType",
    "arrival_event",
    "departure_event",
    "end_event",
    "monitoring_event",
    "MetricsCollector",
    "MetricsSummary",
    "RequestOutcome",
    "UtilizationSample",
    "NFVSimulation",
    "PlacementPolicy",
    "SimulationConfig",
    "SimulationResult",
    "run_policy_comparison",
]
