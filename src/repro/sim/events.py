"""Events of the discrete-event NFV simulation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.utils.validation import check_non_negative


class EventType(Enum):
    """The kinds of events the NFV simulation processes."""

    REQUEST_ARRIVAL = "request_arrival"
    REQUEST_DEPARTURE = "request_departure"
    MONITORING = "monitoring"
    NODE_FAILURE = "node_failure"
    NODE_RECOVERY = "node_recovery"
    LINK_FAILURE = "link_failure"
    LINK_RECOVERY = "link_recovery"
    DECISION_COMPLETE = "decision_complete"
    REPLACEMENT_RETRY = "replacement_retry"
    END_OF_SIMULATION = "end_of_simulation"


_sequence_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A timestamped event.

    Ordering is by ``(time, sequence)``; the monotonically increasing
    sequence number breaks ties deterministically (FIFO among simultaneous
    events), which keeps simulations reproducible.
    """

    time: float
    sequence: int = field(compare=True)
    event_type: EventType = field(compare=False)
    payload: Any = field(default=None, compare=False)

    @classmethod
    def create(
        cls, time: float, event_type: EventType, payload: Any = None
    ) -> "Event":
        """Build an event with an automatically assigned sequence number."""
        check_non_negative(time, "time")
        return cls(
            time=time,
            sequence=next(_sequence_counter),
            event_type=event_type,
            payload=payload,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(t={self.time:.3f}, type={self.event_type.value})"


def arrival_event(time: float, request) -> Event:
    """An SFC request arrival."""
    return Event.create(time, EventType.REQUEST_ARRIVAL, payload=request)


def departure_event(time: float, request_id: int) -> Event:
    """An accepted request reaching the end of its holding time."""
    return Event.create(time, EventType.REQUEST_DEPARTURE, payload=request_id)


def monitoring_event(time: float, label: Optional[str] = None) -> Event:
    """A periodic monitoring tick used to sample time-series metrics."""
    return Event.create(time, EventType.MONITORING, payload=label)


def link_failure_event(time: float, endpoints) -> Event:
    """A substrate link going down (payload: canonical endpoint pair)."""
    return Event.create(time, EventType.LINK_FAILURE, payload=tuple(endpoints))


def link_recovery_event(time: float, endpoints) -> Event:
    """A failed substrate link coming back (payload: canonical endpoint pair)."""
    return Event.create(time, EventType.LINK_RECOVERY, payload=tuple(endpoints))


def end_event(time: float) -> Event:
    """The end-of-simulation sentinel."""
    return Event.create(time, EventType.END_OF_SIMULATION)
