"""Geo-distributed edge computing substrate: nodes, links, topologies."""

from repro.substrate.geo import (
    CITY_COORDINATES,
    GeoPoint,
    haversine_km,
    propagation_latency_ms,
    random_points_near,
)
from repro.substrate.ledger import SubstrateLedger
from repro.substrate.link import (
    InsufficientBandwidthError,
    Link,
    canonical_endpoints,
)
from repro.substrate.network import (
    DenseRouting,
    NoRouteError,
    PathInfo,
    SubstrateNetwork,
    UnknownNodeError,
)
from repro.substrate.node import (
    ComputeNode,
    InsufficientCapacityError,
    NodeTier,
    make_cloud_node,
    make_edge_node,
)
from repro.substrate.resources import RESOURCE_DIMENSIONS, ResourceVector, aggregate
from repro.substrate.topology import (
    TopologyConfig,
    linear_chain_topology,
    metro_edge_cloud_topology,
    random_geometric_topology,
    scaled_topology,
    star_topology,
    waxman_topology,
)

__all__ = [
    "CITY_COORDINATES",
    "GeoPoint",
    "haversine_km",
    "propagation_latency_ms",
    "random_points_near",
    "SubstrateLedger",
    "DenseRouting",
    "InsufficientBandwidthError",
    "Link",
    "canonical_endpoints",
    "NoRouteError",
    "PathInfo",
    "SubstrateNetwork",
    "UnknownNodeError",
    "ComputeNode",
    "InsufficientCapacityError",
    "NodeTier",
    "make_cloud_node",
    "make_edge_node",
    "RESOURCE_DIMENSIONS",
    "ResourceVector",
    "aggregate",
    "TopologyConfig",
    "linear_chain_topology",
    "metro_edge_cloud_topology",
    "random_geometric_topology",
    "scaled_topology",
    "star_topology",
    "waxman_topology",
]
