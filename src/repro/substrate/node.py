"""Compute nodes of the geo-distributed substrate.

Two node tiers exist in the model:

* **Edge nodes** — small clusters co-located with access networks.  Low
  latency to nearby users, scarce capacity, moderate unit cost.
* **Cloud nodes** — large centralized datacenters.  Effectively unconstrained
  capacity and low unit cost, but tens of milliseconds away.

The tension between these two tiers is what makes VNF placement a non-trivial
sequential decision problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.substrate.geo import GeoPoint
from repro.substrate.resources import RESOURCE_DIMENSIONS, ResourceVector
from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.substrate.ledger import SubstrateLedger


class NodeTier(Enum):
    """Placement tier of a substrate node."""

    EDGE = "edge"
    CLOUD = "cloud"


class InsufficientCapacityError(RuntimeError):
    """Raised when an allocation does not fit in a node's free capacity."""


class UnknownAllocationError(KeyError):
    """Raised when releasing an allocation handle the node does not hold."""


@dataclass
class ComputeNode:
    """A capacitated compute site with allocation bookkeeping.

    Parameters
    ----------
    node_id:
        Unique identifier within a :class:`~repro.substrate.network.SubstrateNetwork`.
    location:
        Geographic position used by the latency model.
    capacity:
        Total resources of the site.
    tier:
        Edge or cloud.
    cost_per_unit:
        Price per consumed resource unit per time unit; the operational-cost
        metric multiplies allocations by these weights.
    activation_cost:
        Fixed cost charged whenever the node goes from idle to hosting at
        least one VNF instance (models powering on servers).
    name:
        Optional human-readable label (e.g. the metro it belongs to).
    """

    node_id: int
    location: GeoPoint
    capacity: ResourceVector
    tier: NodeTier = NodeTier.EDGE
    cost_per_unit: ResourceVector = field(
        default_factory=lambda: ResourceVector(0.05, 0.025, 0.005)
    )
    activation_cost: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        check_non_negative(self.activation_cost, "activation_cost")
        # Usage bookkeeping lives in small numpy arrays so an attached
        # SubstrateLedger can mirror them into contiguous matrices.
        self._capacity_arr = self.capacity.as_array()
        self._capacity_safe = np.where(self._capacity_arr > 0, self._capacity_arr, np.inf)
        self._used_arr = np.zeros_like(self._capacity_arr)
        self._peak_arr = np.zeros_like(self._capacity_arr)
        self._allocations: Dict[str, ResourceVector] = {}
        self._ledger: Optional["SubstrateLedger"] = None
        self._ledger_row = -1

    def _bind_ledger(self, ledger: Optional["SubstrateLedger"], row: int) -> None:
        """Attach (or detach) the array-backed ledger mirroring this node."""
        self._ledger = ledger
        self._ledger_row = row
        self._sync_ledger()

    def _sync_ledger(self) -> None:
        if self._ledger is not None:
            self._ledger.sync_node(
                self._ledger_row, self._used_arr, len(self._allocations)
            )

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #
    @property
    def used(self) -> ResourceVector:
        """Resources currently allocated on this node."""
        return ResourceVector.from_array(self._used_arr)

    @property
    def available(self) -> ResourceVector:
        """Resources still free on this node."""
        return ResourceVector.from_array(
            np.maximum(self._capacity_arr - self._used_arr, 0.0)
        )

    @property
    def peak_used(self) -> ResourceVector:
        """High-water mark of usage since construction or :meth:`reset`."""
        return ResourceVector.from_array(self._peak_arr)

    @property
    def is_edge(self) -> bool:
        """True for edge-tier nodes."""
        return self.tier is NodeTier.EDGE

    @property
    def is_cloud(self) -> bool:
        """True for cloud-tier nodes."""
        return self.tier is NodeTier.CLOUD

    @property
    def is_active(self) -> bool:
        """True when the node hosts at least one allocation."""
        return bool(self._allocations)

    @property
    def allocation_count(self) -> int:
        """Number of live allocations (VNF instances) on the node."""
        return len(self._allocations)

    def can_host(self, demand: ResourceVector, tol: float = 1e-9) -> bool:
        """True when ``demand`` fits in the currently free capacity."""
        used = self._used_arr
        cap = self._capacity_arr
        return bool(
            used[0] + demand.cpu <= cap[0] + tol
            and used[1] + demand.memory <= cap[1] + tol
            and used[2] + demand.storage <= cap[2] + tol
        )

    def utilization(self) -> Dict[str, float]:
        """Per-dimension utilization ratios."""
        ratios = self._used_arr / self._capacity_safe
        return dict(zip(RESOURCE_DIMENSIONS, ratios.tolist()))

    def max_utilization(self) -> float:
        """The bottleneck utilization ratio (largest dimension)."""
        return float(np.max(self._used_arr / self._capacity_safe))

    def mean_utilization(self) -> float:
        """Average utilization ratio across dimensions."""
        return float(np.mean(self._used_arr / self._capacity_safe))

    # ------------------------------------------------------------------ #
    # Allocation lifecycle
    # ------------------------------------------------------------------ #
    def allocate(self, handle: str, demand: ResourceVector) -> None:
        """Reserve ``demand`` under ``handle``.

        Raises
        ------
        InsufficientCapacityError
            If the demand does not fit in the free capacity.
        ValueError
            If the handle is already in use (allocations must be unique so
            that release is unambiguous).
        """
        if handle in self._allocations:
            raise ValueError(f"allocation handle {handle!r} already exists on node {self.node_id}")
        if not self.can_host(demand):
            deficit = (self.used + demand).deficit_against(self.capacity)
            raise InsufficientCapacityError(
                f"node {self.node_id} cannot host demand {demand.as_dict()}; "
                f"deficit {deficit.as_dict()}"
            )
        self._allocations[handle] = demand
        self._used_arr += demand.as_array()
        np.maximum(self._peak_arr, self._used_arr, out=self._peak_arr)
        self._sync_ledger()

    def release(self, handle: str) -> ResourceVector:
        """Free the allocation stored under ``handle`` and return it."""
        if handle not in self._allocations:
            raise UnknownAllocationError(
                f"node {self.node_id} holds no allocation {handle!r}"
            )
        demand = self._allocations.pop(handle)
        # Clamp at zero like ResourceVector.__sub__ to absorb float noise.
        np.maximum(self._used_arr - demand.as_array(), 0.0, out=self._used_arr)
        self._sync_ledger()
        return demand

    def holds(self, handle: str) -> bool:
        """True if the node currently holds an allocation for ``handle``."""
        return handle in self._allocations

    def reset(self) -> None:
        """Drop all allocations and usage statistics (start of an episode)."""
        self._allocations.clear()
        self._used_arr[:] = 0.0
        self._peak_arr[:] = 0.0
        self._sync_ledger()

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def usage_cost_rate(self) -> float:
        """Cost per unit time of the node's current allocations."""
        cost = float(self._used_arr @ self.cost_per_unit.as_array())
        if self.is_active:
            cost += self.activation_cost
        return cost

    def hosting_cost(self, demand: ResourceVector, duration: float) -> float:
        """Cost of hosting ``demand`` for ``duration`` time units."""
        check_non_negative(duration, "duration")
        return demand.dot(self.cost_per_unit) * duration

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the node's state."""
        return {
            "node_id": self.node_id,
            "name": self.name,
            "tier": self.tier.value,
            "capacity": self.capacity.as_dict(),
            "used": self.used.as_dict(),
            "available": self.available.as_dict(),
            "allocations": len(self._allocations),
            "max_utilization": self.max_utilization(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputeNode(id={self.node_id}, tier={self.tier.value}, "
            f"used={self.used.as_tuple()}, cap={self.capacity.as_tuple()})"
        )


def make_edge_node(
    node_id: int,
    location: GeoPoint,
    cpu: float = 32.0,
    memory: float = 64.0,
    storage: float = 500.0,
    cost_per_unit: Optional[ResourceVector] = None,
    name: str = "",
) -> ComputeNode:
    """Convenience constructor for a typical edge cluster."""
    return ComputeNode(
        node_id=node_id,
        location=location,
        capacity=ResourceVector(cpu, memory, storage),
        tier=NodeTier.EDGE,
        cost_per_unit=cost_per_unit or ResourceVector(0.05, 0.025, 0.0025),
        name=name or f"edge-{node_id}",
    )


def make_cloud_node(
    node_id: int,
    location: GeoPoint,
    cpu: float = 2048.0,
    memory: float = 8192.0,
    storage: float = 100_000.0,
    cost_per_unit: Optional[ResourceVector] = None,
    name: str = "",
) -> ComputeNode:
    """Convenience constructor for a central cloud datacenter."""
    return ComputeNode(
        node_id=node_id,
        location=location,
        capacity=ResourceVector(cpu, memory, storage),
        tier=NodeTier.CLOUD,
        cost_per_unit=cost_per_unit or ResourceVector(0.02, 0.01, 0.0005),
        name=name or f"cloud-{node_id}",
    )
