"""Multi-dimensional resource vectors.

Edge nodes expose CPU (vCPU cores), memory (GB) and storage (GB).  VNF
instances consume a :class:`ResourceVector`; nodes track capacity and usage as
vectors.  The class is intentionally immutable (frozen dataclass) so that
demands and capacities can be shared safely between requests, placements and
snapshots without defensive copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

#: Canonical resource dimension names, in vector order.
RESOURCE_DIMENSIONS: Tuple[str, str, str] = ("cpu", "memory", "storage")

#: Number of resource dimensions (width of array-backed ledger columns).
NUM_RESOURCE_DIMENSIONS = len(RESOURCE_DIMENSIONS)


@dataclass(frozen=True)
class ResourceVector:
    """An immutable (cpu, memory, storage) triple with vector arithmetic.

    Units are conventional rather than enforced: CPU in virtual cores, memory
    and storage in gigabytes.  Negative components are rejected at
    construction time except through :meth:`unchecked`, which internal code
    uses for deficit computations.
    """

    cpu: float = 0.0
    memory: float = 0.0
    storage: float = 0.0

    def __post_init__(self) -> None:
        for dim in RESOURCE_DIMENSIONS:
            value = getattr(self, dim)
            if not math.isfinite(value):
                raise ValueError(f"resource dimension {dim} must be finite, got {value}")
            if value < 0:
                raise ValueError(
                    f"resource dimension {dim} must be >= 0, got {value}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls(0.0, 0.0, 0.0)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ResourceVector":
        """Build a vector from a mapping with cpu/memory/storage keys."""
        unknown = set(data) - set(RESOURCE_DIMENSIONS)
        if unknown:
            raise ValueError(f"unknown resource dimensions: {sorted(unknown)}")
        return cls(
            cpu=float(data.get("cpu", 0.0)),
            memory=float(data.get("memory", 0.0)),
            storage=float(data.get("storage", 0.0)),
        )

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """A vector with the same value in every dimension."""
        return cls(value, value, value)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory + other.memory,
            self.storage + other.storage,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise difference clamped at zero.

        Subtraction is used to compute *remaining* capacity; clamping avoids
        tiny negative floats from accumulation noise.  Use
        :meth:`deficit_against` when the actual shortfall is required.
        """
        return ResourceVector(
            max(0.0, self.cpu - other.cpu),
            max(0.0, self.memory - other.memory),
            max(0.0, self.storage - other.storage),
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        if scalar < 0:
            raise ValueError(f"cannot scale a resource vector by {scalar}")
        return ResourceVector(
            self.cpu * scalar, self.memory * scalar, self.storage * scalar
        )

    __rmul__ = __mul__

    def fits_within(self, capacity: "ResourceVector", tol: float = 1e-9) -> bool:
        """True when every dimension of ``self`` fits inside ``capacity``."""
        return (
            self.cpu <= capacity.cpu + tol
            and self.memory <= capacity.memory + tol
            and self.storage <= capacity.storage + tol
        )

    def deficit_against(self, capacity: "ResourceVector") -> "ResourceVector":
        """Per-dimension amount by which ``self`` exceeds ``capacity``."""
        return ResourceVector(
            max(0.0, self.cpu - capacity.cpu),
            max(0.0, self.memory - capacity.memory),
            max(0.0, self.storage - capacity.storage),
        )

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum, used for peak-usage accounting."""
        return ResourceVector(
            max(self.cpu, other.cpu),
            max(self.memory, other.memory),
            max(self.storage, other.storage),
        )

    # ------------------------------------------------------------------ #
    # Ratios and reductions
    # ------------------------------------------------------------------ #
    def utilization_against(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Per-dimension utilization ratio of ``self`` relative to ``capacity``.

        Dimensions with zero capacity report 0.0 utilization (they cannot be
        consumed), which keeps downstream averaging well defined.
        """
        ratios: Dict[str, float] = {}
        for dim in RESOURCE_DIMENSIONS:
            cap = getattr(capacity, dim)
            used = getattr(self, dim)
            ratios[dim] = 0.0 if cap <= 0 else used / cap
        return ratios

    def max_utilization_against(self, capacity: "ResourceVector") -> float:
        """The bottleneck (largest) utilization ratio across dimensions."""
        return max(self.utilization_against(capacity).values())

    def mean_utilization_against(self, capacity: "ResourceVector") -> float:
        """The mean utilization ratio across dimensions."""
        ratios = self.utilization_against(capacity)
        return sum(ratios.values()) / len(ratios)

    def dot(self, weights: "ResourceVector") -> float:
        """Weighted sum, used by cost models (price per resource unit)."""
        return (
            self.cpu * weights.cpu
            + self.memory * weights.memory
            + self.storage * weights.storage
        )

    def total(self) -> float:
        """Unweighted sum of all dimensions (a crude size measure)."""
        return self.cpu + self.memory + self.storage

    def is_zero(self, tol: float = 1e-12) -> bool:
        """True if every component is (numerically) zero."""
        return self.total() <= tol

    # ------------------------------------------------------------------ #
    # Conversions / iteration
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, float]:
        """Return the vector as a plain dict keyed by dimension name."""
        return {dim: getattr(self, dim) for dim in RESOURCE_DIMENSIONS}

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return the vector as an ordered (cpu, memory, storage) tuple."""
        return (self.cpu, self.memory, self.storage)

    def as_array(self) -> np.ndarray:
        """Return the vector as a ``(cpu, memory, storage)`` float array.

        The array-backed substrate ledger stores node capacities and usage as
        contiguous matrices; this is the canonical object → array conversion.
        The array is memoized on the (immutable) vector — treat it as
        read-only.
        """
        cached = self.__dict__.get("_arr")
        if cached is None:
            cached = np.array((self.cpu, self.memory, self.storage), dtype=float)
            self.__dict__["_arr"] = cached
        return cached

    @classmethod
    def from_array(cls, values: np.ndarray) -> "ResourceVector":
        """Build a vector from an ordered (cpu, memory, storage) array."""
        return cls(float(values[0]), float(values[1]), float(values[2]))

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())

    def almost_equal(self, other: "ResourceVector", tol: float = 1e-9) -> bool:
        """Approximate equality, robust to floating-point allocation noise."""
        return all(
            abs(a - b) <= tol for a, b in zip(self.as_tuple(), other.as_tuple())
        )


def aggregate(resources: Iterable[ResourceVector]) -> ResourceVector:
    """Sum an iterable of resource vectors."""
    total = ResourceVector.zero()
    for vector in resources:
        total = total + vector
    return total
