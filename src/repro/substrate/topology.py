"""Topology generators for geo-distributed edge computing substrates.

All generators return a fully connected :class:`SubstrateNetwork` and are
seeded, so the same configuration always yields the same topology.  The
default experiment topology (``metro_edge_cloud_topology``) follows the usual
geo-distributed edge computing layout: a set of metro areas, each with a few
edge clusters meshed locally, a metro aggregation backbone, and one or more
remote cloud datacenters reachable only over wide-area links.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.substrate.geo import (
    CITY_COORDINATES,
    GeoPoint,
    centroid,
    propagation_latency_ms,
    random_points_near,
)
from repro.substrate.network import SubstrateNetwork
from repro.substrate.node import ComputeNode, NodeTier, make_cloud_node, make_edge_node
from repro.substrate.resources import ResourceVector
from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class TopologyConfig:
    """Configuration shared by the topology generators.

    The defaults correspond to the reference scenario used throughout the
    benchmark harness: 16 edge clusters spread over 4 metro areas plus one
    central cloud.
    """

    num_edge_nodes: int = 16
    num_cloud_nodes: int = 1
    num_metros: int = 4
    metro_radius_km: float = 25.0
    edge_cpu: float = 32.0
    edge_memory: float = 64.0
    edge_storage: float = 500.0
    cloud_cpu: float = 2048.0
    cloud_memory: float = 8192.0
    cloud_storage: float = 100_000.0
    edge_link_bandwidth_mbps: float = 10_000.0
    metro_link_bandwidth_mbps: float = 40_000.0
    wan_link_bandwidth_mbps: float = 100_000.0
    wan_extra_latency_ms: float = 15.0
    capacity_jitter: float = 0.15
    cities: Sequence[str] = field(
        default_factory=lambda: ("new_york", "chicago", "dallas", "seattle")
    )
    cloud_city: str = "denver"
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive(self.num_edge_nodes, "num_edge_nodes")
        check_positive(self.num_cloud_nodes, "num_cloud_nodes")
        check_positive(self.num_metros, "num_metros")
        check_positive(self.metro_radius_km, "metro_radius_km")
        check_probability(self.capacity_jitter, "capacity_jitter")
        if self.num_metros > len(self.cities):
            raise ValueError(
                f"num_metros={self.num_metros} exceeds the {len(self.cities)} "
                "configured cities"
            )


def _jittered(base: float, jitter: float, rng) -> float:
    """Scale ``base`` by a uniform factor in [1-jitter, 1+jitter]."""
    if jitter <= 0:
        return base
    return base * rng.uniform(1.0 - jitter, 1.0 + jitter)


def metro_edge_cloud_topology(config: Optional[TopologyConfig] = None) -> SubstrateNetwork:
    """The reference geo-distributed topology.

    Structure:

    * ``num_metros`` metro areas, each centred on a real city and containing
      an (approximately equal) share of the edge nodes scattered within
      ``metro_radius_km``.
    * Edge nodes within a metro form a ring plus a link to the metro's first
      node (the aggregation site), giving short intra-metro paths.
    * Aggregation sites of all metros are connected in a full mesh (the
      metro backbone).
    * Every cloud node connects to every aggregation site over WAN links.
    """
    config = config or TopologyConfig()
    rng = new_rng(config.seed)
    network = SubstrateNetwork()

    cities = list(config.cities)[: config.num_metros]
    metro_centers = [CITY_COORDINATES[c] for c in cities]

    # --- edge nodes, spread round-robin over the metros -------------------- #
    per_metro: List[List[int]] = [[] for _ in range(config.num_metros)]
    next_id = 0
    for index in range(config.num_edge_nodes):
        metro = index % config.num_metros
        location = random_points_near(
            metro_centers[metro], 1, config.metro_radius_km, seed=rng
        )[0]
        node = make_edge_node(
            node_id=next_id,
            location=location,
            cpu=_jittered(config.edge_cpu, config.capacity_jitter, rng),
            memory=_jittered(config.edge_memory, config.capacity_jitter, rng),
            storage=_jittered(config.edge_storage, config.capacity_jitter, rng),
            name=f"{cities[metro]}-edge-{len(per_metro[metro])}",
        )
        network.add_node(node)
        per_metro[metro].append(next_id)
        next_id += 1

    # --- cloud nodes -------------------------------------------------------- #
    cloud_center = CITY_COORDINATES[config.cloud_city]
    cloud_ids: List[int] = []
    for index in range(config.num_cloud_nodes):
        location = random_points_near(cloud_center, 1, 5.0, seed=rng)[0]
        node = make_cloud_node(
            node_id=next_id,
            location=location,
            cpu=config.cloud_cpu,
            memory=config.cloud_memory,
            storage=config.cloud_storage,
            name=f"{config.cloud_city}-cloud-{index}",
        )
        network.add_node(node)
        cloud_ids.append(next_id)
        next_id += 1

    # --- intra-metro links: ring + spoke to the aggregation node ----------- #
    for members in per_metro:
        if len(members) == 1:
            continue
        for i, node_id in enumerate(members):
            neighbor = members[(i + 1) % len(members)]
            if not network.has_link(node_id, neighbor):
                network.add_link(
                    node_id, neighbor, config.edge_link_bandwidth_mbps
                )
        aggregation = members[0]
        for node_id in members[1:]:
            if not network.has_link(aggregation, node_id):
                network.add_link(
                    aggregation, node_id, config.edge_link_bandwidth_mbps
                )

    # --- metro backbone: full mesh between aggregation sites --------------- #
    aggregation_sites = [members[0] for members in per_metro if members]
    for u, v in itertools.combinations(aggregation_sites, 2):
        network.add_link(u, v, config.metro_link_bandwidth_mbps)

    # --- WAN links to the cloud --------------------------------------------- #
    # WAN paths cross multiple transit providers; the extra latency models the
    # additional switching/queueing beyond raw fibre propagation and is what
    # keeps the cloud unattractive for latency-critical service classes.
    for cloud_id in cloud_ids:
        for aggregation in aggregation_sites:
            wan_latency = (
                propagation_latency_ms(
                    network.node(cloud_id).location,
                    network.node(aggregation).location,
                )
                + config.wan_extra_latency_ms
            )
            network.add_link(
                cloud_id,
                aggregation,
                config.wan_link_bandwidth_mbps,
                latency_ms=wan_latency,
            )

    return network.prepare()


def random_geometric_topology(
    num_edge_nodes: int = 16,
    num_cloud_nodes: int = 1,
    connection_radius: float = 0.35,
    region_center: Optional[GeoPoint] = None,
    region_radius_km: float = 60.0,
    edge_capacity: Optional[ResourceVector] = None,
    link_bandwidth_mbps: float = 10_000.0,
    seed: RandomState = None,
) -> SubstrateNetwork:
    """A random geometric graph of edge sites plus a distant cloud.

    Edge sites are scattered uniformly in a disk; two sites are linked when
    their normalized distance is below ``connection_radius``.  A spanning
    chain is added afterwards so the topology is always connected.
    """
    check_positive(num_edge_nodes, "num_edge_nodes")
    check_probability(connection_radius, "connection_radius")
    rng = new_rng(seed)
    center = region_center or CITY_COORDINATES["new_york"]
    capacity = edge_capacity or ResourceVector(32.0, 64.0, 500.0)

    network = SubstrateNetwork()
    locations = random_points_near(center, num_edge_nodes, region_radius_km, seed=rng)
    for node_id, location in enumerate(locations):
        network.add_node(
            ComputeNode(
                node_id=node_id,
                location=location,
                capacity=capacity,
                tier=NodeTier.EDGE,
                name=f"edge-{node_id}",
            )
        )

    cloud_center = CITY_COORDINATES["denver"]
    cloud_ids = []
    for index in range(num_cloud_nodes):
        node_id = num_edge_nodes + index
        network.add_node(
            make_cloud_node(node_id, cloud_center, name=f"cloud-{index}")
        )
        cloud_ids.append(node_id)

    # Normalized pairwise distances drive the geometric connectivity rule.
    max_distance = 2.0 * region_radius_km
    for u, v in itertools.combinations(range(num_edge_nodes), 2):
        distance = locations[u].distance_km(locations[v])
        if distance / max_distance <= connection_radius:
            network.add_link(u, v, link_bandwidth_mbps)

    # Guarantee connectivity with a chain over the edge nodes.
    for u in range(num_edge_nodes - 1):
        if not network.has_link(u, u + 1):
            network.add_link(u, u + 1, link_bandwidth_mbps)

    # The cloud hangs off a few well-connected edge sites.
    gateway_count = max(1, num_edge_nodes // 4)
    gateways = list(range(0, num_edge_nodes, max(1, num_edge_nodes // gateway_count)))
    for cloud_id in cloud_ids:
        for gateway in gateways[:gateway_count]:
            if not network.has_link(cloud_id, gateway):
                network.add_link(cloud_id, gateway, 10 * link_bandwidth_mbps)
    return network.prepare()


def waxman_topology(
    num_edge_nodes: int = 16,
    num_cloud_nodes: int = 1,
    alpha: float = 0.4,
    beta: float = 0.6,
    region_center: Optional[GeoPoint] = None,
    region_radius_km: float = 80.0,
    link_bandwidth_mbps: float = 10_000.0,
    seed: RandomState = None,
) -> SubstrateNetwork:
    """A Waxman random graph over edge sites, a standard NFV evaluation topology.

    Link probability between sites ``u`` and ``v`` is
    ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the network diameter.
    """
    check_probability(alpha, "alpha")
    check_probability(beta, "beta")
    rng = new_rng(seed)
    center = region_center or CITY_COORDINATES["chicago"]

    network = SubstrateNetwork()
    locations = random_points_near(center, num_edge_nodes, region_radius_km, seed=rng)
    for node_id, location in enumerate(locations):
        network.add_node(make_edge_node(node_id, location))

    cloud_ids = []
    for index in range(num_cloud_nodes):
        node_id = num_edge_nodes + index
        network.add_node(
            make_cloud_node(node_id, CITY_COORDINATES["dallas"], name=f"cloud-{index}")
        )
        cloud_ids.append(node_id)

    diameter_km = max(
        locations[u].distance_km(locations[v])
        for u, v in itertools.combinations(range(num_edge_nodes), 2)
    ) if num_edge_nodes > 1 else 1.0
    diameter_km = max(diameter_km, 1e-6)

    for u, v in itertools.combinations(range(num_edge_nodes), 2):
        distance = locations[u].distance_km(locations[v])
        probability = alpha * math.exp(-distance / (beta * diameter_km))
        if rng.uniform() < probability:
            network.add_link(u, v, link_bandwidth_mbps)

    for u in range(num_edge_nodes - 1):
        if not network.has_link(u, u + 1):
            network.add_link(u, u + 1, link_bandwidth_mbps)

    for cloud_id in cloud_ids:
        for gateway in range(0, num_edge_nodes, max(1, num_edge_nodes // 3)):
            if not network.has_link(cloud_id, gateway):
                network.add_link(cloud_id, gateway, 10 * link_bandwidth_mbps)
    return network.prepare()


def linear_chain_topology(
    num_edge_nodes: int = 4,
    link_bandwidth_mbps: float = 1_000.0,
    link_latency_ms: float = 2.0,
    edge_capacity: Optional[ResourceVector] = None,
    seed: RandomState = None,
) -> SubstrateNetwork:
    """A tiny deterministic chain topology, mostly useful in tests.

    Node 0 — 1 — 2 — ... — (n-1); all edge tier, uniform capacity, uniform
    link latency.  Having an analytically predictable topology keeps unit
    tests of routing, placement and reward computation simple.
    """
    check_positive(num_edge_nodes, "num_edge_nodes")
    capacity = edge_capacity or ResourceVector(8.0, 16.0, 100.0)
    rng = new_rng(seed)
    center = CITY_COORDINATES["new_york"]
    locations = random_points_near(center, num_edge_nodes, 10.0, seed=rng)

    network = SubstrateNetwork()
    for node_id in range(num_edge_nodes):
        network.add_node(
            ComputeNode(
                node_id=node_id,
                location=locations[node_id],
                capacity=capacity,
                tier=NodeTier.EDGE,
                name=f"edge-{node_id}",
            )
        )
    for u in range(num_edge_nodes - 1):
        network.add_link(
            u, u + 1, link_bandwidth_mbps, latency_ms=link_latency_ms
        )
    return network.prepare()


def star_topology(
    num_leaves: int = 8,
    hub_capacity: Optional[ResourceVector] = None,
    leaf_capacity: Optional[ResourceVector] = None,
    link_bandwidth_mbps: float = 5_000.0,
    link_latency_ms: float = 1.5,
    seed: RandomState = None,
) -> SubstrateNetwork:
    """A hub-and-spoke topology: node 0 is the hub, nodes 1..n are leaves."""
    check_positive(num_leaves, "num_leaves")
    rng = new_rng(seed)
    center = CITY_COORDINATES["boston"]
    locations = random_points_near(center, num_leaves + 1, 15.0, seed=rng)

    network = SubstrateNetwork()
    network.add_node(
        ComputeNode(
            node_id=0,
            location=locations[0],
            capacity=hub_capacity or ResourceVector(64.0, 128.0, 1000.0),
            tier=NodeTier.EDGE,
            name="hub",
        )
    )
    for leaf in range(1, num_leaves + 1):
        network.add_node(
            ComputeNode(
                node_id=leaf,
                location=locations[leaf],
                capacity=leaf_capacity or ResourceVector(16.0, 32.0, 200.0),
                tier=NodeTier.EDGE,
                name=f"leaf-{leaf}",
            )
        )
        network.add_link(0, leaf, link_bandwidth_mbps, latency_ms=link_latency_ms)
    return network.prepare()


def scaled_topology(num_edge_nodes: int, seed: RandomState = None) -> SubstrateNetwork:
    """Reference topology scaled to an arbitrary edge-node count.

    Used by the scalability experiment (Fig. 5): metros grow with the number
    of edge nodes (one metro per ~4 edges, capped by the city catalogue).
    """
    check_positive(num_edge_nodes, "num_edge_nodes")
    all_cities = list(CITY_COORDINATES.keys())
    all_cities.remove("denver")
    num_metros = min(max(1, num_edge_nodes // 4), len(all_cities))
    config = TopologyConfig(
        num_edge_nodes=num_edge_nodes,
        num_metros=num_metros,
        cities=tuple(all_cities[:num_metros]),
        seed=seed,
    )
    return metro_edge_cloud_topology(config)
