"""The geo-distributed substrate network.

:class:`SubstrateNetwork` combines :class:`~repro.substrate.node.ComputeNode`
and :class:`~repro.substrate.link.Link` objects on top of a
:class:`networkx.Graph` and provides the operations that placement policies
and the discrete-event simulator need:

* latency-weighted shortest-path routing between any two nodes,
* feasibility-checked allocation/rollback of node resources and path
  bandwidth,
* utilization, cost and load-balance statistics, and
* cheap state snapshots used by the RL state encoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.substrate.geo import GeoPoint, propagation_latency_ms
from repro.substrate.ledger import SubstrateLedger
from repro.substrate.link import (
    InsufficientBandwidthError,
    Link,
    canonical_endpoints,
)
from repro.substrate.node import ComputeNode, InsufficientCapacityError, NodeTier
from repro.substrate.resources import ResourceVector


class UnknownNodeError(KeyError):
    """Raised when an operation references a node id not in the network."""


class NoRouteError(RuntimeError):
    """Raised when two nodes are not connected in the substrate graph."""


#: Routing backends of :class:`SubstrateNetwork`.
#:
#: * ``"dense"``     — precomputed all-pairs latency matrix + next-hop table;
#:                     lookups are O(1) array reads (the default).
#: * ``"cached"``    — per-pair networkx Dijkstra memoized under a canonical
#:                     ``(min, max)`` key (the seed's strategy).
#: * ``"per_query"`` — networkx Dijkstra on every call, no cache.  This is the
#:                     pre-change reference path kept for equivalence tests
#:                     and the ``bench_envstep`` baseline.
ROUTING_MODES = ("dense", "cached", "per_query")


class DenseRouting:
    """All-pairs latency matrix and next-hop table over a fixed topology.

    Built once per topology with a vectorized Floyd–Warshall sweep:
    ``latency[i, j]`` is the latency-shortest distance between the i-th and
    j-th node (``inf`` when disconnected) and ``next_hop[i, j]`` is the row
    index of the next node on that path (``-1`` when disconnected), so path
    reconstruction is a simple array walk with no graph traversal.
    """

    def __init__(self, network: "SubstrateNetwork") -> None:
        ids = list(network.node_ids)
        self.node_ids = ids
        self.index: Dict[int, int] = {node_id: i for i, node_id in enumerate(ids)}
        n = len(ids)
        latency = np.full((n, n), np.inf)
        next_hop = np.full((n, n), -1, dtype=np.int64)
        diag = np.arange(n)
        latency[diag, diag] = 0.0
        next_hop[diag, diag] = diag
        for link in network.links():
            u, v = link.endpoints
            i, j = self.index[u], self.index[v]
            if link.latency_ms < latency[i, j]:
                latency[i, j] = latency[j, i] = link.latency_ms
                next_hop[i, j] = j
                next_hop[j, i] = i
        # Vectorized Floyd–Warshall: one (n, n) relaxation per pivot.
        for k in range(n):
            via = latency[:, k, None] + latency[None, k, :]
            better = via < latency
            if better.any():
                latency = np.where(better, via, latency)
                next_hop = np.where(better, next_hop[:, k, None], next_hop)
        self.latency = latency
        self.next_hop = next_hop

    def walk(self, source: int, target: int) -> Tuple[int, ...]:
        """Reconstruct the node-id sequence of the shortest path."""
        i, j = self.index[source], self.index[target]
        if self.next_hop[i, j] < 0:
            raise NoRouteError(f"no route between {source} and {target}")
        hops = self.next_hop[:, j]
        sequence = [source]
        while i != j:
            i = int(hops[i])
            sequence.append(self.node_ids[i])
        return tuple(sequence)


@dataclass(frozen=True)
class PathInfo:
    """A routed path with its aggregate latency."""

    nodes: Tuple[int, ...]
    latency_ms: float

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return max(0, len(self.nodes) - 1)

    def links(self) -> List[Tuple[int, int]]:
        """Canonical endpoint pairs of the links along the path."""
        return [
            canonical_endpoints(self.nodes[i], self.nodes[i + 1])
            for i in range(len(self.nodes) - 1)
        ]


class SubstrateNetwork:
    """A capacitated, latency-weighted graph of edge and cloud nodes."""

    def __init__(self, routing: str = "dense") -> None:
        if routing not in ROUTING_MODES:
            raise ValueError(f"routing must be one of {ROUTING_MODES}, got {routing!r}")
        self._graph = nx.Graph()
        self._nodes: Dict[int, ComputeNode] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        #: Routed paths memoized under their canonical (min, max) id pair.
        self._path_cache: Dict[Tuple[int, int], PathInfo] = {}
        self.routing = routing
        self._dense: Optional[DenseRouting] = None
        self._ledger: Optional[SubstrateLedger] = None

    def _invalidate_topology_caches(self) -> None:
        """Drop every derived structure after a topology mutation."""
        self._path_cache.clear()
        self._dense = None
        if self._ledger is not None:
            # Detach the stale mirror so objects stop writing through to it.
            for row, node in enumerate(self._nodes.values()):
                if node._ledger is self._ledger:
                    node._ledger = None
            for link in self._links.values():
                if link._ledger is self._ledger:
                    link._ledger = None
            self._ledger = None

    @property
    def ledger(self) -> SubstrateLedger:
        """The array-backed resource ledger (built lazily, kept in sync)."""
        if self._ledger is None:
            self._ledger = SubstrateLedger(self)
        return self._ledger

    @property
    def dense_routing(self) -> DenseRouting:
        """The all-pairs latency matrix / next-hop table (built lazily)."""
        if self._dense is None:
            self._dense = DenseRouting(self)
        return self._dense

    @property
    def latency_matrix(self) -> np.ndarray:
        """All-pairs shortest-path latency matrix in ledger row order."""
        return self.dense_routing.latency

    def latency_row(self, node_id: int) -> np.ndarray:
        """Shortest-path latencies from ``node_id`` to every node (row view)."""
        dense = self.dense_routing
        try:
            return dense.latency[dense.index[node_id]]
        except KeyError as exc:
            raise UnknownNodeError(f"unknown node id {node_id}") from exc

    def prepare(self) -> "SubstrateNetwork":
        """Eagerly build the dense routing tables and the resource ledger.

        Topology generators call this once after construction so that the
        first ``env.step()`` does not pay the build cost.
        """
        self.dense_routing
        self.ledger
        return self

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: ComputeNode) -> None:
        """Register a compute node.  Node ids must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already present")
        self._nodes[node.node_id] = node
        self._graph.add_node(node.node_id)
        self._invalidate_topology_caches()

    def add_link(
        self,
        u: int,
        v: int,
        bandwidth_capacity: float,
        latency_ms: Optional[float] = None,
        cost_per_mbps: float = 0.0005,
    ) -> Link:
        """Connect two registered nodes.

        When ``latency_ms`` is omitted it is derived from the geographic
        distance between the endpoints via the fibre propagation model.
        """
        for node_id in (u, v):
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node id {node_id}")
        key = canonical_endpoints(u, v)
        if key in self._links:
            raise ValueError(f"link {key} already present")
        if latency_ms is None:
            latency_ms = propagation_latency_ms(
                self._nodes[u].location, self._nodes[v].location
            )
        link = Link(
            endpoints=key,
            bandwidth_capacity=bandwidth_capacity,
            latency_ms=latency_ms,
            cost_per_mbps=cost_per_mbps,
        )
        self._links[key] = link
        self._graph.add_edge(*key, latency=latency_ms)
        self._invalidate_topology_caches()
        return link

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def node_ids(self) -> List[int]:
        """All node ids in insertion order."""
        return list(self._nodes.keys())

    @property
    def edge_node_ids(self) -> List[int]:
        """Ids of edge-tier nodes."""
        return [nid for nid, node in self._nodes.items() if node.is_edge]

    @property
    def cloud_node_ids(self) -> List[int]:
        """Ids of cloud-tier nodes."""
        return [nid for nid, node in self._nodes.items() if node.is_cloud]

    @property
    def num_nodes(self) -> int:
        """Total number of compute nodes."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Total number of links."""
        return len(self._links)

    def node(self, node_id: int) -> ComputeNode:
        """Return the node with ``node_id`` or raise :class:`UnknownNodeError`."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise UnknownNodeError(f"unknown node id {node_id}") from exc

    def nodes(self) -> Iterable[ComputeNode]:
        """Iterate over all compute nodes."""
        return self._nodes.values()

    def link(self, u: int, v: int) -> Link:
        """Return the link connecting ``u`` and ``v``."""
        key = canonical_endpoints(u, v)
        if key not in self._links:
            raise UnknownNodeError(f"no link between {u} and {v}")
        return self._links[key]

    def links(self) -> Iterable[Link]:
        """Iterate over all links."""
        return self._links.values()

    def has_link(self, u: int, v: int) -> bool:
        """True if nodes ``u`` and ``v`` are directly connected."""
        return canonical_endpoints(u, v) in self._links

    def neighbors(self, node_id: int) -> List[int]:
        """Node ids directly connected to ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"unknown node id {node_id}")
        return list(self._graph.neighbors(node_id))

    def is_connected(self) -> bool:
        """True when every node can reach every other node."""
        if self.num_nodes <= 1:
            return True
        return nx.is_connected(self._graph)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _nx_shortest_path(self, source: int, target: int) -> Tuple[Tuple[int, ...], float]:
        """Reference per-query routing: one networkx Dijkstra call."""
        try:
            nodes = nx.shortest_path(self._graph, source, target, weight="latency")
        except nx.NetworkXNoPath as exc:
            raise NoRouteError(f"no route between {source} and {target}") from exc
        return tuple(nodes), self.path_latency(nodes)

    def shortest_path(self, source: int, target: int) -> PathInfo:
        """Latency-shortest path between two nodes.

        In ``"dense"`` mode the path is reconstructed by walking the
        precomputed next-hop table; in ``"cached"`` mode it is computed with
        networkx Dijkstra; ``"per_query"`` recomputes on every call.  Routed
        paths are memoized under the canonical ``(min, max)`` id pair — the
        reverse orientation is a cheap tuple reversal, never a second cache
        entry.  Caches are invalidated whenever topology changes; bandwidth
        reservations do not change the latency metric so routing stays stable
        within an episode, matching the behaviour of latency-based routing in
        SDN controllers.
        """
        for node_id in (source, target):
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node id {node_id}")
        if source == target:
            return PathInfo(nodes=(source,), latency_ms=0.0)
        if self.routing == "per_query":
            nodes, latency = self._nx_shortest_path(source, target)
            return PathInfo(nodes=nodes, latency_ms=latency)
        key = canonical_endpoints(source, target)
        cached = self._path_cache.get(key)
        if cached is None:
            if self.routing == "dense":
                dense = self.dense_routing
                nodes = dense.walk(*key)
                latency = float(dense.latency[dense.index[key[0]], dense.index[key[1]]])
            else:
                nodes, latency = self._nx_shortest_path(*key)
            cached = PathInfo(nodes=nodes, latency_ms=latency)
            self._path_cache[key] = cached
        if source == key[0]:
            return cached
        return PathInfo(nodes=cached.nodes[::-1], latency_ms=cached.latency_ms)

    def path_latency(self, nodes: Sequence[int]) -> float:
        """Total latency along an explicit node sequence."""
        total = 0.0
        for i in range(len(nodes) - 1):
            total += self.link(nodes[i], nodes[i + 1]).latency_ms
        return total

    def latency_between(self, source: int, target: int) -> float:
        """Latency of the shortest path between two nodes.

        In ``"dense"`` mode this is a single O(1) matrix lookup.
        """
        if self.routing == "dense":
            dense = self.dense_routing
            try:
                value = dense.latency[dense.index[source], dense.index[target]]
            except KeyError as exc:
                raise UnknownNodeError(f"unknown node id {exc.args[0]}") from exc
            if value == np.inf:
                raise NoRouteError(f"no route between {source} and {target}")
            return float(value)
        return self.shortest_path(source, target).latency_ms

    def path_available_bandwidth(self, nodes: Sequence[int]) -> float:
        """Bottleneck free bandwidth along an explicit node sequence."""
        if len(nodes) <= 1:
            return float("inf")
        if self.routing == "dense":
            return self.ledger.path_available_bandwidth(nodes)
        return min(
            self.link(nodes[i], nodes[i + 1]).available_bandwidth
            for i in range(len(nodes) - 1)
        )

    def path_can_carry(self, nodes: Sequence[int], bandwidth: float) -> bool:
        """True when every link along the path can carry ``bandwidth``."""
        return self.path_available_bandwidth(nodes) + 1e-9 >= bandwidth

    # ------------------------------------------------------------------ #
    # Allocation (nodes + paths) with rollback on partial failure
    # ------------------------------------------------------------------ #
    def allocate_node(self, node_id: int, handle: str, demand: ResourceVector) -> None:
        """Reserve node resources under ``handle``."""
        self.node(node_id).allocate(handle, demand)

    def release_node(self, node_id: int, handle: str) -> None:
        """Free node resources stored under ``handle``."""
        self.node(node_id).release(handle)

    def allocate_path(
        self, nodes: Sequence[int], handle: str, bandwidth: float
    ) -> None:
        """Reserve ``bandwidth`` on every link of a path, atomically.

        If any link rejects the reservation, reservations already made under
        the same handle are rolled back before re-raising, so a failed
        allocation never leaks bandwidth.
        """
        reserved: List[Tuple[int, int]] = []
        try:
            for i in range(len(nodes) - 1):
                link = self.link(nodes[i], nodes[i + 1])
                link.reserve(handle, bandwidth)
                reserved.append(link.endpoints)
        except InsufficientBandwidthError:
            for endpoints in reserved:
                self._links[endpoints].release(handle)
            raise

    def release_path(self, nodes: Sequence[int], handle: str) -> None:
        """Free a path reservation made under ``handle``.

        Links that do not hold the handle are skipped so that rollback after
        partial allocation failures stays idempotent.
        """
        for i in range(len(nodes) - 1):
            link = self.link(nodes[i], nodes[i + 1])
            if link.holds(handle):
                link.release(handle)

    def reset(self) -> None:
        """Clear all allocations on every node and link."""
        for node in self._nodes.values():
            node.reset()
        for link in self._links.values():
            link.reset()

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def _tier_mask(self, tier: Optional[NodeTier]) -> np.ndarray:
        ledger = self.ledger
        if tier is None:
            return np.ones(ledger.num_nodes, dtype=bool)
        return ledger.edge_tier_mask if tier is NodeTier.EDGE else ledger.cloud_tier_mask

    def total_capacity(self, tier: Optional[NodeTier] = None) -> ResourceVector:
        """Aggregate capacity, optionally restricted to one tier."""
        if not self._nodes:
            return ResourceVector.zero()
        ledger = self.ledger
        return ResourceVector.from_array(
            ledger.node_capacity[self._tier_mask(tier)].sum(axis=0)
        )

    def total_used(self, tier: Optional[NodeTier] = None) -> ResourceVector:
        """Aggregate used resources, optionally restricted to one tier."""
        if not self._nodes:
            return ResourceVector.zero()
        ledger = self.ledger
        return ResourceVector.from_array(
            ledger.node_used[self._tier_mask(tier)].sum(axis=0)
        )

    def mean_node_utilization(self, tier: Optional[NodeTier] = None) -> float:
        """Mean of per-node bottleneck utilizations."""
        if not self._nodes:
            return 0.0
        values = self.ledger.max_utilization()[self._tier_mask(tier)]
        return float(values.mean()) if values.size else 0.0

    def utilization_imbalance(self, tier: Optional[NodeTier] = None) -> float:
        """Standard deviation of per-node utilizations (load-balance metric)."""
        if not self._nodes:
            return 0.0
        values = self.ledger.max_utilization()[self._tier_mask(tier)]
        return float(values.std()) if values.size else 0.0

    def compute_cost_rate(self) -> float:
        """Instantaneous cost rate of all node and link allocations."""
        if not self._nodes:
            return 0.0
        return self.ledger.cost_rate()

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the whole substrate."""
        return {
            "num_nodes": self.num_nodes,
            "num_edge_nodes": len(self.edge_node_ids),
            "num_cloud_nodes": len(self.cloud_node_ids),
            "num_links": self.num_links,
            "mean_edge_utilization": self.mean_node_utilization(NodeTier.EDGE),
            "utilization_imbalance": self.utilization_imbalance(NodeTier.EDGE),
            "cost_rate": self.compute_cost_rate(),
            "nodes": [node.snapshot() for node in self._nodes.values()],
        }

    # ------------------------------------------------------------------ #
    # Geo helpers
    # ------------------------------------------------------------------ #
    def nearest_node(
        self, point: GeoPoint, tier: Optional[NodeTier] = None
    ) -> int:
        """Node id geographically closest to ``point``."""
        candidates = [
            node
            for node in self._nodes.values()
            if tier is None or node.tier is tier
        ]
        if not candidates:
            raise UnknownNodeError("network has no nodes of the requested tier")
        best = min(candidates, key=lambda node: point.distance_km(node.location))
        return best.node_id

    def nodes_sorted_by_latency_from(self, source: int) -> List[int]:
        """All node ids sorted by routed latency from ``source``."""
        if self.routing == "dense":
            dense = self.dense_routing
            order = np.argsort(self.latency_row(source), kind="stable")
            return [dense.node_ids[i] for i in order]
        return sorted(
            self.node_ids, key=lambda nid: self.latency_between(source, nid)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubstrateNetwork(nodes={self.num_nodes}, links={self.num_links}, "
            f"edges={len(self.edge_node_ids)}, clouds={len(self.cloud_node_ids)})"
        )
