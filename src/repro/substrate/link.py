"""Capacitated, latency-weighted links between substrate nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.utils.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.substrate.ledger import SubstrateLedger


class InsufficientBandwidthError(RuntimeError):
    """Raised when a bandwidth reservation exceeds a link's free capacity."""


class UnknownReservationError(KeyError):
    """Raised when releasing a bandwidth reservation a link does not hold."""


def canonical_endpoints(u: int, v: int) -> Tuple[int, int]:
    """Return link endpoints in canonical (sorted) order.

    Substrate links are undirected; storing them keyed by the sorted endpoint
    pair lets lookups succeed regardless of traversal direction.
    """
    if u == v:
        raise ValueError(f"links must connect distinct nodes, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass
class Link:
    """An undirected link with bandwidth capacity and propagation latency.

    Parameters
    ----------
    endpoints:
        Canonical (smaller id, larger id) node pair.
    bandwidth_capacity:
        Capacity in Mbps.
    latency_ms:
        One-way propagation plus switching latency in milliseconds.
    cost_per_mbps:
        Price per reserved Mbps per time unit, used by the cost metric.
    """

    endpoints: Tuple[int, int]
    bandwidth_capacity: float
    latency_ms: float
    cost_per_mbps: float = 0.0005

    def __post_init__(self) -> None:
        self.endpoints = canonical_endpoints(*self.endpoints)
        check_positive(self.bandwidth_capacity, "bandwidth_capacity")
        check_non_negative(self.latency_ms, "latency_ms")
        check_non_negative(self.cost_per_mbps, "cost_per_mbps")
        self._reservations: Dict[str, float] = {}
        self._used = 0.0
        self._ledger: Optional["SubstrateLedger"] = None
        self._ledger_slot = -1

    def _bind_ledger(self, ledger: Optional["SubstrateLedger"], slot: int) -> None:
        """Attach (or detach) the array-backed ledger mirroring this link."""
        self._ledger = ledger
        self._ledger_slot = slot
        self._sync_ledger()

    def _sync_ledger(self) -> None:
        if self._ledger is not None:
            self._ledger.sync_link(self._ledger_slot, self._used)

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #
    @property
    def used_bandwidth(self) -> float:
        """Bandwidth currently reserved on this link (Mbps)."""
        return self._used

    @property
    def available_bandwidth(self) -> float:
        """Bandwidth still free on this link (Mbps)."""
        return max(0.0, self.bandwidth_capacity - self._used)

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently reserved."""
        return self._used / self.bandwidth_capacity

    def can_carry(self, bandwidth: float) -> bool:
        """True when ``bandwidth`` Mbps fits in the free capacity."""
        return bandwidth <= self.available_bandwidth + 1e-9

    # ------------------------------------------------------------------ #
    # Reservation lifecycle
    # ------------------------------------------------------------------ #
    def reserve(self, handle: str, bandwidth: float) -> None:
        """Reserve ``bandwidth`` Mbps under ``handle``."""
        check_non_negative(bandwidth, "bandwidth")
        if handle in self._reservations:
            raise ValueError(
                f"reservation handle {handle!r} already exists on link {self.endpoints}"
            )
        if not self.can_carry(bandwidth):
            raise InsufficientBandwidthError(
                f"link {self.endpoints} cannot carry {bandwidth} Mbps "
                f"(available {self.available_bandwidth:.3f} Mbps)"
            )
        self._reservations[handle] = bandwidth
        self._used += bandwidth
        self._sync_ledger()

    def release(self, handle: str) -> float:
        """Free the reservation stored under ``handle`` and return it."""
        if handle not in self._reservations:
            raise UnknownReservationError(
                f"link {self.endpoints} holds no reservation {handle!r}"
            )
        bandwidth = self._reservations.pop(handle)
        self._used = max(0.0, self._used - bandwidth)
        self._sync_ledger()
        return bandwidth

    def holds(self, handle: str) -> bool:
        """True if the link currently holds a reservation for ``handle``."""
        return handle in self._reservations

    def reset(self) -> None:
        """Drop all reservations (start of an episode)."""
        self._reservations.clear()
        self._used = 0.0
        self._sync_ledger()

    # ------------------------------------------------------------------ #
    # Cost and introspection
    # ------------------------------------------------------------------ #
    def usage_cost_rate(self) -> float:
        """Cost per unit time of the link's current reservations."""
        return self._used * self.cost_per_mbps

    def transport_cost(self, bandwidth: float, duration: float) -> float:
        """Cost of carrying ``bandwidth`` Mbps for ``duration`` time units."""
        check_non_negative(bandwidth, "bandwidth")
        check_non_negative(duration, "duration")
        return bandwidth * self.cost_per_mbps * duration

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary of the link's state."""
        return {
            "endpoints": list(self.endpoints),
            "bandwidth_capacity": self.bandwidth_capacity,
            "used_bandwidth": self._used,
            "latency_ms": self.latency_ms,
            "utilization": self.utilization,
            "reservations": len(self._reservations),
        }
