"""Array-backed resource ledger for the substrate.

The :class:`SubstrateLedger` mirrors the per-object bookkeeping of
:class:`~repro.substrate.node.ComputeNode` and
:class:`~repro.substrate.link.Link` into contiguous numpy arrays:

* ``node_capacity`` / ``node_used`` — ``(num_nodes, 3)`` matrices in the
  canonical ``(cpu, memory, storage)`` dimension order,
* ``link_capacity`` / ``link_used`` / ``link_latency`` / ``link_cost`` —
  ``(num_links,)`` vectors addressed through ``edge_index``, a map from
  canonical link endpoints to array slot.

Nodes and links keep their object API (allocation handles, rollback,
snapshots) and *write through* to the ledger on every mutation, so the arrays
are always exact mirrors.  Hot paths — state encoding, action masking,
placement feasibility, utilization statistics — read whole columns at once
instead of looping node-by-node or link-by-link.

The ledger is built lazily by :attr:`SubstrateNetwork.ledger` and invalidated
only on topology mutation (``add_node`` / ``add_link``); allocations and
releases never invalidate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.substrate.link import canonical_endpoints

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.substrate.network import SubstrateNetwork

#: Feasibility tolerance shared with the object-level checks.
CAPACITY_TOL = 1e-9


class SubstrateLedger:
    """Contiguous-array mirror of one substrate's nodes and links."""

    def __init__(self, network: "SubstrateNetwork") -> None:
        nodes = list(network.nodes())
        links = list(network.links())

        # --- node-side arrays ------------------------------------------- #
        self.node_ids: List[int] = [node.node_id for node in nodes]
        self.node_row: Dict[int, int] = {
            node_id: row for row, node_id in enumerate(self.node_ids)
        }
        self.node_capacity = (
            np.stack([node.capacity.as_array() for node in nodes])
            if nodes
            else np.zeros((0, 3))
        )
        # Zero-capacity dimensions report 0.0 utilization (x / inf == 0).
        self.node_capacity_safe = np.where(
            self.node_capacity > 0, self.node_capacity, np.inf
        )
        self.node_used = np.zeros_like(self.node_capacity)
        self.node_cost_per_unit = (
            np.stack([node.cost_per_unit.as_array() for node in nodes])
            if nodes
            else np.zeros((0, 3))
        )
        self.node_activation_cost = np.array(
            [node.activation_cost for node in nodes], dtype=float
        )
        self.node_alloc_count = np.zeros(len(nodes), dtype=np.int64)
        self.edge_tier_mask = np.array([node.is_edge for node in nodes], dtype=bool)
        self.cloud_tier_mask = ~self.edge_tier_mask

        # --- link-side arrays ------------------------------------------- #
        self.link_endpoints = (
            np.array([link.endpoints for link in links], dtype=np.int64)
            if links
            else np.zeros((0, 2), dtype=np.int64)
        )
        self.edge_index: Dict[Tuple[int, int], int] = {
            link.endpoints: slot for slot, link in enumerate(links)
        }
        self.link_capacity = np.array(
            [link.bandwidth_capacity for link in links], dtype=float
        )
        self.link_used = np.zeros(len(links), dtype=float)
        self.link_latency = np.array([link.latency_ms for link in links], dtype=float)
        self.link_cost = np.array([link.cost_per_mbps for link in links], dtype=float)

        #: Memo of path node-sequence -> link slot array (paths repeat a lot
        #: because routed paths are themselves cached per node pair).
        self._path_edge_cache: Dict[Tuple[int, ...], np.ndarray] = {}

        # Version counter bumped on every node mutation; derived matrices
        # (utilization, per-node max utilization) are memoized against it so
        # several reads between mutations share one computation.
        self._node_version = 0
        self._util_version = -1
        self._util_matrix: np.ndarray = np.zeros_like(self.node_capacity)
        self._max_util_version = -1
        self._max_util: np.ndarray = np.zeros(len(nodes))
        self._capacity_plus_tol = self.node_capacity + CAPACITY_TOL
        self._free_tol_version = -1
        self._free_tol: np.ndarray = np.zeros_like(self.node_capacity)
        # Single-entry memo for can_host_all: the encoder and the action mask
        # query the same demand in the same decision step.
        self._can_host_key: Tuple[int, bytes] = (-1, b"")
        self._can_host_result: np.ndarray = np.zeros(len(nodes), dtype=bool)

        # Bind write-through mirrors; binding copies current object state in.
        for row, node in enumerate(nodes):
            node._bind_ledger(self, row)
        for slot, link in enumerate(links):
            link._bind_ledger(self, slot)

    # ------------------------------------------------------------------ #
    # Write-through hooks (called by ComputeNode / Link on every mutation)
    # ------------------------------------------------------------------ #
    def sync_node(self, row: int, used: np.ndarray, alloc_count: int) -> None:
        """Mirror one node's usage vector and live-allocation count."""
        self.node_used[row] = used
        self.node_alloc_count[row] = alloc_count
        self._node_version += 1

    def sync_link(self, slot: int, used: float) -> None:
        """Mirror one link's reserved bandwidth."""
        self.link_used[slot] = used

    # ------------------------------------------------------------------ #
    # Vectorized node queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of mirrored compute nodes."""
        return len(self.node_ids)

    @property
    def num_links(self) -> int:
        """Number of mirrored links."""
        return len(self.link_capacity)

    def node_available(self) -> np.ndarray:
        """Free capacity per node, ``(num_nodes, 3)``, clamped at zero."""
        return np.maximum(self.node_capacity - self.node_used, 0.0)

    def can_host_all(self, demand: np.ndarray) -> np.ndarray:
        """Vectorized feasibility: which nodes can host ``demand``.

        ``demand`` is a ``(3,)`` array in canonical dimension order; the
        result is a boolean vector over ledger rows, equivalent to calling
        :meth:`ComputeNode.can_host` on every node.  Treat it as read-only:
        consecutive queries for the same demand (the encoder and the action
        mask of one decision) share one memoized computation.
        """
        key = (self._node_version, demand.tobytes())
        if key != self._can_host_key:
            if self._free_tol_version != self._node_version:
                np.subtract(self._capacity_plus_tol, self.node_used, out=self._free_tol)
                self._free_tol_version = self._node_version
            self._can_host_result = (demand <= self._free_tol).all(axis=1)
            self._can_host_key = key
        return self._can_host_result

    def utilization_matrix(self) -> np.ndarray:
        """Per-node, per-dimension utilization ratios, ``(num_nodes, 3)``.

        Memoized against the node mutation counter; treat as read-only.
        """
        if self._util_version != self._node_version:
            np.divide(self.node_used, self.node_capacity_safe, out=self._util_matrix)
            self._util_version = self._node_version
        return self._util_matrix

    def max_utilization(self) -> np.ndarray:
        """Per-node bottleneck (largest-dimension) utilization, ``(num_nodes,)``.

        Memoized against the node mutation counter; treat as read-only.
        """
        if self.num_nodes == 0:
            return np.zeros(0)
        if self._max_util_version != self._node_version:
            np.max(self.utilization_matrix(), axis=1, out=self._max_util)
            self._max_util_version = self._node_version
        return self._max_util

    def utilization_stats(self, edge_only: bool = True) -> Tuple[float, float]:
        """(mean, standard deviation) of per-node bottleneck utilizations."""
        values = self.max_utilization()
        if edge_only:
            values = values[self.edge_tier_mask]
        if values.size == 0:
            return 0.0, 0.0
        mean = float(values.mean())
        return mean, float(np.sqrt(np.mean((values - mean) ** 2)))

    def cost_rate(self) -> float:
        """Instantaneous cost rate of all node and link allocations."""
        node_cost = float(np.sum(self.node_used * self.node_cost_per_unit))
        node_cost += float(
            np.sum(self.node_activation_cost[self.node_alloc_count > 0])
        )
        link_cost = float(self.link_used @ self.link_cost)
        return node_cost + link_cost

    # ------------------------------------------------------------------ #
    # Vectorized link / path queries
    # ------------------------------------------------------------------ #
    def link_available(self) -> np.ndarray:
        """Free bandwidth per link, ``(num_links,)``, clamped at zero."""
        return np.maximum(self.link_capacity - self.link_used, 0.0)

    def _path_entry(self, nodes: Sequence[int]) -> Tuple[np.ndarray, float]:
        """Memoized (link slots, cost-per-Mbps sum) of an explicit path."""
        key = tuple(nodes)
        cached = self._path_edge_cache.get(key)
        if cached is None:
            slots = np.array(
                [
                    self.edge_index[canonical_endpoints(key[i], key[i + 1])]
                    for i in range(len(key) - 1)
                ],
                dtype=np.int64,
            )
            cost = float(self.link_cost[slots].sum()) if slots.size else 0.0
            cached = (slots, cost)
            self._path_edge_cache[key] = cached
        return cached

    def path_entry(self, nodes: Sequence[int]) -> Tuple[np.ndarray, float]:
        """(link slots, cost-per-Mbps sum) of an explicit path (memoized).

        One lookup serving consumers that need both halves — e.g. the SoA
        environment core's shared routed-path cache — without paying the memo
        probe twice.
        """
        return self._path_entry(nodes)

    def path_edge_indices(self, nodes: Sequence[int]) -> np.ndarray:
        """Ledger slots of the links along an explicit node sequence (memoized)."""
        return self._path_entry(nodes)[0]

    def path_cost_per_mbps(self, nodes: Sequence[int]) -> float:
        """Sum of per-Mbps link costs along an explicit node sequence (memoized)."""
        return self._path_entry(nodes)[1]

    def path_available_bandwidth(self, nodes: Sequence[int]) -> float:
        """Bottleneck free bandwidth along an explicit node sequence."""
        slots = self.path_edge_indices(nodes)
        if slots.size == 0:
            return float("inf")
        return float(np.min(self.link_capacity[slots] - self.link_used[slots]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubstrateLedger(nodes={self.num_nodes}, links={self.num_links})"
        )


class LedgerRowCache:
    """Maps a fixed node ordering to ledger row indices, surviving rebuilds.

    The state encoder and the action space iterate substrate nodes in one
    frozen order.  This cache translates that order into ledger rows once per
    ledger build and detects the common identity case (node order == ledger
    order), which lets consumers skip the fancy-indexing gathers entirely.
    """

    def __init__(self, node_order: Sequence[int]) -> None:
        self.node_order: List[int] = list(node_order)
        self.identity = False
        self._rows: np.ndarray = np.zeros(0, dtype=np.int64)
        self._ledger: "SubstrateLedger" = None  # type: ignore[assignment]

    def get(self, network: "SubstrateNetwork") -> Tuple["SubstrateLedger", np.ndarray]:
        """The network's current ledger and this ordering's row indices."""
        ledger = network.ledger
        if self._ledger is not ledger:
            self._rows = np.array(
                [ledger.node_row[node_id] for node_id in self.node_order],
                dtype=np.int64,
            )
            self.identity = len(self._rows) == ledger.num_nodes and bool(
                np.array_equal(self._rows, np.arange(len(self._rows)))
            )
            self._ledger = ledger
        return ledger, self._rows
