"""Geographic coordinates and propagation-latency modelling.

Geo-distributed edge computing derives its latency structure from physical
distance: an edge cluster co-located with a base station is sub-millisecond
away, a metro aggregation site a few milliseconds, and the central cloud tens
of milliseconds.  This module provides the coordinate arithmetic and the
distance-to-latency model used by the substrate network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_in_range, check_positive

#: Mean Earth radius in kilometres, used by the haversine formula.
EARTH_RADIUS_KM = 6371.0

#: Speed of light in fibre is roughly 2/3 of c; about 5 microseconds per km.
FIBER_LATENCY_MS_PER_KM = 0.005

#: Fixed per-hop switching/queueing latency added on top of propagation.
DEFAULT_HOP_OVERHEAD_MS = 0.35


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude pair in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        check_in_range(self.latitude, -90.0, 90.0, "latitude")
        check_in_range(self.longitude, -180.0, 180.0, "longitude")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` using the haversine formula."""
        return haversine_km(self, other)

    def as_tuple(self) -> Tuple[float, float]:
        """Return (latitude, longitude)."""
        return (self.latitude, self.longitude)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(
        dlon / 2.0
    ) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_latency_ms(
    a: GeoPoint,
    b: GeoPoint,
    ms_per_km: float = FIBER_LATENCY_MS_PER_KM,
    hop_overhead_ms: float = DEFAULT_HOP_OVERHEAD_MS,
    path_stretch: float = 1.3,
) -> float:
    """Estimate one-way latency between two geographic points.

    Parameters
    ----------
    ms_per_km:
        Propagation delay per kilometre of fibre.
    hop_overhead_ms:
        Fixed switching/queueing overhead added per link.
    path_stretch:
        Fibre paths are never great circles; the stretch factor inflates the
        geodesic distance to approximate real routed distance.
    """
    check_positive(path_stretch, "path_stretch")
    distance = haversine_km(a, b) * path_stretch
    return distance * ms_per_km + hop_overhead_ms


#: A small catalogue of metro areas used by the topology presets.  The exact
#: cities are not important; the spread of pairwise distances (a few km within
#: a metro, hundreds to thousands of km towards the cloud region) is what the
#: placement problem is sensitive to.
CITY_COORDINATES: Dict[str, GeoPoint] = {
    "new_york": GeoPoint(40.7128, -74.0060),
    "newark": GeoPoint(40.7357, -74.1724),
    "philadelphia": GeoPoint(39.9526, -75.1652),
    "boston": GeoPoint(42.3601, -71.0589),
    "washington": GeoPoint(38.9072, -77.0369),
    "chicago": GeoPoint(41.8781, -87.6298),
    "atlanta": GeoPoint(33.7490, -84.3880),
    "dallas": GeoPoint(32.7767, -96.7970),
    "denver": GeoPoint(39.7392, -104.9903),
    "seattle": GeoPoint(47.6062, -122.3321),
    "san_francisco": GeoPoint(37.7749, -122.4194),
    "los_angeles": GeoPoint(34.0522, -118.2437),
    "miami": GeoPoint(25.7617, -80.1918),
    "toronto": GeoPoint(43.6532, -79.3832),
    "london": GeoPoint(51.5074, -0.1278),
    "frankfurt": GeoPoint(50.1109, 8.6821),
}


def random_points_near(
    center: GeoPoint,
    count: int,
    radius_km: float,
    seed: RandomState = None,
) -> List[GeoPoint]:
    """Scatter ``count`` points uniformly within ``radius_km`` of ``center``.

    Used to generate edge-site locations around a metro centre.  The sampling
    is uniform over the disk area (not the radius) so that sites do not
    cluster artificially near the centre.
    """
    check_positive(radius_km, "radius_km")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = new_rng(seed)
    points: List[GeoPoint] = []
    for _ in range(count):
        # Uniform over the disk: radius ~ sqrt(U) * R.
        distance = radius_km * math.sqrt(rng.uniform())
        bearing = rng.uniform(0.0, 2.0 * math.pi)
        # Small-distance approximation of moving `distance` along `bearing`.
        dlat = (distance / EARTH_RADIUS_KM) * math.cos(bearing)
        dlon = (
            (distance / EARTH_RADIUS_KM)
            * math.sin(bearing)
            / max(1e-9, math.cos(math.radians(center.latitude)))
        )
        points.append(
            GeoPoint(
                latitude=max(-90.0, min(90.0, center.latitude + math.degrees(dlat))),
                longitude=max(
                    -180.0, min(180.0, center.longitude + math.degrees(dlon))
                ),
            )
        )
    return points


def centroid(points: Sequence[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a set of points (adequate at metro scale)."""
    if not points:
        raise ValueError("cannot compute the centroid of zero points")
    return GeoPoint(
        latitude=sum(p.latitude for p in points) / len(points),
        longitude=sum(p.longitude for p in points) / len(points),
    )
