"""Advantage actor-critic (A2C) with n-step bootstrapped advantages."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent, sample_probability_rows
from repro.nn.activations import log_softmax, softmax
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class RolloutLane:
    """Columnar transition storage for one environment lane.

    Keeping one column set per lane lets vectorized training interleave K
    environments while n-step returns are still computed strictly within a
    lane (``dones`` recorded per transition reset the running return at
    episode boundaries, so auto-reset lanes can keep accumulating).
    """

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)
    tail_next_state: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.states)

    def append(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        self.states.append(state)
        self.actions.append(action)
        self.rewards.append(reward)
        self.dones.append(done)
        self.tail_next_state = next_state

    def take(self) -> tuple:
        """Pop the lane's columns as stacked arrays (lane left empty)."""
        columns = (
            np.stack(self.states),
            np.array(self.actions, dtype=int),
            np.array(self.rewards, dtype=float),
            np.array(self.dones, dtype=bool),
            self.tail_next_state,
        )
        self.states.clear()
        self.actions.clear()
        self.rewards.clear()
        self.dones.clear()
        return columns


@dataclass
class A2CConfig:
    """Hyperparameters for the advantage actor-critic agent."""

    hidden_layers: Sequence[int] = (128, 128)
    actor_learning_rate: float = 7e-4
    critic_learning_rate: float = 1e-3
    discount: float = 0.95
    n_steps: int = 8
    entropy_coefficient: float = 0.01
    gradient_clip_norm: float = 10.0

    def __post_init__(self) -> None:
        check_positive(self.actor_learning_rate, "actor_learning_rate")
        check_positive(self.critic_learning_rate, "critic_learning_rate")
        check_probability(self.discount, "discount")
        check_positive(self.n_steps, "n_steps")
        if self.entropy_coefficient < 0:
            raise ValueError("entropy_coefficient must be >= 0")


class ActorCriticAgent(Agent):
    """Synchronous advantage actor-critic.

    Transitions accumulate in a rollout buffer; every ``n_steps`` transitions
    (or at episode end) the agent bootstraps the tail value from the critic,
    computes n-step advantages and applies one actor and one critic update.
    """

    name = "a2c"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        config: Optional[A2CConfig] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        self.config = config or A2CConfig()
        self.actor_network = MLP(
            [state_dim, *self.config.hidden_layers, num_actions],
            seed=derive_seed(seed, "actor"),
        )
        self.critic_network = MLP(
            [state_dim, *self.config.hidden_layers, 1],
            seed=derive_seed(seed, "critic"),
        )
        self.actor_optimizer = Adam(self.config.actor_learning_rate)
        self.critic_optimizer = Adam(self.config.critic_learning_rate)
        self._rng = new_rng(derive_seed(seed, "sampling"))
        # Columnar rollout storage, one column set per environment lane;
        # serial training is simply lane 0.
        self._lanes: List[RolloutLane] = [RolloutLane()]
        self._pending_diagnostics: List[Dict[str, float]] = []
        self.last_actor_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def action_probabilities(
        self, state: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a single state."""
        state = self._validate_state(state)
        logits = self.actor_network.predict(state).ravel().copy()
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).ravel()
            if not mask.any():
                raise ValueError("action mask excludes every action")
            logits[~mask] = -1e9
        return softmax(logits)

    def state_value(self, state: np.ndarray) -> float:
        """The critic's value estimate for a single state."""
        return float(self.critic_network.predict(self._validate_state(state)).ravel()[0])

    def batch_action_probabilities(
        self, states: np.ndarray, masks: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a ``(K, state_dim)`` batch."""
        states = self._validate_states(states)
        logits = np.atleast_2d(self.actor_network.predict(states)).copy()
        if masks is not None:
            masks = self._validate_masks(masks, states.shape[0])
            if (~masks.any(axis=1)).any():
                raise ValueError("action mask excludes every action")
            logits[~masks] = -1e9
        return softmax(logits, axis=1)

    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        probabilities = self.action_probabilities(state, mask)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.num_actions, p=probabilities))

    def select_actions(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """One actor forward for all K lanes, then per-row sampling.

        For a single row this defers to :meth:`select_action` so that K=1
        training consumes the sampling RNG exactly like the serial loop.
        """
        states = self._validate_states(states)
        masks = self._validate_masks(masks, states.shape[0])
        if states.shape[0] == 1:
            return super().select_actions(states, masks, greedy=greedy)
        probabilities = self.batch_action_probabilities(states, masks)
        if greedy:
            return probabilities.argmax(axis=1)
        return sample_probability_rows(self._rng, probabilities)

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._lanes[0].append(
            self._validate_state(state),
            self._validate_action(action),
            float(reward),
            self._validate_state(next_state),
            bool(done),
        )

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: Optional[np.ndarray] = None,
        truncations: Optional[np.ndarray] = None,
    ) -> None:
        """Append row ``i`` to lane ``i``; flush lanes at episode boundaries.

        A lane flushes when its episode terminates (``dones``) or is being
        force-reset at a step cap (``truncations``) — in both cases the lane
        keeps ``done`` as recorded, so a truncated rollout still bootstraps
        its tail from the critic while never accumulating transitions across
        the reset.  This per-episode flush matches the serial trainer, which
        always flushed the rollout remainder at every episode end.
        Diagnostics of boundary flushes surface through the next
        :meth:`update` call.
        """
        states = self._validate_states(states)
        next_states = self._validate_states(next_states)
        actions = np.asarray(actions, dtype=int).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        boundaries = dones.copy()
        if truncations is not None:
            boundaries |= np.asarray(truncations, dtype=bool).ravel()
        self._resize_lanes(states.shape[0])
        for row in range(states.shape[0]):
            self._lanes[row].append(
                states[row],
                self._validate_action(int(actions[row])),
                float(rewards[row]),
                next_states[row],
                bool(dones[row]),
            )
            if boundaries[row]:
                self._pending_diagnostics.append(self._flush_lane(self._lanes[row]))

    def _resize_lanes(self, num_lanes: int) -> None:
        """Grow/shrink lane storage, flushing anything a resize would orphan."""
        if num_lanes == len(self._lanes):
            return
        for lane in self._lanes:
            if len(lane):
                self._pending_diagnostics.append(self._flush_lane(lane))
        self._lanes = [RolloutLane() for _ in range(num_lanes)]

    def update(self) -> Dict[str, float]:
        """Learn from boundary flushes and every lane holding ``n_steps``."""
        flushed = self._pending_diagnostics
        self._pending_diagnostics = []
        flushed.extend(
            self._flush_lane(lane)
            for lane in self._lanes
            if len(lane) >= self.config.n_steps
        )
        return self._mean_diagnostics(flushed)

    def end_episode(self) -> Dict[str, float]:
        """Flush whatever remains in the rollout columns at episode end.

        Unlike REINFORCE, flushing partial rollouts is sound here: the tail
        return bootstraps from the critic, so a chunk-boundary partial
        contributes an ordinary (shorter) n-step update.
        """
        flushed = self._pending_diagnostics
        self._pending_diagnostics = []
        flushed.extend(
            self._flush_lane(lane) for lane in self._lanes if len(lane)
        )
        return self._mean_diagnostics(flushed)

    def _flush_lane(self, lane: RolloutLane) -> Dict[str, float]:
        states, actions, rewards, dones, tail_next_state = lane.take()
        self.training_steps += 1

        # Bootstrapped n-step returns computed backwards from the tail value.
        tail_value = 0.0
        if not dones[-1]:
            tail_value = float(
                self.critic_network.predict(tail_next_state).ravel()[0]
            )
        returns = np.zeros_like(rewards)
        running = tail_value
        for index in range(len(rewards) - 1, -1, -1):
            if dones[index]:
                running = 0.0
            running = rewards[index] + self.config.discount * running
            returns[index] = running

        values = self.critic_network.predict(states).ravel()
        advantages = returns - values

        actor_loss = self._actor_step(states, actions, advantages)
        critic_loss = self.critic_network.fit_batch(
            states,
            returns.reshape(-1, 1),
            optimizer=self.critic_optimizer,
            max_grad_norm=self.config.gradient_clip_norm,
        )
        self.last_actor_loss = actor_loss
        return {
            "actor_loss": actor_loss,
            "critic_loss": float(critic_loss),
            "mean_advantage": float(advantages.mean()),
        }

    def _actor_step(
        self, states: np.ndarray, actions: np.ndarray, advantages: np.ndarray
    ) -> float:
        logits = self.actor_network.forward(states, training=True)
        logits = np.atleast_2d(logits)
        probabilities = softmax(logits, axis=1)
        log_probs = log_softmax(logits, axis=1)
        batch = len(actions)
        rows = np.arange(batch)

        entropy = -np.sum(probabilities * log_probs, axis=1)
        loss = -float(
            np.mean(
                log_probs[rows, actions] * advantages
                + self.config.entropy_coefficient * entropy
            )
        )

        one_hot = np.zeros_like(probabilities)
        one_hot[rows, actions] = 1.0
        grad_logits = (probabilities - one_hot) * advantages[:, None]
        grad_entropy = probabilities * (log_probs + entropy[:, None])
        grad_logits += self.config.entropy_coefficient * grad_entropy
        grad_logits /= batch

        self.actor_network.apply_gradient_step(
            grad_logits, self.actor_optimizer, self.config.gradient_clip_norm
        )
        return loss

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the actor network weights to ``path`` (``.npz``)."""
        return self.actor_network.save(path)

    def load(self, path: Union[str, Path]) -> None:
        """Load actor network weights."""
        self.actor_network = MLP.load(path)
