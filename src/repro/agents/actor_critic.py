"""Advantage actor-critic (A2C) with n-step bootstrapped advantages."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent
from repro.nn.activations import log_softmax, softmax
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class A2CConfig:
    """Hyperparameters for the advantage actor-critic agent."""

    hidden_layers: Sequence[int] = (128, 128)
    actor_learning_rate: float = 7e-4
    critic_learning_rate: float = 1e-3
    discount: float = 0.95
    n_steps: int = 8
    entropy_coefficient: float = 0.01
    gradient_clip_norm: float = 10.0

    def __post_init__(self) -> None:
        check_positive(self.actor_learning_rate, "actor_learning_rate")
        check_positive(self.critic_learning_rate, "critic_learning_rate")
        check_probability(self.discount, "discount")
        check_positive(self.n_steps, "n_steps")
        if self.entropy_coefficient < 0:
            raise ValueError("entropy_coefficient must be >= 0")


class ActorCriticAgent(Agent):
    """Synchronous advantage actor-critic.

    Transitions accumulate in a rollout buffer; every ``n_steps`` transitions
    (or at episode end) the agent bootstraps the tail value from the critic,
    computes n-step advantages and applies one actor and one critic update.
    """

    name = "a2c"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        config: Optional[A2CConfig] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        self.config = config or A2CConfig()
        self.actor_network = MLP(
            [state_dim, *self.config.hidden_layers, num_actions],
            seed=derive_seed(seed, "actor"),
        )
        self.critic_network = MLP(
            [state_dim, *self.config.hidden_layers, 1],
            seed=derive_seed(seed, "critic"),
        )
        self.actor_optimizer = Adam(self.config.actor_learning_rate)
        self.critic_optimizer = Adam(self.config.critic_learning_rate)
        self._rng = new_rng(derive_seed(seed, "sampling"))
        # Columnar rollout storage: one list per field stacks into a batch
        # array in a single pass when the rollout is flushed.
        self._rollout_states: List[np.ndarray] = []
        self._rollout_actions: List[int] = []
        self._rollout_rewards: List[float] = []
        self._rollout_dones: List[bool] = []
        self._last_next_state: Optional[np.ndarray] = None
        self.last_actor_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def action_probabilities(
        self, state: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a single state."""
        state = self._validate_state(state)
        logits = self.actor_network.predict(state).ravel().copy()
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).ravel()
            if not mask.any():
                raise ValueError("action mask excludes every action")
            logits[~mask] = -1e9
        return softmax(logits)

    def state_value(self, state: np.ndarray) -> float:
        """The critic's value estimate for a single state."""
        return float(self.critic_network.predict(self._validate_state(state)).ravel()[0])

    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        probabilities = self.action_probabilities(state, mask)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.num_actions, p=probabilities))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._rollout_states.append(self._validate_state(state))
        self._rollout_actions.append(self._validate_action(action))
        self._rollout_rewards.append(float(reward))
        self._rollout_dones.append(bool(done))
        self._last_next_state = self._validate_state(next_state)

    def update(self) -> Dict[str, float]:
        """Learn once the rollout buffer holds ``n_steps`` transitions."""
        if len(self._rollout_states) < self.config.n_steps:
            return {}
        return self._learn_from_rollout()

    def end_episode(self) -> Dict[str, float]:
        """Flush whatever remains in the rollout buffer at episode end."""
        if not self._rollout_states:
            return {}
        return self._learn_from_rollout()

    def _learn_from_rollout(self) -> Dict[str, float]:
        states = np.stack(self._rollout_states)
        actions = np.array(self._rollout_actions, dtype=int)
        rewards = np.array(self._rollout_rewards, dtype=float)
        dones = np.array(self._rollout_dones, dtype=bool)
        tail_next_state = self._last_next_state
        self._rollout_states.clear()
        self._rollout_actions.clear()
        self._rollout_rewards.clear()
        self._rollout_dones.clear()
        self.training_steps += 1

        # Bootstrapped n-step returns computed backwards from the tail value.
        tail_value = 0.0
        if not dones[-1]:
            tail_value = float(
                self.critic_network.predict(tail_next_state).ravel()[0]
            )
        returns = np.zeros_like(rewards)
        running = tail_value
        for index in range(len(rewards) - 1, -1, -1):
            if dones[index]:
                running = 0.0
            running = rewards[index] + self.config.discount * running
            returns[index] = running

        values = self.critic_network.predict(states).ravel()
        advantages = returns - values

        actor_loss = self._actor_step(states, actions, advantages)
        critic_loss = self.critic_network.fit_batch(
            states,
            returns.reshape(-1, 1),
            optimizer=self.critic_optimizer,
            max_grad_norm=self.config.gradient_clip_norm,
        )
        self.last_actor_loss = actor_loss
        return {
            "actor_loss": actor_loss,
            "critic_loss": float(critic_loss),
            "mean_advantage": float(advantages.mean()),
        }

    def _actor_step(
        self, states: np.ndarray, actions: np.ndarray, advantages: np.ndarray
    ) -> float:
        logits = self.actor_network.forward(states, training=True)
        logits = np.atleast_2d(logits)
        probabilities = softmax(logits, axis=1)
        log_probs = log_softmax(logits, axis=1)
        batch = len(actions)
        rows = np.arange(batch)

        entropy = -np.sum(probabilities * log_probs, axis=1)
        loss = -float(
            np.mean(
                log_probs[rows, actions] * advantages
                + self.config.entropy_coefficient * entropy
            )
        )

        one_hot = np.zeros_like(probabilities)
        one_hot[rows, actions] = 1.0
        grad_logits = (probabilities - one_hot) * advantages[:, None]
        grad_entropy = probabilities * (log_probs + entropy[:, None])
        grad_logits += self.config.entropy_coefficient * grad_entropy
        grad_logits /= batch

        self.actor_network.apply_gradient_step(
            grad_logits, self.actor_optimizer, self.config.gradient_clip_norm
        )
        return loss

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the actor network weights to ``path`` (``.npz``)."""
        return self.actor_network.save(path)

    def load(self, path: Union[str, Path]) -> None:
        """Load actor network weights."""
        self.actor_network = MLP.load(path)
