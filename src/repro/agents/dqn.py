"""Deep Q-Network agents: DQN, Double DQN and Dueling DQN.

These are the learning algorithms at the heart of the reproduced paper.  The
implementation follows the standard recipe — experience replay, a separate
target network updated every ``target_update_interval`` steps (or softly with
``tau``), epsilon-greedy exploration over masked action values, and a Huber
loss on the TD error.  Learning is fully vectorized: every update samples a
contiguous ``(batch, features)`` minibatch from replay and performs exactly
one training-mode forward pass and one backward pass on the online network.

>>> agent = DQNAgent(state_dim=16, num_actions=5, seed=0)
>>> action = agent.select_action(state, mask=valid_mask)
>>> agent.observe(state, action, reward, next_state, done, next_mask=mask)
>>> diagnostics = agent.update()       # {} until min_replay_size is reached
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent
from repro.agents.exploration import EpsilonGreedy, ExplorationSchedule, LinearDecaySchedule
from repro.agents.replay import (
    PrioritizedReplayBuffer,
    ReplayBuffer,
    Transition,
    TransitionBatch,
)
from repro.nn.losses import HuberLoss
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.rng import RandomState, derive_seed
from repro.utils.validation import check_positive, check_probability


@dataclass
class DQNConfig:
    """Hyperparameters of the DQN family.

    The defaults are the reference configuration used by the benchmark
    harness; they train to a sensible policy on the 16-edge topology in a few
    hundred episodes on a laptop.
    """

    hidden_layers: Sequence[int] = (128, 128)
    learning_rate: float = 1e-3
    discount: float = 0.95
    batch_size: int = 64
    replay_capacity: int = 50_000
    min_replay_size: int = 500
    target_update_interval: int = 250
    soft_target_tau: Optional[float] = None
    gradient_clip_norm: float = 10.0
    update_every: int = 1
    double_q: bool = False
    dueling: bool = False
    prioritized_replay: bool = False
    priority_alpha: float = 0.6
    priority_beta: float = 0.4
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 20_000

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.discount, "discount")
        check_positive(self.batch_size, "batch_size")
        check_positive(self.replay_capacity, "replay_capacity")
        check_positive(self.min_replay_size, "min_replay_size")
        check_positive(self.target_update_interval, "target_update_interval")
        check_positive(self.update_every, "update_every")
        if self.soft_target_tau is not None:
            check_probability(self.soft_target_tau, "soft_target_tau")
        if self.min_replay_size < self.batch_size:
            raise ValueError("min_replay_size must be >= batch_size")

    def exploration_schedule(self) -> ExplorationSchedule:
        """The epsilon schedule implied by the config."""
        return LinearDecaySchedule(
            self.epsilon_start, self.epsilon_end, self.epsilon_decay_steps
        )


class DQNAgent(Agent):
    """Deep Q-learning with experience replay and a target network."""

    name = "dqn"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        config: Optional[DQNConfig] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        self.config = config or DQNConfig()
        if self.config.double_q and self.config.dueling:
            self.name = "dueling_double_dqn"
        elif self.config.double_q:
            self.name = "double_dqn"
        elif self.config.dueling:
            self.name = "dueling_dqn"

        network_seed = derive_seed(seed, "online")
        target_seed = derive_seed(seed, "target")
        layer_sizes = [state_dim, *self.config.hidden_layers, self._head_dim()]
        self.online_network = MLP(layer_sizes, seed=network_seed)
        self.target_network = MLP(layer_sizes, seed=target_seed)
        self.target_network.copy_from(self.online_network, tau=1.0)

        self.optimizer = Adam(self.config.learning_rate)
        self.loss = HuberLoss()
        if self.config.prioritized_replay:
            self.replay: ReplayBuffer = PrioritizedReplayBuffer(
                self.config.replay_capacity,
                alpha=self.config.priority_alpha,
                beta=self.config.priority_beta,
                seed=derive_seed(seed, "replay"),
            )
        else:
            self.replay = ReplayBuffer(
                self.config.replay_capacity, seed=derive_seed(seed, "replay")
            )
        self.exploration = EpsilonGreedy(
            self.config.exploration_schedule(), seed=derive_seed(seed, "explore")
        )
        self._environment_steps = 0
        self._steps_since_update = 0
        self.last_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Q-value heads
    # ------------------------------------------------------------------ #
    def _head_dim(self) -> int:
        """Width of the network output head.

        The dueling architecture predicts one state value plus one advantage
        per action and combines them in :meth:`_combine_head`.
        """
        return self.num_actions + 1 if self.config.dueling else self.num_actions

    def _combine_head(self, head: np.ndarray) -> np.ndarray:
        """Combine the network head into Q-values."""
        head = np.atleast_2d(head)
        if not self.config.dueling:
            return head
        value = head[:, :1]
        advantage = head[:, 1:]
        return value + advantage - advantage.mean(axis=1, keepdims=True)

    def q_values(self, state: np.ndarray, target: bool = False) -> np.ndarray:
        """Q-values of a single state from the online (or target) network."""
        state = self._validate_state(state)
        network = self.target_network if target else self.online_network
        return self._combine_head(network.predict(state))[0]

    def batch_q_values(self, states: np.ndarray, target: bool = False) -> np.ndarray:
        """Q-values of a batch of states."""
        network = self.target_network if target else self.online_network
        return self._combine_head(network.predict(np.atleast_2d(states)))

    # ------------------------------------------------------------------ #
    # Agent interface
    # ------------------------------------------------------------------ #
    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        q_values = self.q_values(state)
        return self.exploration.select(
            q_values, self._environment_steps, mask=mask, greedy=greedy
        )

    def select_actions(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """One ``batch_q_values`` forward plus vectorized masked epsilon-greedy.

        For a single row this defers to :meth:`select_action` so that K=1
        training consumes the exploration RNG exactly like the serial loop.
        """
        states = self._validate_states(states)
        masks = self._validate_masks(masks, states.shape[0])
        if states.shape[0] == 1:
            return super().select_actions(states, masks, greedy=greedy)
        q_values = self.batch_q_values(states)
        return self.exploration.select_batch(
            q_values, self._environment_steps, masks=masks, greedy=greedy
        )

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: Optional[np.ndarray] = None,
        truncations: Optional[np.ndarray] = None,
    ) -> None:
        """Push one replay transition per lane (validated batch-wise).

        ``truncations`` is accepted but deliberately ignored: a step-cap
        truncation is not a termination, so the stored transition keeps
        ``done=False`` and the TD target bootstraps from the next state —
        the standard terminated-vs-truncated treatment (and exactly what the
        serial trainer always stored at its step cap).
        """
        states = self._validate_states(states)
        next_states = self._validate_states(next_states)
        actions = np.asarray(actions, dtype=int).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        next_masks = self._validate_masks(next_masks, states.shape[0])
        for row in range(states.shape[0]):
            self._environment_steps += 1
            self._steps_since_update += 1
            self.replay.add(
                Transition(
                    state=states[row],
                    action=self._validate_action(int(actions[row])),
                    reward=float(rewards[row]),
                    next_state=next_states[row],
                    done=bool(dones[row]),
                    next_mask=None if next_masks is None else next_masks[row],
                )
            )

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._environment_steps += 1
        self._steps_since_update += 1
        self.replay.add(
            Transition(
                state=self._validate_state(state),
                action=self._validate_action(action),
                reward=float(reward),
                next_state=self._validate_state(next_state),
                done=bool(done),
                next_mask=None if next_mask is None else np.asarray(next_mask, bool),
            )
        )

    def update(self) -> Dict[str, float]:
        """Sample a batch and take one TD-regression step (when due).

        Each call performs at most one gradient step, due once
        ``update_every`` new transitions have accumulated beyond those
        already consumed by earlier updates — an explicit credit counter
        rather than a modulo on the global step counter, so K-lane training
        (which adds K credits per decision step) never skips updates at
        unaligned multiples.  An update consumes ``update_every`` credits,
        so repeated calls can catch up after a burst of observations; unspent
        credits saturate at ``replay_capacity`` (credits for evicted
        transitions are meaningless).  Note the update-to-data ratio under a
        once-per-decision-step caller like ``VecTrainer`` is 1/K of the
        serial trainer's — the standard synchronous-vectorized regime; call
        ``update()`` more often per step to keep the serial ratio.
        """
        if len(self.replay) < self.config.min_replay_size:
            return {}
        if self._steps_since_update < self.config.update_every:
            return {}
        self._steps_since_update = min(
            self._steps_since_update - self.config.update_every,
            self.config.replay_capacity,
        )
        batch = self.replay.sample(self.config.batch_size)
        diagnostics = self._learn_from_batch(batch)
        self.training_steps += 1
        self._maybe_update_target()
        return diagnostics

    # ------------------------------------------------------------------ #
    # Learning internals
    # ------------------------------------------------------------------ #
    def _bootstrap_values(self, batch: TransitionBatch) -> np.ndarray:
        """Max (or double-Q) next-state values, with invalid actions masked."""
        target_q = self.batch_q_values(batch.next_states, target=True)
        if self.config.double_q:
            online_q = self.batch_q_values(batch.next_states, target=False)
            selector = online_q
        else:
            selector = target_q
        if batch.next_masks is not None:
            selector = np.where(batch.next_masks, selector, -np.inf)
        best_actions = np.argmax(selector, axis=1)
        values = target_q[np.arange(len(batch)), best_actions]
        # A state whose mask excludes every action contributes zero bootstrap.
        if batch.next_masks is not None:
            no_valid = ~batch.next_masks.any(axis=1)
            values = np.where(no_valid, 0.0, values)
        return values

    def _learn_from_batch(self, batch: TransitionBatch) -> Dict[str, float]:
        """One vectorized TD-regression step on a whole minibatch.

        The online network runs exactly one training-mode forward pass on
        ``batch.states``; Q-values, TD errors, priorities and the output
        gradient are all derived from it before a single backward pass.
        """
        rows = np.arange(len(batch))
        bootstrap = self._bootstrap_values(batch)
        targets_for_actions = batch.rewards + self.config.discount * bootstrap * (
            ~batch.dones
        )

        head = np.atleast_2d(self.online_network.forward(batch.states, training=True))
        current_q = self._combine_head(head)
        td_errors = targets_for_actions - current_q[rows, batch.actions]
        self.replay.update_priorities(batch.indices, np.abs(td_errors))

        if self.config.dueling:
            # Per-action loss on the taken action; the gradient maps back to
            # the [V, A₁..A_n] head through Q_a = V + A_a − mean(A).
            loss_value, grad_q_taken = self.loss.value_and_grad(
                current_q[rows, batch.actions].reshape(-1, 1),
                targets_for_actions.reshape(-1, 1),
                batch.weights,
            )
            grad_q_taken = grad_q_taken.ravel()
            grad_head = np.zeros_like(head)
            # dQ_a / dV = 1
            grad_head[:, 0] = grad_q_taken
            # dQ_a / dA_j = δ_{aj} − 1/n
            grad_head[:, 1:] -= (grad_q_taken / self.num_actions)[:, None]
            grad_head[rows, 1 + batch.actions] += grad_q_taken
        else:
            # Full-width targets equal to the predictions everywhere except
            # the taken action, so masked-out entries contribute zero error
            # and zero gradient (same objective the seed expressed through
            # fit_batch's target_mask, without re-running the forward pass).
            q_targets = current_q.copy()
            q_targets[rows, batch.actions] = targets_for_actions
            loss_value, grad_head = self.loss.value_and_grad(
                current_q, q_targets, batch.weights
            )

        self.online_network.apply_gradient_step(
            grad_head, self.optimizer, self.config.gradient_clip_norm
        )
        self.last_loss = float(loss_value)
        return {
            "loss": float(loss_value),
            "mean_td_error": float(np.mean(np.abs(td_errors))),
            "mean_q": float(np.mean(current_q)),
        }

    def _maybe_update_target(self) -> None:
        if self.config.soft_target_tau is not None:
            self.target_network.copy_from(
                self.online_network, tau=self.config.soft_target_tau
            )
        elif self.training_steps % self.config.target_update_interval == 0:
            self.target_network.copy_from(self.online_network, tau=1.0)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the online network weights to ``path`` (``.npz``)."""
        return self.online_network.save(path)

    def load(self, path: Union[str, Path]) -> None:
        """Load online network weights and synchronize the target network."""
        self.online_network = MLP.load(path)
        self.target_network = self.online_network.clone(seed=0)


def make_dqn_variant(
    variant: str,
    state_dim: int,
    num_actions: int,
    config: Optional[DQNConfig] = None,
    seed: RandomState = None,
) -> DQNAgent:
    """Factory for the agent-ablation experiment.

    ``variant`` is one of ``dqn``, ``double``, ``dueling`` or
    ``dueling_double``.
    """
    base = config or DQNConfig()
    variant = variant.lower()
    flags = {
        "dqn": (False, False),
        "double": (True, False),
        "dueling": (False, True),
        "dueling_double": (True, True),
    }
    if variant not in flags:
        raise ValueError(f"unknown DQN variant {variant!r}; options: {sorted(flags)}")
    double_q, dueling = flags[variant]
    cfg = DQNConfig(
        hidden_layers=base.hidden_layers,
        learning_rate=base.learning_rate,
        discount=base.discount,
        batch_size=base.batch_size,
        replay_capacity=base.replay_capacity,
        min_replay_size=base.min_replay_size,
        target_update_interval=base.target_update_interval,
        soft_target_tau=base.soft_target_tau,
        gradient_clip_norm=base.gradient_clip_norm,
        update_every=base.update_every,
        double_q=double_q,
        dueling=dueling,
        prioritized_replay=base.prioritized_replay,
        priority_alpha=base.priority_alpha,
        priority_beta=base.priority_beta,
        epsilon_start=base.epsilon_start,
        epsilon_end=base.epsilon_end,
        epsilon_decay_steps=base.epsilon_decay_steps,
    )
    return DQNAgent(state_dim, num_actions, config=cfg, seed=seed)
