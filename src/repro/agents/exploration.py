"""Exploration schedules and action-selection strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.nn.activations import softmax
from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_non_negative, check_positive, check_probability


class ExplorationSchedule(ABC):
    """A time-varying exploration parameter (epsilon, temperature, ...)."""

    @abstractmethod
    def value(self, step: int) -> float:
        """The exploration parameter at training step ``step``."""

    def __call__(self, step: int) -> float:
        return self.value(step)


class ConstantSchedule(ExplorationSchedule):
    """A schedule that always returns the same value."""

    def __init__(self, constant: float) -> None:
        check_non_negative(constant, "constant")
        self.constant = constant

    def value(self, step: int) -> float:
        return self.constant


class LinearDecaySchedule(ExplorationSchedule):
    """Linear decay from ``start`` to ``end`` over ``decay_steps`` steps."""

    def __init__(self, start: float, end: float, decay_steps: int) -> None:
        check_non_negative(start, "start")
        check_non_negative(end, "end")
        check_positive(decay_steps, "decay_steps")
        if end > start:
            raise ValueError("end must be <= start for a decaying schedule")
        self.start = start
        self.end = end
        self.decay_steps = decay_steps

    def value(self, step: int) -> float:
        if step >= self.decay_steps:
            return self.end
        fraction = step / self.decay_steps
        return self.start + fraction * (self.end - self.start)


class ExponentialDecaySchedule(ExplorationSchedule):
    """Exponential decay ``start * decay_rate**step`` floored at ``end``."""

    def __init__(self, start: float, end: float, decay_rate: float) -> None:
        check_non_negative(start, "start")
        check_non_negative(end, "end")
        if not 0.0 < decay_rate < 1.0:
            raise ValueError(f"decay_rate must be in (0, 1), got {decay_rate}")
        if end > start:
            raise ValueError("end must be <= start for a decaying schedule")
        self.start = start
        self.end = end
        self.decay_rate = decay_rate

    def value(self, step: int) -> float:
        return max(self.end, self.start * self.decay_rate**step)


class EpsilonGreedy:
    """Epsilon-greedy selection over (masked) action values."""

    def __init__(
        self,
        schedule: Optional[ExplorationSchedule] = None,
        seed: RandomState = None,
    ) -> None:
        self.schedule = schedule or LinearDecaySchedule(1.0, 0.05, 10_000)
        self._rng = new_rng(seed)

    def select(
        self,
        q_values: np.ndarray,
        step: int,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """Pick an action index from ``q_values``.

        ``mask`` is a boolean array of valid actions; invalid actions are
        never selected, neither greedily nor during exploration.
        """
        q_values = np.asarray(q_values, dtype=float).ravel()
        valid = _valid_indices(q_values.shape[0], mask)
        epsilon = 0.0 if greedy else self.schedule.value(step)
        check_probability(epsilon, "epsilon")
        if not greedy and self._rng.uniform() < epsilon:
            return int(self._rng.choice(valid))
        masked_q = np.full_like(q_values, -np.inf)
        masked_q[valid] = q_values[valid]
        best = np.flatnonzero(masked_q == masked_q.max())
        return int(self._rng.choice(best))


    def select_batch(
        self,
        q_values: np.ndarray,
        step: int,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """Vectorized epsilon-greedy over a ``(K, A)`` batch of Q-rows.

        One epsilon draw, one exploration draw and one tie-break draw are made
        per row, all in single vectorized calls, so selecting for K lanes costs
        O(K·A) array work instead of K Python-level selections.  Returns a
        ``(K,)`` integer action array.
        """
        # repro-lint: readonly=masks
        q_values = np.atleast_2d(np.asarray(q_values, dtype=float))
        valid = _valid_mask_batch(q_values.shape, masks)
        epsilon = 0.0 if greedy else self.schedule.value(step)
        check_probability(epsilon, "epsilon")

        masked_q = np.where(valid, q_values, -np.inf)
        best = masked_q == masked_q.max(axis=1, keepdims=True)
        actions = _choice_per_row(self._rng, best)
        if epsilon > 0.0:
            explore = self._rng.random(q_values.shape[0]) < epsilon
            if explore.any():
                random_actions = _choice_per_row(self._rng, valid)
                actions = np.where(explore, random_actions, actions)
        return actions


class BoltzmannExploration:
    """Softmax (Boltzmann) selection over masked action values."""

    def __init__(
        self,
        temperature_schedule: Optional[ExplorationSchedule] = None,
        seed: RandomState = None,
    ) -> None:
        self.schedule = temperature_schedule or ConstantSchedule(1.0)
        self._rng = new_rng(seed)

    def select(
        self,
        q_values: np.ndarray,
        step: int,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """Sample an action with probability proportional to exp(Q / T)."""
        # repro-lint: readonly=mask
        q_values = np.asarray(q_values, dtype=float).ravel()
        valid = _valid_indices(q_values.shape[0], mask)
        if greedy:
            masked_q = np.full_like(q_values, -np.inf)
            masked_q[valid] = q_values[valid]
            return int(np.argmax(masked_q))
        temperature = max(1e-6, self.schedule.value(step))
        logits = np.full_like(q_values, -np.inf)
        logits[valid] = q_values[valid] / temperature
        probabilities = softmax(logits)
        return int(self._rng.choice(len(q_values), p=probabilities))


def _valid_mask_batch(shape: tuple, masks: Optional[np.ndarray]) -> np.ndarray:
    """A boolean ``(K, A)`` validity mask; with no masks, everything is valid."""
    if masks is None:
        return np.ones(shape, dtype=bool)
    masks = np.atleast_2d(np.asarray(masks, dtype=bool))
    if masks.shape != shape:
        raise ValueError(
            f"masks shape {masks.shape} does not match Q-value shape {shape}"
        )
    rows_without_actions = ~masks.any(axis=1)
    if rows_without_actions.any():
        lanes = np.flatnonzero(rows_without_actions).tolist()
        raise ValueError(f"action mask excludes every action in lanes {lanes}")
    return masks


def _choice_per_row(rng: np.random.Generator, candidates: np.ndarray) -> np.ndarray:
    """One uniformly random True column per row of a boolean ``(K, A)`` array.

    Implemented without a Python loop: draw one uniform per row, scale it by
    the row's candidate count, and find the matching candidate through the
    row-wise cumulative count.
    """
    counts = candidates.sum(axis=1)
    draws = (rng.random(candidates.shape[0]) * counts).astype(int)
    cumulative = candidates.cumsum(axis=1)
    return (cumulative > draws[:, None]).argmax(axis=1)


def _valid_indices(num_actions: int, mask: Optional[np.ndarray]) -> np.ndarray:
    """Indices of valid actions; with no mask, every action is valid."""
    if mask is None:
        return np.arange(num_actions)
    mask = np.asarray(mask, dtype=bool).ravel()
    if mask.shape[0] != num_actions:
        raise ValueError(
            f"mask length {mask.shape[0]} does not match action count {num_actions}"
        )
    valid = np.flatnonzero(mask)
    if valid.size == 0:
        raise ValueError("action mask excludes every action")
    return valid
