"""REINFORCE (Monte Carlo policy gradient) with an optional value baseline."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent, sample_probability_rows
from repro.nn.activations import log_softmax, softmax
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class ReinforceConfig:
    """Hyperparameters for the REINFORCE agent."""

    hidden_layers: Sequence[int] = (128, 128)
    learning_rate: float = 1e-3
    baseline_learning_rate: float = 1e-3
    discount: float = 0.95
    entropy_coefficient: float = 0.01
    use_baseline: bool = True
    gradient_clip_norm: float = 10.0
    normalize_returns: bool = True

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.baseline_learning_rate, "baseline_learning_rate")
        check_probability(self.discount, "discount")
        if self.entropy_coefficient < 0:
            raise ValueError("entropy_coefficient must be >= 0")


class ReinforceAgent(Agent):
    """Episodic Monte Carlo policy gradient.

    Transitions are buffered within an episode; :meth:`end_episode` computes
    discounted returns, subtracts the learned state-value baseline and takes
    one gradient step on the policy (and one on the baseline).
    """

    name = "reinforce"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        config: Optional[ReinforceConfig] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        self.config = config or ReinforceConfig()
        self.policy_network = MLP(
            [state_dim, *self.config.hidden_layers, num_actions],
            seed=derive_seed(seed, "policy"),
        )
        self.baseline_network = MLP(
            [state_dim, *self.config.hidden_layers, 1],
            seed=derive_seed(seed, "baseline"),
        )
        self.policy_optimizer = Adam(self.config.learning_rate)
        self.baseline_optimizer = Adam(self.config.baseline_learning_rate)
        self._rng = new_rng(derive_seed(seed, "sampling"))
        # Columnar episode storage, one column set per environment lane so
        # vectorized training never mixes episodes across lanes; serial
        # training is simply lane 0.
        self._lane_states: List[List[np.ndarray]] = [[]]
        self._lane_actions: List[List[int]] = [[]]
        self._lane_rewards: List[List[float]] = [[]]
        self._pending_diagnostics: List[Dict[str, float]] = []
        self.last_policy_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def action_probabilities(
        self, state: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a single state."""
        state = self._validate_state(state)
        logits = self.policy_network.predict(state)
        return self._masked_softmax(logits, mask)

    def _masked_softmax(
        self, logits: np.ndarray, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        logits = np.asarray(logits, dtype=float).ravel().copy()
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).ravel()
            if not mask.any():
                raise ValueError("action mask excludes every action")
            logits[~mask] = -1e9
        return softmax(logits)

    def batch_action_probabilities(
        self, states: np.ndarray, masks: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a ``(K, state_dim)`` batch."""
        states = self._validate_states(states)
        logits = np.atleast_2d(self.policy_network.predict(states)).copy()
        if masks is not None:
            masks = self._validate_masks(masks, states.shape[0])
            if (~masks.any(axis=1)).any():
                raise ValueError("action mask excludes every action")
            logits[~masks] = -1e9
        return softmax(logits, axis=1)

    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        probabilities = self.action_probabilities(state, mask)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.num_actions, p=probabilities))

    def select_actions(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """One policy forward for all K lanes, then per-row sampling.

        For a single row this defers to :meth:`select_action` so that K=1
        training consumes the sampling RNG exactly like the serial loop.
        """
        states = self._validate_states(states)
        masks = self._validate_masks(masks, states.shape[0])
        if states.shape[0] == 1:
            return super().select_actions(states, masks, greedy=greedy)
        probabilities = self.batch_action_probabilities(states, masks)
        if greedy:
            return probabilities.argmax(axis=1)
        return sample_probability_rows(self._rng, probabilities)

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._lane_states[0].append(self._validate_state(state))
        self._lane_actions[0].append(self._validate_action(action))
        self._lane_rewards[0].append(float(reward))

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: Optional[np.ndarray] = None,
        truncations: Optional[np.ndarray] = None,
    ) -> None:
        """Append row ``i`` to lane ``i``; a finished lane learns immediately.

        Monte Carlo returns need a complete episode, so each lane's policy
        gradient step runs the moment that lane's ``done`` flag arrives (the
        lane auto-resets in the vectorized environment and keeps streaming).
        A step-cap truncation also flushes the lane — learning from the
        capped episode exactly as the serial trainer always did at its step
        cap.  Diagnostics are surfaced through the next :meth:`update` call.
        """
        states = self._validate_states(states)
        next_states = self._validate_states(next_states)
        actions = np.asarray(actions, dtype=int).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        boundaries = np.asarray(dones, dtype=bool).ravel().copy()
        if truncations is not None:
            boundaries |= np.asarray(truncations, dtype=bool).ravel()
        self._resize_lanes(states.shape[0])
        for row in range(states.shape[0]):
            self._lane_states[row].append(states[row])
            self._lane_actions[row].append(self._validate_action(int(actions[row])))
            self._lane_rewards[row].append(float(rewards[row]))
            if boundaries[row]:
                self._pending_diagnostics.append(self._flush_lane(row))

    def _resize_lanes(self, num_lanes: int) -> None:
        """Grow/shrink lane storage, flushing anything a resize would orphan."""
        if num_lanes == len(self._lane_states):
            return
        for row in range(len(self._lane_states)):
            if self._lane_states[row]:
                self._pending_diagnostics.append(self._flush_lane(row))
        self._lane_states = [[] for _ in range(num_lanes)]
        self._lane_actions = [[] for _ in range(num_lanes)]
        self._lane_rewards = [[] for _ in range(num_lanes)]

    def update(self) -> Dict[str, float]:
        """Surface diagnostics of lane episodes finished since the last call."""
        diagnostics = self._pending_diagnostics
        self._pending_diagnostics = []
        return self._mean_diagnostics(diagnostics)

    def end_episode(self) -> Dict[str, float]:
        """Serial: flush the single lane.  Vectorized: drop partial episodes.

        With one lane this is the classic REINFORCE episode boundary — learn
        from whatever the episode produced (including step-cap truncations).
        With K lanes, completed episodes already learned at their ``done``
        flags in :meth:`observe_batch`; anything still buffered here is a
        chunk-boundary partial episode whose continuation is being discarded,
        and a Monte Carlo update on it would systematically bias returns
        toward zero — so the partial columns are dropped, not learned from.
        """
        flushed = list(self._pending_diagnostics)
        self._pending_diagnostics = []
        if len(self._lane_states) == 1:
            if self._lane_states[0]:
                flushed.append(self._flush_lane(0))
        else:
            for row in range(len(self._lane_states)):
                self._lane_states[row].clear()
                self._lane_actions[row].clear()
                self._lane_rewards[row].clear()
        return self._mean_diagnostics(flushed)

    def _flush_lane(self, row: int) -> Dict[str, float]:
        """One policy-gradient step from lane ``row``'s completed episode."""
        states = np.stack(self._lane_states[row])
        actions = np.array(self._lane_actions[row], dtype=int)
        rewards = np.array(self._lane_rewards[row], dtype=float)
        self._lane_states[row].clear()
        self._lane_actions[row].clear()
        self._lane_rewards[row].clear()
        self.training_steps += 1

        returns = self._discounted_returns(rewards)
        baselines = self.baseline_network.predict(states).ravel()
        advantages = returns - baselines if self.config.use_baseline else returns.copy()
        if self.config.normalize_returns and advantages.size > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        policy_loss = self._policy_step(states, actions, advantages)
        baseline_loss = self._baseline_step(states, returns)
        self.last_policy_loss = policy_loss
        return {
            "policy_loss": policy_loss,
            "baseline_loss": baseline_loss,
            "mean_return": float(returns.mean()),
        }

    def _discounted_returns(self, rewards: np.ndarray) -> np.ndarray:
        returns = np.zeros_like(rewards)
        running = 0.0
        for index in range(len(rewards) - 1, -1, -1):
            running = rewards[index] + self.config.discount * running
            returns[index] = running
        return returns

    def _policy_step(
        self, states: np.ndarray, actions: np.ndarray, advantages: np.ndarray
    ) -> float:
        logits = self.policy_network.forward(states, training=True)
        logits = np.atleast_2d(logits)
        probabilities = softmax(logits, axis=1)
        log_probs = log_softmax(logits, axis=1)
        batch = len(actions)
        rows = np.arange(batch)

        selected_log_probs = log_probs[rows, actions]
        entropy = -np.sum(probabilities * log_probs, axis=1)
        loss = -float(
            np.mean(
                selected_log_probs * advantages
                + self.config.entropy_coefficient * entropy
            )
        )

        # Gradient of the loss w.r.t. the logits:
        #   d(-log πₐ · A)/d logits = (π − onehot(a)) · A
        #   d(-entropy)/d logits = π · (log π + entropy)
        one_hot = np.zeros_like(probabilities)
        one_hot[rows, actions] = 1.0
        grad_logits = (probabilities - one_hot) * advantages[:, None]
        grad_entropy = probabilities * (log_probs + entropy[:, None])
        grad_logits += self.config.entropy_coefficient * grad_entropy
        grad_logits /= batch

        self.policy_network.apply_gradient_step(
            grad_logits, self.policy_optimizer, self.config.gradient_clip_norm
        )
        return loss

    def _baseline_step(self, states: np.ndarray, returns: np.ndarray) -> float:
        if not self.config.use_baseline:
            return 0.0
        return self.policy_baseline_fit(states, returns)

    def policy_baseline_fit(self, states: np.ndarray, returns: np.ndarray) -> float:
        """One MSE regression step of the value baseline towards returns."""
        return self.baseline_network.fit_batch(
            states,
            returns.reshape(-1, 1),
            optimizer=self.baseline_optimizer,
            max_grad_norm=self.config.gradient_clip_norm,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the policy network weights to ``path`` (``.npz``)."""
        return self.policy_network.save(path)

    def load(self, path: Union[str, Path]) -> None:
        """Load policy network weights."""
        self.policy_network = MLP.load(path)
