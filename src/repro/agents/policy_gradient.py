"""REINFORCE (Monte Carlo policy gradient) with an optional value baseline."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import Agent
from repro.nn.activations import log_softmax, softmax
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.utils.rng import RandomState, derive_seed, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class ReinforceConfig:
    """Hyperparameters for the REINFORCE agent."""

    hidden_layers: Sequence[int] = (128, 128)
    learning_rate: float = 1e-3
    baseline_learning_rate: float = 1e-3
    discount: float = 0.95
    entropy_coefficient: float = 0.01
    use_baseline: bool = True
    gradient_clip_norm: float = 10.0
    normalize_returns: bool = True

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.baseline_learning_rate, "baseline_learning_rate")
        check_probability(self.discount, "discount")
        if self.entropy_coefficient < 0:
            raise ValueError("entropy_coefficient must be >= 0")


class ReinforceAgent(Agent):
    """Episodic Monte Carlo policy gradient.

    Transitions are buffered within an episode; :meth:`end_episode` computes
    discounted returns, subtracts the learned state-value baseline and takes
    one gradient step on the policy (and one on the baseline).
    """

    name = "reinforce"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        config: Optional[ReinforceConfig] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        self.config = config or ReinforceConfig()
        self.policy_network = MLP(
            [state_dim, *self.config.hidden_layers, num_actions],
            seed=derive_seed(seed, "policy"),
        )
        self.baseline_network = MLP(
            [state_dim, *self.config.hidden_layers, 1],
            seed=derive_seed(seed, "baseline"),
        )
        self.policy_optimizer = Adam(self.config.learning_rate)
        self.baseline_optimizer = Adam(self.config.baseline_learning_rate)
        self._rng = new_rng(derive_seed(seed, "sampling"))
        # Columnar episode storage: one list per field stacks into a batch
        # array in a single pass at episode end.
        self._episode_states: List[np.ndarray] = []
        self._episode_actions: List[int] = []
        self._episode_rewards: List[float] = []
        self.last_policy_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def action_probabilities(
        self, state: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked softmax policy probabilities for a single state."""
        state = self._validate_state(state)
        logits = self.policy_network.predict(state)
        return self._masked_softmax(logits, mask)

    def _masked_softmax(
        self, logits: np.ndarray, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        logits = np.asarray(logits, dtype=float).ravel().copy()
        if mask is not None:
            mask = np.asarray(mask, dtype=bool).ravel()
            if not mask.any():
                raise ValueError("action mask excludes every action")
            logits[~mask] = -1e9
        return softmax(logits)

    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        probabilities = self.action_probabilities(state, mask)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.num_actions, p=probabilities))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._episode_states.append(self._validate_state(state))
        self._episode_actions.append(self._validate_action(action))
        self._episode_rewards.append(float(reward))

    def update(self) -> Dict[str, float]:
        """REINFORCE learns only at episode boundaries; per-step update is a no-op."""
        return {}

    def end_episode(self) -> Dict[str, float]:
        """Compute returns and apply one policy-gradient step."""
        if not self._episode_states:
            return {}
        states = np.stack(self._episode_states)
        actions = np.array(self._episode_actions, dtype=int)
        rewards = np.array(self._episode_rewards, dtype=float)
        self._episode_states.clear()
        self._episode_actions.clear()
        self._episode_rewards.clear()
        self.training_steps += 1

        returns = self._discounted_returns(rewards)
        baselines = self.baseline_network.predict(states).ravel()
        advantages = returns - baselines if self.config.use_baseline else returns.copy()
        if self.config.normalize_returns and advantages.size > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std

        policy_loss = self._policy_step(states, actions, advantages)
        baseline_loss = self._baseline_step(states, returns)
        self.last_policy_loss = policy_loss
        return {
            "policy_loss": policy_loss,
            "baseline_loss": baseline_loss,
            "mean_return": float(returns.mean()),
        }

    def _discounted_returns(self, rewards: np.ndarray) -> np.ndarray:
        returns = np.zeros_like(rewards)
        running = 0.0
        for index in range(len(rewards) - 1, -1, -1):
            running = rewards[index] + self.config.discount * running
            returns[index] = running
        return returns

    def _policy_step(
        self, states: np.ndarray, actions: np.ndarray, advantages: np.ndarray
    ) -> float:
        logits = self.policy_network.forward(states, training=True)
        logits = np.atleast_2d(logits)
        probabilities = softmax(logits, axis=1)
        log_probs = log_softmax(logits, axis=1)
        batch = len(actions)
        rows = np.arange(batch)

        selected_log_probs = log_probs[rows, actions]
        entropy = -np.sum(probabilities * log_probs, axis=1)
        loss = -float(
            np.mean(
                selected_log_probs * advantages
                + self.config.entropy_coefficient * entropy
            )
        )

        # Gradient of the loss w.r.t. the logits:
        #   d(-log πₐ · A)/d logits = (π − onehot(a)) · A
        #   d(-entropy)/d logits = π · (log π + entropy)
        one_hot = np.zeros_like(probabilities)
        one_hot[rows, actions] = 1.0
        grad_logits = (probabilities - one_hot) * advantages[:, None]
        grad_entropy = probabilities * (log_probs + entropy[:, None])
        grad_logits += self.config.entropy_coefficient * grad_entropy
        grad_logits /= batch

        self.policy_network.apply_gradient_step(
            grad_logits, self.policy_optimizer, self.config.gradient_clip_norm
        )
        return loss

    def _baseline_step(self, states: np.ndarray, returns: np.ndarray) -> float:
        if not self.config.use_baseline:
            return 0.0
        return self.policy_baseline_fit(states, returns)

    def policy_baseline_fit(self, states: np.ndarray, returns: np.ndarray) -> float:
        """One MSE regression step of the value baseline towards returns."""
        return self.baseline_network.fit_batch(
            states,
            returns.reshape(-1, 1),
            optimizer=self.baseline_optimizer,
            max_grad_norm=self.config.gradient_clip_norm,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Save the policy network weights to ``path`` (``.npz``)."""
        return self.policy_network.save(path)

    def load(self, path: Union[str, Path]) -> None:
        """Load policy network weights."""
        self.policy_network = MLP.load(path)
