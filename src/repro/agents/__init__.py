"""Reinforcement learning agents (deep and tabular)."""

from repro.agents.actor_critic import A2CConfig, ActorCriticAgent
from repro.agents.base import Agent
from repro.agents.dqn import DQNAgent, DQNConfig, make_dqn_variant
from repro.agents.exploration import (
    BoltzmannExploration,
    ConstantSchedule,
    EpsilonGreedy,
    ExplorationSchedule,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
)
from repro.agents.policy_gradient import ReinforceAgent, ReinforceConfig
from repro.agents.qlearning import TabularQLearningAgent
from repro.agents.replay import (
    PrioritizedReplayBuffer,
    ReplayBuffer,
    Transition,
    TransitionBatch,
)

__all__ = [
    "A2CConfig",
    "ActorCriticAgent",
    "Agent",
    "DQNAgent",
    "DQNConfig",
    "make_dqn_variant",
    "BoltzmannExploration",
    "ConstantSchedule",
    "EpsilonGreedy",
    "ExplorationSchedule",
    "ExponentialDecaySchedule",
    "LinearDecaySchedule",
    "ReinforceAgent",
    "ReinforceConfig",
    "TabularQLearningAgent",
    "PrioritizedReplayBuffer",
    "ReplayBuffer",
    "Transition",
    "TransitionBatch",
]
