"""Tabular Q-learning over a discretized state space.

The tabular agent is the "shallow RL" ablation baseline: it discretizes the
continuous state vector into coarse bins and learns a lookup-table Q
function.  On small topologies it is competitive; its collapse on larger
state spaces is precisely the motivation for the deep agent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.agents.base import Agent
from repro.agents.exploration import EpsilonGreedy, ExplorationSchedule
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive, check_probability


class TabularQLearningAgent(Agent):
    """Q-learning with state discretization.

    Parameters
    ----------
    bins_per_feature:
        Number of quantization bins per state feature.  State features are
        assumed to be roughly in [0, 1] (which the state encoder guarantees);
        values outside are clipped.
    learning_rate, discount:
        Standard Q-learning step size and discount factor.
    """

    name = "tabular_q"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        bins_per_feature: int = 4,
        learning_rate: float = 0.1,
        discount: float = 0.95,
        exploration: Optional[ExplorationSchedule] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        check_positive(bins_per_feature, "bins_per_feature")
        check_probability(discount, "discount")
        check_positive(learning_rate, "learning_rate")
        self.bins_per_feature = int(bins_per_feature)
        self.learning_rate = learning_rate
        self.discount = discount
        self._policy = EpsilonGreedy(exploration, seed=seed)
        self._q_table: Dict[Tuple[int, ...], np.ndarray] = defaultdict(
            lambda: np.zeros(self.num_actions)
        )
        self._pending: Optional[Tuple] = None

    # ------------------------------------------------------------------ #
    # Discretization
    # ------------------------------------------------------------------ #
    def discretize(self, state: np.ndarray) -> Tuple[int, ...]:
        """Map a continuous state vector to a tuple of bin indices."""
        state = self._validate_state(state)
        clipped = np.clip(state, 0.0, 1.0)
        bins = np.minimum(
            (clipped * self.bins_per_feature).astype(int), self.bins_per_feature - 1
        )
        return tuple(int(b) for b in bins)

    @property
    def table_size(self) -> int:
        """Number of distinct states visited so far."""
        return len(self._q_table)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values of the discretized state (zeros if unseen)."""
        return self._q_table[self.discretize(state)].copy()

    # ------------------------------------------------------------------ #
    # Agent interface
    # ------------------------------------------------------------------ #
    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        q_values = self._q_table[self.discretize(state)]
        return self._policy.select(q_values, self.training_steps, mask, greedy)

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._pending = (
            self.discretize(state),
            self._validate_action(action),
            float(reward),
            self.discretize(next_state),
            bool(done),
            next_mask,
        )

    def update(self) -> Dict[str, float]:
        """Apply the one-step Q-learning update for the last transition."""
        if self._pending is None:
            return {}
        state_key, action, reward, next_key, done, next_mask = self._pending
        self._pending = None
        self.training_steps += 1

        next_q = self._q_table[next_key]
        if next_mask is not None:
            masked = np.where(np.asarray(next_mask, dtype=bool), next_q, -np.inf)
            best_next = 0.0 if not np.isfinite(masked).any() else float(masked.max())
        else:
            best_next = float(next_q.max())
        target = reward if done else reward + self.discount * best_next
        td_error = target - self._q_table[state_key][action]
        self._q_table[state_key][action] += self.learning_rate * td_error
        return {"td_error": float(td_error), "table_size": float(self.table_size)}
