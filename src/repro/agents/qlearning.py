"""Tabular Q-learning over a discretized state space.

The tabular agent is the "shallow RL" ablation baseline: it discretizes the
continuous state vector into coarse bins and learns a lookup-table Q
function.  On small topologies it is competitive; its collapse on larger
state spaces is precisely the motivation for the deep agent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.agents.base import Agent
from repro.agents.exploration import EpsilonGreedy, ExplorationSchedule
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive, check_probability


class TabularQLearningAgent(Agent):
    """Q-learning with state discretization.

    Parameters
    ----------
    bins_per_feature:
        Number of quantization bins per state feature.  State features are
        assumed to be roughly in [0, 1] (which the state encoder guarantees);
        values outside are clipped.
    learning_rate, discount:
        Standard Q-learning step size and discount factor.
    """

    name = "tabular_q"

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        bins_per_feature: int = 4,
        learning_rate: float = 0.1,
        discount: float = 0.95,
        exploration: Optional[ExplorationSchedule] = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(state_dim, num_actions)
        check_positive(bins_per_feature, "bins_per_feature")
        check_probability(discount, "discount")
        check_positive(learning_rate, "learning_rate")
        self.bins_per_feature = int(bins_per_feature)
        self.learning_rate = learning_rate
        self.discount = discount
        self._policy = EpsilonGreedy(exploration, seed=seed)
        self._q_table: Dict[Tuple[int, ...], np.ndarray] = defaultdict(
            lambda: np.zeros(self.num_actions)
        )
        self._pending: List[Tuple] = []

    # ------------------------------------------------------------------ #
    # Discretization
    # ------------------------------------------------------------------ #
    def discretize(self, state: np.ndarray) -> Tuple[int, ...]:
        """Map a continuous state vector to a tuple of bin indices."""
        state = self._validate_state(state)
        clipped = np.clip(state, 0.0, 1.0)
        bins = np.minimum(
            (clipped * self.bins_per_feature).astype(int), self.bins_per_feature - 1
        )
        return tuple(int(b) for b in bins)

    def discretize_batch(self, states: np.ndarray) -> List[Tuple[int, ...]]:
        """Vectorized discretization of a ``(K, state_dim)`` state batch.

        The clip/scale/floor work runs once over the whole batch; only the
        final tuple-key construction stays per row.
        """
        states = self._validate_states(states)
        clipped = np.clip(states, 0.0, 1.0)
        bins = np.minimum(
            (clipped * self.bins_per_feature).astype(int), self.bins_per_feature - 1
        )
        return [tuple(int(b) for b in row) for row in bins]

    @property
    def table_size(self) -> int:
        """Number of distinct states visited so far."""
        return len(self._q_table)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values of the discretized state (zeros if unseen)."""
        return self._q_table[self.discretize(state)].copy()

    # ------------------------------------------------------------------ #
    # Agent interface
    # ------------------------------------------------------------------ #
    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        q_values = self._q_table[self.discretize(state)]
        return self._policy.select(q_values, self.training_steps, mask, greedy)

    def select_actions(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """Vectorized key lookup + one batched masked epsilon-greedy pass.

        For a single row this defers to :meth:`select_action` so that K=1
        training consumes the exploration RNG exactly like the serial loop.
        """
        states = self._validate_states(states)
        masks = self._validate_masks(masks, states.shape[0])
        if states.shape[0] == 1:
            return super().select_actions(states, masks, greedy=greedy)
        keys = self.discretize_batch(states)
        q_values = np.stack([self._q_table[key] for key in keys])
        return self._policy.select_batch(
            q_values, self.training_steps, masks=masks, greedy=greedy
        )

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._pending = [
            (
                self.discretize(state),
                self._validate_action(action),
                float(reward),
                self.discretize(next_state),
                bool(done),
                next_mask,
            )
        ]

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: Optional[np.ndarray] = None,
        truncations: Optional[np.ndarray] = None,
    ) -> None:
        """Queue one tabular update per lane (discretized batch-wise).

        ``truncations`` is accepted but ignored: like DQN, the one-step TD
        target keeps ``done=False`` at a step cap and bootstraps from the
        next state's Q-row.
        """
        states = self._validate_states(states)
        next_states = self._validate_states(next_states)
        actions = np.asarray(actions, dtype=int).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        next_masks_batch = self._validate_masks(next_masks, states.shape[0])
        state_keys = self.discretize_batch(states)
        next_keys = self.discretize_batch(next_states)
        self._pending = [
            (
                state_keys[row],
                self._validate_action(int(actions[row])),
                float(rewards[row]),
                next_keys[row],
                bool(dones[row]),
                None if next_masks_batch is None else next_masks_batch[row],
            )
            for row in range(states.shape[0])
        ]

    def update(self) -> Dict[str, float]:
        """Apply the queued one-step Q-learning update(s).

        Batched observations apply sequentially in lane order, preserving the
        classic Q-learning semantics when several lanes touch the same
        discretized state.
        """
        if not self._pending:
            return {}
        pending, self._pending = self._pending, []
        td_errors = []
        for state_key, action, reward, next_key, done, next_mask in pending:
            self.training_steps += 1
            next_q = self._q_table[next_key]
            if next_mask is not None:
                masked = np.where(np.asarray(next_mask, dtype=bool), next_q, -np.inf)
                best_next = 0.0 if not np.isfinite(masked).any() else float(masked.max())
            else:
                best_next = float(next_q.max())
            target = reward if done else reward + self.discount * best_next
            td_error = target - self._q_table[state_key][action]
            self._q_table[state_key][action] += self.learning_rate * td_error
            td_errors.append(float(td_error))
        return {
            "td_error": float(np.mean(td_errors)),
            "table_size": float(self.table_size),
        }
