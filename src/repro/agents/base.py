"""The agent interface shared by all learning algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np


class Agent(ABC):
    """Interface for value- and policy-based agents.

    The training loop in :mod:`repro.core.training` drives agents through a
    simple contract:

    * :meth:`select_action` — pick an action for the current state, masked to
      the set of valid actions;
    * :meth:`observe` — ingest the resulting transition;
    * :meth:`update` — perform (at most) one learning step, returning
      diagnostic scalars;
    * :meth:`end_episode` — hook called at episode boundaries (used by Monte
      Carlo style learners).
    """

    #: Human-readable name used in result tables and ablation figures.
    name: str = "agent"

    def __init__(self, state_dim: int, num_actions: int) -> None:
        if state_dim <= 0:
            raise ValueError(f"state_dim must be positive, got {state_dim}")
        if num_actions <= 0:
            raise ValueError(f"num_actions must be positive, got {num_actions}")
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.training_steps = 0

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    @abstractmethod
    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """Choose an action index for ``state``.

        ``mask`` is an optional boolean validity mask over actions; ``greedy``
        disables exploration (used during evaluation).
        """

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    @abstractmethod
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Record one environment transition."""

    @abstractmethod
    def update(self) -> Dict[str, float]:
        """Perform one learning step; returns diagnostics (may be empty)."""

    def end_episode(self) -> Dict[str, float]:
        """Hook called once per episode; returns diagnostics (may be empty)."""
        return {}

    # ------------------------------------------------------------------ #
    # Persistence (optional)
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Persist learnable parameters; subclasses override when supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support save()")

    def load(self, path: Union[str, Path]) -> None:
        """Restore learnable parameters; subclasses override when supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support load()")

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _validate_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float).ravel()
        if state.shape[0] != self.state_dim:
            raise ValueError(
                f"state has width {state.shape[0]}, expected {self.state_dim}"
            )
        return state

    def _validate_action(self, action: int) -> int:
        if not 0 <= action < self.num_actions:
            raise ValueError(
                f"action {action} outside the action space [0, {self.num_actions})"
            )
        return int(action)
