"""The agent interface shared by all learning algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np


def sample_probability_rows(
    rng: np.random.Generator, probabilities: np.ndarray
) -> np.ndarray:
    """Sample one column index per row of a ``(K, A)`` probability matrix.

    Inverse-CDF sampling with a single uniform draw per row, fully inside
    numpy.  The final cumulative value is forced to 1 so a draw can never
    fall past the last column through float round-off.
    """
    cumulative = probabilities.cumsum(axis=1)
    cumulative[:, -1] = 1.0
    draws = rng.random(probabilities.shape[0])
    return (cumulative > draws[:, None]).argmax(axis=1)


class Agent(ABC):
    """Interface for value- and policy-based agents.

    The training loop in :mod:`repro.core.training` drives agents through a
    simple contract:

    * :meth:`select_action` — pick an action for the current state, masked to
      the set of valid actions;
    * :meth:`observe` — ingest the resulting transition;
    * :meth:`update` — perform (at most) one learning step, returning
      diagnostic scalars;
    * :meth:`end_episode` — hook called at episode boundaries (used by Monte
      Carlo style learners).
    """

    #: Human-readable name used in result tables and ablation figures.
    name: str = "agent"

    def __init__(self, state_dim: int, num_actions: int) -> None:
        if state_dim <= 0:
            raise ValueError(f"state_dim must be positive, got {state_dim}")
        if num_actions <= 0:
            raise ValueError(f"num_actions must be positive, got {num_actions}")
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.training_steps = 0

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    @abstractmethod
    def select_action(
        self,
        state: np.ndarray,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """Choose an action index for ``state``.

        ``mask`` is an optional boolean validity mask over actions; ``greedy``
        disables exploration (used during evaluation).
        """

    def select_actions(
        self,
        states: np.ndarray,
        masks: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> np.ndarray:
        """Choose one action per row of a ``(K, state_dim)`` state batch.

        ``masks`` is an optional ``(K, num_actions)`` boolean validity mask.
        The base implementation falls back to one :meth:`select_action` call
        per row, so every agent works with the vectorized environment out of
        the box; agents with a batchable forward pass override this to run a
        single forward for all K lanes.
        """
        states = self._validate_states(states)
        masks = self._validate_masks(masks, states.shape[0])
        return np.array(
            [
                self.select_action(
                    states[row],
                    mask=None if masks is None else masks[row],
                    greedy=greedy,
                )
                for row in range(states.shape[0])
            ],
            dtype=int,
        )

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    @abstractmethod
    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        next_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Record one environment transition."""

    def observe_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        next_masks: Optional[np.ndarray] = None,
        truncations: Optional[np.ndarray] = None,
    ) -> None:
        """Record one transition per lane of a K-lane vectorized step.

        Row ``i`` of every array belongs to lane ``i``.  ``dones`` are true
        environment terminations; ``truncations`` flags lanes that the
        trainer is force-resetting at a step cap (the episode did *not*
        terminate).  The base implementation ingests the rows through
        :meth:`observe` one by one, conservatively treating a truncation as
        an episode end so rollout-style custom agents never accumulate
        trajectories across a forced reset; learners that can do better
        override this (replay learners bootstrap through truncations,
        rollout learners flush the truncated lane and keep ``done=False``).
        """
        states = self._validate_states(states)
        next_states = self._validate_states(next_states)
        actions = np.asarray(actions, dtype=int).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        if truncations is not None:
            dones = dones | np.asarray(truncations, dtype=bool).ravel()
        next_masks = self._validate_masks(next_masks, states.shape[0])
        for row in range(states.shape[0]):
            self.observe(
                states[row],
                int(actions[row]),
                float(rewards[row]),
                next_states[row],
                bool(dones[row]),
                next_mask=None if next_masks is None else next_masks[row],
            )

    @abstractmethod
    def update(self) -> Dict[str, float]:
        """Perform one learning step; returns diagnostics (may be empty)."""

    def end_episode(self) -> Dict[str, float]:
        """Hook called once per episode; returns diagnostics (may be empty)."""
        return {}

    # ------------------------------------------------------------------ #
    # Persistence (optional)
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Persist learnable parameters; subclasses override when supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support save()")

    def load(self, path: Union[str, Path]) -> None:
        """Restore learnable parameters; subclasses override when supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support load()")

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _mean_diagnostics(diagnostics: List[Dict[str, float]]) -> Dict[str, float]:
        """Merge per-lane diagnostic dicts by key-wise mean (empty-safe)."""
        if not diagnostics:
            return {}
        if len(diagnostics) == 1:
            return diagnostics[0]
        return {
            key: float(np.mean([d[key] for d in diagnostics]))
            for key in diagnostics[0]
        }

    def _validate_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=float).ravel()
        if state.shape[0] != self.state_dim:
            raise ValueError(
                f"state has width {state.shape[0]}, expected {self.state_dim}"
            )
        return state

    def _validate_states(self, states: np.ndarray) -> np.ndarray:
        """Coerce a state batch to shape ``(K, state_dim)``."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if states.shape[1] != self.state_dim:
            raise ValueError(
                f"state batch has width {states.shape[1]}, expected {self.state_dim}"
            )
        return states

    def _validate_masks(
        self, masks: Optional[np.ndarray], num_rows: int
    ) -> Optional[np.ndarray]:
        """Coerce an optional mask batch to shape ``(K, num_actions)``."""
        if masks is None:
            return None
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        if masks.shape != (num_rows, self.num_actions):
            raise ValueError(
                f"mask batch has shape {masks.shape}, expected "
                f"({num_rows}, {self.num_actions})"
            )
        return masks

    def _validate_action(self, action: int) -> int:
        if not 0 <= action < self.num_actions:
            raise ValueError(
                f"action {action} outside the action space [0, {self.num_actions})"
            )
        return int(action)
