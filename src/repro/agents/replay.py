"""Experience replay buffers backed by pre-allocated contiguous arrays.

:class:`ReplayBuffer` is the uniform buffer used by vanilla DQN;
:class:`PrioritizedReplayBuffer` samples transitions proportionally to their
last TD error, with importance-sampling weights to keep the update unbiased.

Storage layout
--------------
Transitions are not kept as Python objects.  On the first :meth:`add` the
buffer allocates one contiguous ``(capacity, ...)`` array per field (states,
actions, rewards, next states, done flags, optional next-state action masks)
and every subsequent insert is a row write into the ring.  Sampling is a
single vectorized gather (``np.take``) into per-batch-size scratch buffers,
so the training hot path never loops over individual transitions and never
re-stacks Python lists.

.. warning::
   The arrays inside a :class:`TransitionBatch` are views into reusable
   scratch buffers: they are valid until the *next* ``sample()`` call with
   the same batch size.  Copy them (``batch.states.copy()``) if a batch must
   outlive the following sample — agent update steps consume the batch
   immediately, so the hot path never pays for that copy.

Example
-------
>>> buffer = ReplayBuffer(capacity=1000, seed=0)
>>> buffer.add(Transition(state, action, reward, next_state, done))
>>> batch = buffer.sample(64)          # TransitionBatch of stacked arrays
>>> batch.states.shape                 # (64, state_dim), C-contiguous
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple, with an optional next-state action mask."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: Optional[np.ndarray] = None


@dataclass
class TransitionBatch:
    """A stacked batch of transitions ready for vectorized updates."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_masks: Optional[np.ndarray]
    indices: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]


class _BatchBuffers:
    """Reusable output arrays for one batch size (avoids per-sample allocs)."""

    def __init__(self, batch_size: int, state_dim: int, mask_width: Optional[int]):
        self.states = np.empty((batch_size, state_dim), dtype=float)
        self.next_states = np.empty((batch_size, state_dim), dtype=float)
        self.actions = np.empty(batch_size, dtype=int)
        self.rewards = np.empty(batch_size, dtype=float)
        self.dones = np.empty(batch_size, dtype=bool)
        self.next_masks = (
            np.empty((batch_size, mask_width), dtype=bool)
            if mask_width is not None
            else None
        )


class ReplayBuffer:
    """A fixed-capacity FIFO ring buffer with uniform, vectorized sampling."""

    def __init__(self, capacity: int = 50_000, seed: RandomState = None) -> None:
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._rng = new_rng(seed)
        self._size = 0
        self._next_slot = 0
        self._states: Optional[np.ndarray] = None
        self._next_states: Optional[np.ndarray] = None
        self._actions: Optional[np.ndarray] = None
        self._rewards: Optional[np.ndarray] = None
        self._dones: Optional[np.ndarray] = None
        self._next_masks: Optional[np.ndarray] = None
        self._mask_present: Optional[np.ndarray] = None
        self._mask_missing = 0
        self._batch_buffers: Dict[int, _BatchBuffers] = {}

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        """True once the buffer has reached capacity."""
        return self._size >= self.capacity

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def _ensure_storage(self, state: np.ndarray) -> None:
        state_dim = state.shape[-1] if state.ndim else 1
        if self._states is not None and self._states.shape[1] == state_dim:
            return
        if self._states is not None and self._size > 0:
            raise ValueError(
                f"state width {state_dim} does not match the buffer's stored "
                f"width {self._states.shape[1]}"
            )
        self._states = np.empty((self.capacity, state_dim), dtype=float)
        self._next_states = np.empty((self.capacity, state_dim), dtype=float)
        self._actions = np.empty(self.capacity, dtype=int)
        self._rewards = np.empty(self.capacity, dtype=float)
        self._dones = np.empty(self.capacity, dtype=bool)
        self._mask_present = np.zeros(self.capacity, dtype=bool)
        self._next_masks = None
        self._mask_missing = 0
        self._batch_buffers.clear()

    def _ensure_mask_storage(self, mask: np.ndarray) -> None:
        width = mask.shape[-1]
        if self._next_masks is not None:
            if self._next_masks.shape[1] == width:
                return
            if self._size > 0:
                raise ValueError(
                    f"next_mask width {width} does not match the buffer's "
                    f"stored width {self._next_masks.shape[1]}"
                )
        self._next_masks = np.zeros((self.capacity, width), dtype=bool)
        self._batch_buffers.clear()

    def _claim_slot(self) -> int:
        """Slot for the next insert: append until full, then FIFO overwrite."""
        if self._size < self.capacity:
            slot = self._size
            self._size += 1
        else:
            slot = self._next_slot
            self._next_slot = (self._next_slot + 1) % self.capacity
        return slot

    def add(self, transition: Transition) -> None:
        """Insert a transition, evicting the oldest when full."""
        state = np.asarray(transition.state, dtype=float).ravel()
        next_state = np.asarray(transition.next_state, dtype=float).ravel()
        self._ensure_storage(state)
        overwriting = self._size >= self.capacity
        slot = self._claim_slot()
        # Keep the maskless-row counter exact across FIFO eviction so
        # _masks_available stays O(1) instead of rescanning _mask_present.
        if overwriting and not self._mask_present[slot]:
            self._mask_missing -= 1
        self._states[slot] = state
        self._next_states[slot] = next_state
        self._actions[slot] = int(transition.action)
        self._rewards[slot] = float(transition.reward)
        self._dones[slot] = bool(transition.done)
        if transition.next_mask is not None:
            mask = np.asarray(transition.next_mask, dtype=bool).ravel()
            self._ensure_mask_storage(mask)
            self._next_masks[slot] = mask
            self._mask_present[slot] = True
        else:
            self._mask_present[slot] = False
            self._mask_missing += 1

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def _masks_available(self) -> bool:
        return self._next_masks is not None and self._mask_missing == 0

    def _gather(self, indices: np.ndarray, weights: np.ndarray) -> TransitionBatch:
        """Vectorized gather of ``indices`` into reusable batch buffers."""
        batch_size = len(indices)
        with_masks = self._masks_available()
        buffers = self._batch_buffers.get(batch_size)
        if buffers is None or (with_masks and buffers.next_masks is None):
            buffers = _BatchBuffers(
                batch_size,
                self._states.shape[1],
                self._next_masks.shape[1] if with_masks else None,
            )
            self._batch_buffers[batch_size] = buffers
        np.take(self._states, indices, axis=0, out=buffers.states)
        np.take(self._next_states, indices, axis=0, out=buffers.next_states)
        np.take(self._actions, indices, out=buffers.actions)
        np.take(self._rewards, indices, out=buffers.rewards)
        np.take(self._dones, indices, out=buffers.dones)
        next_masks = None
        if with_masks:
            np.take(self._next_masks, indices, axis=0, out=buffers.next_masks)
            next_masks = buffers.next_masks
        return TransitionBatch(
            states=buffers.states,
            actions=buffers.actions,
            rewards=buffers.rewards,
            next_states=buffers.next_states,
            dones=buffers.dones,
            next_masks=next_masks,
            indices=indices,
            weights=weights,
        )

    def sample(self, batch_size: int) -> TransitionBatch:
        """Sample ``batch_size`` transitions uniformly with replacement."""
        check_positive(batch_size, "batch_size")
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(0, self._size, size=batch_size)
        weights = np.ones(batch_size, dtype=float)
        return self._gather(indices, weights)

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """No-op for the uniform buffer (keeps the agent code uniform)."""

    def clear(self) -> None:
        """Drop every stored transition (storage stays allocated)."""
        self._size = 0
        self._next_slot = 0
        self._mask_missing = 0
        if self._mask_present is not None:
            self._mask_present.fill(False)


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay (Schaul et al., 2016).

    Priorities default to the maximum priority seen so far so new transitions
    are replayed at least once.  Sampling probability is ``p_i^alpha / Σ
    p^alpha``; importance-sampling weights use exponent ``beta`` annealed
    externally if desired.  Priorities live in a pre-allocated float array and
    :meth:`update_priorities` applies new values in one vectorized write.
    """

    def __init__(
        self,
        capacity: int = 50_000,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        check_probability(alpha, "alpha")
        check_probability(beta, "beta")
        check_positive(epsilon, "epsilon")
        self.alpha = alpha
        self.beta = beta
        self.epsilon = epsilon
        self._priorities = np.zeros(self.capacity, dtype=float)
        self._max_priority = 1.0

    def add(self, transition: Transition) -> None:
        # Peek the slot the parent insert will use so the priority row stays
        # aligned with the transition row.
        slot = self._size if self._size < self.capacity else self._next_slot
        super().add(transition)
        self._priorities[slot] = self._max_priority

    def sample(self, batch_size: int) -> TransitionBatch:
        check_positive(batch_size, "batch_size")
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        scaled = self._priorities[: self._size] ** self.alpha
        probabilities = scaled / scaled.sum()
        indices = self._rng.choice(
            self._size, size=batch_size, p=probabilities, replace=True
        )
        # Importance-sampling weights, normalized so the largest weight is 1.
        sampled_probs = probabilities[indices]
        weights = (self._size * sampled_probs) ** (-self.beta)
        weights = weights / weights.max()
        return self._gather(indices, weights.astype(float))

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """Set new priorities (absolute TD errors) for sampled transitions."""
        indices = np.asarray(indices, dtype=int)
        priorities = np.abs(np.asarray(priorities, dtype=float)) + self.epsilon
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._size
        ):
            bad = indices[(indices < 0) | (indices >= self._size)][0]
            raise IndexError(f"priority index {int(bad)} out of range")
        self._priorities[indices] = priorities
        if priorities.size:
            self._max_priority = max(self._max_priority, float(priorities.max()))

    def clear(self) -> None:
        super().clear()
        self._priorities.fill(0.0)
        self._max_priority = 1.0
