"""Experience replay buffers.

:class:`ReplayBuffer` is the uniform buffer used by vanilla DQN;
:class:`PrioritizedReplayBuffer` samples transitions proportionally to their
last TD error, with importance-sampling weights to keep the update unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RandomState, new_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) tuple, with an optional next-state action mask."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    next_mask: Optional[np.ndarray] = None


@dataclass
class TransitionBatch:
    """A stacked batch of transitions ready for vectorized updates."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    next_masks: Optional[np.ndarray]
    indices: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]


def _stack_batch(
    transitions: List[Transition], indices: np.ndarray, weights: np.ndarray
) -> TransitionBatch:
    """Stack a list of transitions into contiguous arrays."""
    next_masks = None
    if all(t.next_mask is not None for t in transitions):
        next_masks = np.stack([np.asarray(t.next_mask, dtype=bool) for t in transitions])
    return TransitionBatch(
        states=np.stack([np.asarray(t.state, dtype=float) for t in transitions]),
        actions=np.array([t.action for t in transitions], dtype=int),
        rewards=np.array([t.reward for t in transitions], dtype=float),
        next_states=np.stack(
            [np.asarray(t.next_state, dtype=float) for t in transitions]
        ),
        dones=np.array([t.done for t in transitions], dtype=bool),
        next_masks=next_masks,
        indices=indices,
        weights=weights,
    )


class ReplayBuffer:
    """A fixed-capacity FIFO buffer with uniform sampling."""

    def __init__(self, capacity: int = 50_000, seed: RandomState = None) -> None:
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._storage: List[Transition] = []
        self._next_slot = 0
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_full(self) -> bool:
        """True once the buffer has reached capacity."""
        return len(self._storage) >= self.capacity

    def add(self, transition: Transition) -> None:
        """Insert a transition, evicting the oldest when full."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._next_slot] = transition
            self._next_slot = (self._next_slot + 1) % self.capacity

    def sample(self, batch_size: int) -> TransitionBatch:
        """Sample ``batch_size`` transitions uniformly with replacement."""
        check_positive(batch_size, "batch_size")
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        transitions = [self._storage[i] for i in indices]
        weights = np.ones(batch_size, dtype=float)
        return _stack_batch(transitions, indices, weights)

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """No-op for the uniform buffer (keeps the agent code uniform)."""

    def clear(self) -> None:
        """Drop every stored transition."""
        self._storage.clear()
        self._next_slot = 0


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay (Schaul et al., 2016).

    Priorities default to the maximum priority seen so far so new transitions
    are replayed at least once.  Sampling probability is ``p_i^alpha / Σ
    p^alpha``; importance-sampling weights use exponent ``beta`` annealed
    externally if desired.
    """

    def __init__(
        self,
        capacity: int = 50_000,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
        seed: RandomState = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        check_probability(alpha, "alpha")
        check_probability(beta, "beta")
        check_positive(epsilon, "epsilon")
        self.alpha = alpha
        self.beta = beta
        self.epsilon = epsilon
        self._priorities: List[float] = []
        self._max_priority = 1.0

    def add(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
            self._priorities.append(self._max_priority)
        else:
            self._storage[self._next_slot] = transition
            self._priorities[self._next_slot] = self._max_priority
            self._next_slot = (self._next_slot + 1) % self.capacity

    def sample(self, batch_size: int) -> TransitionBatch:
        check_positive(batch_size, "batch_size")
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        priorities = np.asarray(self._priorities, dtype=float) ** self.alpha
        probabilities = priorities / priorities.sum()
        indices = self._rng.choice(
            len(self._storage), size=batch_size, p=probabilities, replace=True
        )
        transitions = [self._storage[i] for i in indices]
        # Importance-sampling weights, normalized so the largest weight is 1.
        sampled_probs = probabilities[indices]
        weights = (len(self._storage) * sampled_probs) ** (-self.beta)
        weights = weights / weights.max()
        return _stack_batch(transitions, indices, weights.astype(float))

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray) -> None:
        """Set new priorities (absolute TD errors) for sampled transitions."""
        priorities = np.abs(np.asarray(priorities, dtype=float)) + self.epsilon
        for index, priority in zip(np.asarray(indices, dtype=int), priorities):
            if index < 0 or index >= len(self._priorities):
                raise IndexError(f"priority index {index} out of range")
            self._priorities[index] = float(priority)
            self._max_priority = max(self._max_priority, float(priority))

    def clear(self) -> None:
        super().clear()
        self._priorities.clear()
        self._max_priority = 1.0
