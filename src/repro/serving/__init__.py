"""Online placement serving: admission, budgeted fallback chains, chaos."""

from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.report import (
    BoundedTrajectory,
    ServingReport,
    StreamingHistogram,
)
from repro.serving.service import (
    ChainDecision,
    FallbackChain,
    OnlinePlacementService,
    ServingConfig,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BoundedTrajectory",
    "ServingReport",
    "StreamingHistogram",
    "ChainDecision",
    "FallbackChain",
    "OnlinePlacementService",
    "ServingConfig",
]
