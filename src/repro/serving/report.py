"""Memory-flat accounting for the online serving loop.

A multi-day soak processes millions of requests; nothing here may grow with
the request count.  Latency quantiles come from a fixed-size log-binned
histogram, and time-series trajectories are kept bounded by decimation: when
the sample buffer fills, every other sample is dropped and the sampling
stride doubles, so a trajectory covers any horizon in at most
``2 * max_points`` slots of memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.validation import check_positive


class StreamingHistogram:
    """Fixed-size log-binned histogram for positive latencies.

    Bins are geometric between ``lo`` and ``hi`` (values outside clamp to the
    edge bins), so relative resolution is constant across six-plus decades of
    decision latency while memory stays a few hundred ints regardless of how
    many observations stream through.
    """

    def __init__(
        self, lo: float = 1e-6, hi: float = 100.0, bins_per_decade: int = 20
    ) -> None:
        check_positive(lo, "lo")
        check_positive(bins_per_decade, "bins_per_decade")
        if hi <= lo:
            raise ValueError(f"hi ({hi}) must exceed lo ({lo})")
        self._log_lo = math.log10(lo)
        self._log_hi = math.log10(hi)
        self._bins = max(1, round((self._log_hi - self._log_lo) * bins_per_decade))
        self._counts = [0] * self._bins
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    def __len__(self) -> int:
        return self._total

    def record(self, value: float) -> None:
        """Add one observation (clamped into the histogram range)."""
        self._total += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            index = 0
        else:
            frac = (math.log10(value) - self._log_lo) / (self._log_hi - self._log_lo)
            index = min(self._bins - 1, max(0, int(frac * self._bins)))
        self._counts[index] += 1

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (upper edge of the covering bin)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            return 0.0
        target = q * self._total
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= target:
                frac = (index + 1) / self._bins
                return 10 ** (self._log_lo + frac * (self._log_hi - self._log_lo))
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean of all observations (tracked outside the bins)."""
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        """Exact maximum of all observations."""
        return self._max

    def as_dict(self) -> Dict[str, float]:
        """The summary statistics downstream reports embed."""
        return {
            "count": self._total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "max": self._max,
        }


class BoundedTrajectory:
    """A time series whose memory is capped by stride-doubling decimation.

    Samples are offered at a base cadence; once ``max_points`` are held, every
    other retained sample is dropped and the keep-stride doubles.  The result
    is a uniformly spaced sketch of the full horizon that never exceeds
    ``max_points`` entries.
    """

    def __init__(self, max_points: int = 512) -> None:
        check_positive(max_points, "max_points")
        self.max_points = max_points
        self._times: List[float] = []
        self._values: List[float] = []
        self._stride = 1
        self._offered = 0

    def offer(self, time: float, value: float) -> None:
        """Offer one sample; it is kept only on the current stride."""
        keep = self._offered % self._stride == 0
        self._offered += 1
        if not keep:
            return
        self._times.append(time)
        self._values.append(value)
        if len(self._times) >= self.max_points:
            self._times = self._times[::2]
            self._values = self._values[::2]
            self._stride *= 2

    def as_dict(self) -> Dict[str, List[float]]:
        """JSON-friendly ``{"t": [...], "v": [...]}`` view."""
        return {"t": list(self._times), "v": list(self._values)}


@dataclass
class ServingReport:
    """End-of-run statistics of one :class:`OnlinePlacementService` run.

    Outcome taxonomy (every arrival lands in exactly one bucket):

    * ``shed`` — turned away by admission control (policy never consulted),
    * ``accepted`` — placed by some fallback tier and committed,
    * ``rejected`` — every tier declined / timed out / proposed infeasibly,
    * ``commit_failed`` — a tier's placement raced a failure or departure and
      no longer committed.

    Accepted requests can later be ``disrupted`` by a failure; the retry
    pipeline then resolves each disruption as ``replaced`` (re-placed onto
    healthy capacity), ``lost`` (retry budget exhausted) or ``expired``
    (holding time ran out before a retry could land).
    """

    arrivals: int = 0
    shed: int = 0
    accepted: int = 0
    rejected: int = 0
    commit_failed: int = 0
    sla_violations: int = 0
    disrupted: int = 0
    replaced: int = 0
    lost: int = 0
    expired: int = 0
    retry_attempts: int = 0
    max_queue_depth: int = 0
    tier_wins: Dict[str, int] = field(default_factory=dict)
    tier_timeouts: Dict[str, int] = field(default_factory=dict)
    tier_rejections: Dict[str, int] = field(default_factory=dict)
    tier_infeasible: Dict[str, int] = field(default_factory=dict)
    decision_latency: StreamingHistogram = field(default_factory=StreamingHistogram)
    queue_depth_trajectory: BoundedTrajectory = field(
        default_factory=BoundedTrajectory
    )
    shed_rate_trajectory: BoundedTrajectory = field(default_factory=BoundedTrajectory)
    sla_violation_trajectory: BoundedTrajectory = field(
        default_factory=BoundedTrajectory
    )
    admission: Optional[Dict[str, object]] = None
    horizon: float = 0.0
    processed_events: int = 0

    @property
    def shed_ratio(self) -> float:
        """Fraction of arrivals turned away by admission control."""
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of *admitted* requests that were placed."""
        admitted = self.arrivals - self.shed
        return self.accepted / admitted if admitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view written to ``results/serving.json``."""
        return {
            "arrivals": self.arrivals,
            "shed": self.shed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "commit_failed": self.commit_failed,
            "sla_violations": self.sla_violations,
            "shed_ratio": self.shed_ratio,
            "acceptance_ratio": self.acceptance_ratio,
            "disrupted": self.disrupted,
            "replaced": self.replaced,
            "lost": self.lost,
            "expired": self.expired,
            "retry_attempts": self.retry_attempts,
            "max_queue_depth": self.max_queue_depth,
            "tier_wins": dict(self.tier_wins),
            "tier_timeouts": dict(self.tier_timeouts),
            "tier_rejections": dict(self.tier_rejections),
            "tier_infeasible": dict(self.tier_infeasible),
            "decision_latency_s": self.decision_latency.as_dict(),
            "trajectories": {
                "queue_depth": self.queue_depth_trajectory.as_dict(),
                "shed_rate": self.shed_rate_trajectory.as_dict(),
                "sla_violation_rate": self.sla_violation_trajectory.as_dict(),
            },
            "admission": self.admission or {},
            "horizon": self.horizon,
            "processed_events": self.processed_events,
        }
