"""The long-running online placement service.

:class:`OnlinePlacementService` replays a (possibly multi-day, multi-million
request) arrival trace through a tiered fallback chain of budgeted placement
policies as a bounded-queue event loop:

1. **Admission** — every arrival first passes the
   :class:`~repro.serving.admission.AdmissionController`; shed requests never
   reach a policy.
2. **Decision** — a single virtual decision server works the queue in FIFO
   order.  Each decision runs the :class:`FallbackChain`: tier after tier is
   consulted under its wall-clock budget until one produces a feasible
   placement, so total decision latency is bounded by the sum of the tier
   budgets.  Charged wall-clock maps into simulation time through
   ``decision_time_scale``, which is what makes slow policies *cause* queueing
   and admission pressure rather than just being measured.
3. **Commit** — the winning placement is re-validated and committed at
   decision-completion time, so a failure or departure racing the decision
   surfaces as an explicit ``commit_failed`` outcome instead of corrupting
   capacity accounting.
4. **Chaos + retry** — correlated fault-domain and link failures (from
   :mod:`repro.sim.failures`) fence capacity and disrupt running chains;
   disrupted chains enter a re-placement pipeline with exponential backoff
   and a bounded retry budget before being declared lost.

Everything the loop accounts for streams into the fixed-memory
:class:`~repro.serving.report.ServingReport`, so the service stays memory-flat
over arbitrarily long traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.timeout import BudgetedPolicy
from repro.nfv.placement import Placement, PlacementError
from repro.nfv.sfc import SFCRequest
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.report import BoundedTrajectory, ServingReport, StreamingHistogram
from repro.sim.engine import EventEngine
from repro.sim.events import Event, EventType, arrival_event, monitoring_event
from repro.sim.failures import (
    DomainFailureInjector,
    placement_traverses_link,
    refresh_link_fence,
    refresh_node_fence,
    release_link_fence,
    release_node_fence,
)
from repro.substrate.link import canonical_endpoints
from repro.substrate.network import SubstrateNetwork
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ChainDecision:
    """What the fallback chain decided for one request."""

    placement: Optional[Placement]
    tier_index: Optional[int]
    charged_s: float


class FallbackChain:
    """Tiers of budgeted policies consulted in order until one places.

    A tier is skipped over (falling through to the next) when it times out,
    declines the request, or proposes a placement that is infeasible on the
    current substrate; per-tier counters attribute every fall-through.
    """

    def __init__(self, tiers: Sequence[BudgetedPolicy]) -> None:
        if not tiers:
            raise ValueError("FallbackChain needs at least one tier")
        for tier in tiers:
            if not isinstance(tier, BudgetedPolicy):
                raise TypeError(
                    f"every tier must be a BudgetedPolicy, got {type(tier).__name__}"
                )
        self.tiers = list(tiers)
        self.tier_names = [
            f"{index}:{tier.policy.name}" for index, tier in enumerate(self.tiers)
        ]
        self.reset_counters()

    @property
    def total_budget_s(self) -> float:
        """The hard upper bound on one decision's charged latency."""
        return sum(tier.budget_s for tier in self.tiers)

    def reset_counters(self) -> None:
        """Zero the per-tier attribution counters."""
        names = self.tier_names
        self.wins: Dict[str, int] = {name: 0 for name in names}
        self.timeouts: Dict[str, int] = {name: 0 for name in names}
        self.rejections: Dict[str, int] = {name: 0 for name in names}
        self.infeasible: Dict[str, int] = {name: 0 for name in names}

    def decide(
        self, request: SFCRequest, network: SubstrateNetwork
    ) -> ChainDecision:
        """Consult tiers in order; charged latencies accumulate across tiers."""
        charged = 0.0
        for index, tier in enumerate(self.tiers):
            name = self.tier_names[index]
            outcome = tier.decide(request, network)
            charged += outcome.charged_s
            if outcome.timed_out:
                self.timeouts[name] += 1
                continue
            if outcome.placement is None:
                self.rejections[name] += 1
                continue
            if not outcome.placement.is_feasible(network):
                self.infeasible[name] += 1
                continue
            self.wins[name] += 1
            return ChainDecision(
                placement=outcome.placement, tier_index=index, charged_s=charged
            )
        return ChainDecision(placement=None, tier_index=None, charged_s=charged)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the online serving loop.

    ``decision_time_scale`` converts charged decision wall-clock seconds into
    virtual trace seconds (a scale of 1.0 means a 10 ms decision occupies the
    decision server for 10 ms of trace time).  Retries back off as
    ``retry_base_delay * retry_backoff ** attempt`` and give up after
    ``retry_max_attempts`` failed re-placements.
    """

    horizon: float = 1000.0
    decision_time_scale: float = 1.0
    monitoring_interval: float = 50.0
    max_trajectory_points: int = 512
    retry_base_delay: float = 2.0
    retry_backoff: float = 2.0
    retry_max_attempts: int = 4
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self) -> None:
        check_positive(self.horizon, "horizon")
        check_non_negative(self.decision_time_scale, "decision_time_scale")
        check_positive(self.monitoring_interval, "monitoring_interval")
        check_positive(self.max_trajectory_points, "max_trajectory_points")
        check_positive(self.retry_base_delay, "retry_base_delay")
        check_positive(self.retry_backoff, "retry_backoff")
        check_positive(self.retry_max_attempts, "retry_max_attempts")


@dataclass(frozen=True)
class _RetryState:
    """One disrupted request moving through the re-placement pipeline."""

    request: SFCRequest
    attempt: int


class OnlinePlacementService:
    """Bounded-queue online serving loop over a streaming request trace."""

    def __init__(
        self,
        network: SubstrateNetwork,
        chain: FallbackChain,
        config: Optional[ServingConfig] = None,
        chaos: Optional[DomainFailureInjector] = None,
    ) -> None:
        self.network = network
        self.chain = chain
        self.config = config or ServingConfig()
        self.chaos = chaos
        self.engine = EventEngine()
        self.admission = AdmissionController(self.config.admission)
        self.report = ServingReport()
        self._queue: Deque[SFCRequest] = deque()
        self._active: Dict[int, Placement] = {}
        self._failed_nodes: set[int] = set()
        self._failed_links: set[Tuple[int, int]] = set()
        self._decision_busy = False
        self._arrivals: Iterator[SFCRequest] = iter(())
        self._window = {"arrivals": 0, "shed": 0, "accepted": 0, "sla_violations": 0}
        engine = self.engine
        engine.on(EventType.REQUEST_ARRIVAL, self._handle_arrival)
        engine.on(EventType.DECISION_COMPLETE, self._handle_decision_complete)
        engine.on(EventType.REQUEST_DEPARTURE, self._handle_departure)
        engine.on(EventType.REPLACEMENT_RETRY, self._handle_retry)
        engine.on(EventType.MONITORING, self._handle_monitoring)
        engine.on(EventType.NODE_FAILURE, self._handle_node_failure)
        engine.on(EventType.NODE_RECOVERY, self._handle_node_recovery)
        engine.on(EventType.LINK_FAILURE, self._handle_link_failure)
        engine.on(EventType.LINK_RECOVERY, self._handle_link_recovery)

    # ------------------------------------------------------------------ #
    # Arrival / admission
    # ------------------------------------------------------------------ #
    def _schedule_next_arrival(self) -> None:
        """Pull one request from the stream (keeps one arrival in flight)."""
        for request in self._arrivals:
            if request.arrival_time > self.config.horizon:
                break
            self.engine.schedule(arrival_event(request.arrival_time, request))
            return

    def _handle_arrival(self, event: Event) -> None:
        request: SFCRequest = event.payload
        self._schedule_next_arrival()
        self.report.arrivals += 1
        self._window["arrivals"] += 1
        if not self.admission.admit(event.time, len(self._queue)):
            self.report.shed += 1
            self._window["shed"] += 1
            return
        self._queue.append(request)
        depth = len(self._queue)
        if depth > self.report.max_queue_depth:
            self.report.max_queue_depth = depth
        self._maybe_start_decision()

    # ------------------------------------------------------------------ #
    # Decision service
    # ------------------------------------------------------------------ #
    def _maybe_start_decision(self) -> None:
        if self._decision_busy or not self._queue:
            return
        request = self._queue.popleft()
        decision = self.chain.decide(request, self.network)
        self._decision_busy = True
        complete_at = self.engine.now + (
            decision.charged_s * self.config.decision_time_scale
        )
        self.engine.schedule(
            Event.create(
                complete_at, EventType.DECISION_COMPLETE, payload=(request, decision)
            )
        )

    def _handle_decision_complete(self, event: Event) -> None:
        request, decision = event.payload
        self._decision_busy = False
        self.report.decision_latency.record(decision.charged_s)
        if decision.placement is None:
            self.report.rejected += 1
        else:
            self._commit_decision(request, decision.placement)
        self._maybe_start_decision()

    def _commit_decision(self, request: SFCRequest, placement: Placement) -> None:
        # The placement was planned at decision *start*; failures, recoveries
        # or departures may have intervened, so re-validate before committing.
        if not self._try_commit(placement):
            self.report.commit_failed += 1
            return
        self._active[request.request_id] = placement
        self.engine.schedule(
            Event.create(
                max(self.engine.now, request.departure_time),
                EventType.REQUEST_DEPARTURE,
                payload=request.request_id,
            )
        )
        self.report.accepted += 1
        self._window["accepted"] += 1
        if not placement.satisfies_sla(self.network):
            self.report.sla_violations += 1
            self._window["sla_violations"] += 1

    def _try_commit(self, placement: Placement) -> bool:
        if not placement.is_feasible(self.network):
            return False
        try:
            placement.commit(self.network)
        except PlacementError:
            return False
        return True

    def _handle_departure(self, event: Event) -> None:
        request_id: int = event.payload
        placement = self._active.pop(request_id, None)
        if placement is None:
            return  # disrupted earlier (and possibly lost) — nothing to free
        if placement.is_committed:
            placement.release(self.network)
            self._refold_fences(placement)
        for tier in self.chain.tiers:
            tier.on_departure(request_id, self.network)

    # ------------------------------------------------------------------ #
    # Chaos: failures, fencing, disruption
    # ------------------------------------------------------------------ #
    def _handle_node_failure(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        self._disrupt(
            [
                (request_id, placement)
                for request_id, placement in self._active.items()
                if node_id in placement.node_assignment
            ]
        )
        refresh_node_fence(self.network, node_id)

    def _handle_node_recovery(self, event: Event) -> None:
        node_id: int = event.payload
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        release_node_fence(self.network, node_id)

    def _handle_link_failure(self, event: Event) -> None:
        endpoints = canonical_endpoints(*event.payload)
        if endpoints in self._failed_links or not self.network.has_link(*endpoints):
            return
        self._failed_links.add(endpoints)
        self._disrupt(
            [
                (request_id, placement)
                for request_id, placement in self._active.items()
                if placement_traverses_link(placement, endpoints)
            ]
        )
        refresh_link_fence(self.network, endpoints)

    def _handle_link_recovery(self, event: Event) -> None:
        endpoints = canonical_endpoints(*event.payload)
        if endpoints not in self._failed_links:
            return
        self._failed_links.discard(endpoints)
        release_link_fence(self.network, endpoints)

    def _disrupt(self, victims: List[Tuple[int, Placement]]) -> None:
        """Tear down disrupted placements and enqueue them for re-placement."""
        for request_id, placement in victims:
            if placement.is_committed:
                placement.release(self.network)
            self._refold_fences(placement)
            request = self._active.pop(request_id).request
            self.report.disrupted += 1
            self.engine.schedule(
                Event.create(
                    self.engine.now + self.config.retry_base_delay,
                    EventType.REPLACEMENT_RETRY,
                    payload=_RetryState(request=request, attempt=0),
                )
            )

    def _refold_fences(self, placement: Placement) -> None:
        """Fold capacity a release freed on fenced components back into fences."""
        for node_id in set(placement.node_assignment) & self._failed_nodes:
            refresh_node_fence(self.network, node_id)
        for endpoints in self._failed_links:
            if placement_traverses_link(placement, endpoints):
                refresh_link_fence(self.network, endpoints)

    # ------------------------------------------------------------------ #
    # Re-placement pipeline
    # ------------------------------------------------------------------ #
    def _handle_retry(self, event: Event) -> None:
        state: _RetryState = event.payload
        request = state.request
        if request.departure_time - self.engine.now <= 0.0:
            self.report.expired += 1
            return
        self.report.retry_attempts += 1
        # Retries run on the control plane: they bypass admission and do not
        # occupy the decision server (the request already paid for its
        # original decision), but they go through the same budgeted chain.
        decision = self.chain.decide(request, self.network)
        if decision.placement is not None and self._try_commit(decision.placement):
            self._active[request.request_id] = decision.placement
            self.report.replaced += 1
            # The departure event from the original acceptance is still
            # scheduled and will release this re-placement at the right time.
            return
        next_attempt = state.attempt + 1
        if next_attempt >= self.config.retry_max_attempts:
            self.report.lost += 1
            return
        delay = self.config.retry_base_delay * (
            self.config.retry_backoff ** next_attempt
        )
        self.engine.schedule(
            Event.create(
                self.engine.now + delay,
                EventType.REPLACEMENT_RETRY,
                payload=_RetryState(request=request, attempt=next_attempt),
            )
        )

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def _handle_monitoring(self, event: Event) -> None:
        window = self._window
        arrivals = max(1, window["arrivals"])
        accepted = max(1, window["accepted"])
        self.report.queue_depth_trajectory.offer(event.time, float(len(self._queue)))
        self.report.shed_rate_trajectory.offer(
            event.time, window["shed"] / arrivals
        )
        self.report.sla_violation_trajectory.offer(
            event.time, window["sla_violations"] / accepted
        )
        for key in window:
            window[key] = 0
        next_time = event.time + self.config.monitoring_interval
        if next_time <= self.config.horizon:
            self.engine.schedule(monitoring_event(next_time))

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[SFCRequest]) -> ServingReport:
        """Serve the (arrival-ordered) request stream and return the report.

        ``requests`` may be any iterable, including a lazy generator — only
        one pending arrival is ever held in the event queue, which is what
        keeps multi-million-request soaks memory-flat.
        """
        config = self.config
        self.network.reset()
        self.engine.reset()
        self.admission.reset()
        self.chain.reset_counters()
        for tier in self.chain.tiers:
            tier.reset()
        self.report = ServingReport(
            decision_latency=StreamingHistogram(),
            queue_depth_trajectory=BoundedTrajectory(config.max_trajectory_points),
            shed_rate_trajectory=BoundedTrajectory(config.max_trajectory_points),
            sla_violation_trajectory=BoundedTrajectory(
                config.max_trajectory_points
            ),
        )
        self._queue.clear()
        self._active.clear()
        self._failed_nodes.clear()
        self._failed_links.clear()
        self._decision_busy = False
        for key in self._window:
            self._window[key] = 0

        if self.chaos is not None:
            for chaos_event in self.chaos.schedule(self.network, config.horizon):
                self.engine.schedule(chaos_event.to_engine_event())
        self._arrivals = iter(requests)
        self._schedule_next_arrival()
        self.engine.schedule(monitoring_event(config.monitoring_interval))

        processed = self.engine.run(until=config.horizon)
        # Drain in-flight decisions, retries and departures past the horizon
        # so every commitment resolves and capacity accounting closes.
        processed += self.engine.run()

        self.report.tier_wins = dict(self.chain.wins)
        self.report.tier_timeouts = dict(self.chain.timeouts)
        self.report.tier_rejections = dict(self.chain.rejections)
        self.report.tier_infeasible = dict(self.chain.infeasible)
        self.report.admission = self.admission.as_dict()
        self.report.horizon = config.horizon
        self.report.processed_events = processed
        return self.report
