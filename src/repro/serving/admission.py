"""Admission control for the online serving loop.

Two gates compose, both cheap enough to sit on the hot path:

* a **token bucket** bounds the sustained admit rate (with burst headroom), and
* a **queue-depth gate with hysteresis** sheds load once the decision queue
  reaches its high watermark and keeps shedding until the queue drains to the
  low watermark — so the controller does not flap between admit and shed on
  every request when the queue hovers around a threshold.

A request turned away here is a ``SHED`` outcome: the policy never saw it.
That is deliberately distinct from a policy rejection — shed rate measures
overload, rejection rate measures placement difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class AdmissionConfig:
    """Parameters of the admission gate.

    ``tokens_per_second`` is in *virtual-time* seconds of the serving clock;
    set it at or above the expected nominal arrival rate so the bucket only
    bites under overload.  The watermarks drive the hysteresis: shedding
    starts when the decision queue reaches ``queue_high_watermark`` and stops
    only once it drains to ``queue_low_watermark``.
    """

    tokens_per_second: float = 100.0
    bucket_capacity: float = 200.0
    queue_high_watermark: int = 64
    queue_low_watermark: int = 16

    def __post_init__(self) -> None:
        check_positive(self.tokens_per_second, "tokens_per_second")
        check_positive(self.bucket_capacity, "bucket_capacity")
        check_positive(self.queue_high_watermark, "queue_high_watermark")
        check_non_negative(self.queue_low_watermark, "queue_low_watermark")
        if self.queue_low_watermark >= self.queue_high_watermark:
            raise ValueError(
                f"queue_low_watermark ({self.queue_low_watermark}) must be "
                f"below queue_high_watermark ({self.queue_high_watermark}) "
                "for the hysteresis band to exist"
            )


class AdmissionController:
    """Token-bucket + queue-depth admission gate with hysteresis."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.reset()

    def reset(self) -> None:
        """Restore the full bucket and clear all counters."""
        self._tokens = self.config.bucket_capacity
        self._last_refill = 0.0
        self.shedding = False
        self.admitted = 0
        self.shed_overload = 0
        self.shed_rate_limited = 0
        self.shed_mode_entries = 0
        self.shed_mode_exits = 0

    @property
    def shed(self) -> int:
        """Total requests shed (queue overload + rate limit)."""
        return self.shed_overload + self.shed_rate_limited

    def admit(self, now: float, queue_depth: int) -> bool:
        """Decide whether to admit a request arriving at ``now``.

        ``queue_depth`` is the decision-queue depth *before* enqueueing this
        request; admitting at depth ``high_watermark - 1`` is therefore the
        deepest the queue can ever get.
        """
        if now > self._last_refill:
            self._tokens = min(
                self.config.bucket_capacity,
                self._tokens
                + (now - self._last_refill) * self.config.tokens_per_second,
            )
            self._last_refill = now
        if not self.shedding and queue_depth >= self.config.queue_high_watermark:
            self.shedding = True
            self.shed_mode_entries += 1
        elif self.shedding and queue_depth <= self.config.queue_low_watermark:
            self.shedding = False
            self.shed_mode_exits += 1
        if self.shedding:
            self.shed_overload += 1
            return False
        if self._tokens < 1.0:
            self.shed_rate_limited += 1
            return False
        self._tokens -= 1.0
        self.admitted += 1
        return True

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly counter view."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_overload": self.shed_overload,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_mode_entries": self.shed_mode_entries,
            "shed_mode_exits": self.shed_mode_exits,
        }
