"""repro — Deep Reinforcement Learning Based VNF Management in Geo-distributed Edge Computing.

A from-scratch Python reproduction of the ICDCS 2019 system: a geo-distributed
edge/cloud substrate simulator, an NFV service-chain model, a discrete-event
online placement simulator, pure-numpy deep RL agents (DQN family, REINFORCE,
A2C), the VNF-placement MDP, classical baselines, and a benchmark harness that
regenerates every table and figure of the reconstructed evaluation.

Quickstart
----------
>>> from repro import VNFManager, reference_scenario
>>> scenario = reference_scenario(arrival_rate=0.8, num_edge_nodes=8)
>>> manager = VNFManager(scenario)
>>> history = manager.train()          # learn a placement policy
>>> result = manager.evaluate_online() # evaluate in the online simulator
>>> result.summary.acceptance_ratio    # doctest: +SKIP
"""

from repro.agents import (
    A2CConfig,
    ActorCriticAgent,
    Agent,
    DQNAgent,
    DQNConfig,
    ReinforceAgent,
    ReinforceConfig,
    TabularQLearningAgent,
    make_dqn_variant,
)
from repro.baselines import (
    BestFitPolicy,
    BruteForceOptimalPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
    RandomPlacementPolicy,
    ViterbiPlacementPolicy,
    standard_baselines,
)
from repro.core import (
    DRLPlacementPolicy,
    EnvConfig,
    ManagerConfig,
    RewardConfig,
    StateEncoder,
    Trainer,
    TrainingConfig,
    VNFManager,
    VNFPlacementEnv,
)
from repro.experiments import ExperimentConfig
from repro.nfv import (
    Placement,
    SFCRequest,
    ServiceFunctionChain,
    ServiceLevelAgreement,
    VNFCatalog,
    VNFType,
    default_catalog,
    default_chain_templates,
)
from repro.sim import (
    NFVSimulation,
    PlacementPolicy,
    PoissonProcess,
    SimulationConfig,
    SimulationResult,
)
from repro.substrate import (
    ComputeNode,
    GeoPoint,
    ResourceVector,
    SubstrateNetwork,
    TopologyConfig,
    metro_edge_cloud_topology,
)
from repro.workloads import (
    RequestGenerator,
    Scenario,
    WorkloadConfig,
    reference_scenario,
    scalability_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "A2CConfig",
    "ActorCriticAgent",
    "Agent",
    "DQNAgent",
    "DQNConfig",
    "ReinforceAgent",
    "ReinforceConfig",
    "TabularQLearningAgent",
    "make_dqn_variant",
    "BestFitPolicy",
    "BruteForceOptimalPolicy",
    "CloudOnlyPolicy",
    "EdgeOnlyPolicy",
    "FirstFitPolicy",
    "GreedyLeastLoadedPolicy",
    "GreedyNearestPolicy",
    "RandomPlacementPolicy",
    "ViterbiPlacementPolicy",
    "standard_baselines",
    "DRLPlacementPolicy",
    "EnvConfig",
    "ManagerConfig",
    "RewardConfig",
    "StateEncoder",
    "Trainer",
    "TrainingConfig",
    "VNFManager",
    "VNFPlacementEnv",
    "ExperimentConfig",
    "Placement",
    "SFCRequest",
    "ServiceFunctionChain",
    "ServiceLevelAgreement",
    "VNFCatalog",
    "VNFType",
    "default_catalog",
    "default_chain_templates",
    "NFVSimulation",
    "PlacementPolicy",
    "PoissonProcess",
    "SimulationConfig",
    "SimulationResult",
    "ComputeNode",
    "GeoPoint",
    "ResourceVector",
    "SubstrateNetwork",
    "TopologyConfig",
    "metro_edge_cloud_topology",
    "RequestGenerator",
    "Scenario",
    "WorkloadConfig",
    "reference_scenario",
    "scalability_scenario",
    "__version__",
]
