"""repro — Deep Reinforcement Learning Based VNF Management in Geo-distributed Edge Computing.

A from-scratch Python reproduction of the ICDCS 2019 system: a geo-distributed
edge/cloud substrate simulator, an NFV service-chain model, a discrete-event
online placement simulator, pure-numpy deep RL agents (DQN family, REINFORCE,
A2C), the VNF-placement MDP, classical baselines, and a benchmark harness that
regenerates every table and figure of the reconstructed evaluation.

Quickstart
----------
>>> from repro import VNFManager, reference_scenario
>>> scenario = reference_scenario(arrival_rate=0.8, num_edge_nodes=8)
>>> manager = VNFManager(scenario)
>>> history = manager.train()          # batched DQN training
>>> result = manager.evaluate_online() # evaluate in the online simulator
>>> result.summary.acceptance_ratio    # doctest: +SKIP

Comparing policies on one trace
-------------------------------
>>> from repro import NFVSimulation, SimulationConfig, standard_baselines
>>> from repro.experiments import parallel_policy_comparison
>>> requests = scenario.generate_requests()
>>> results = parallel_policy_comparison(     # one worker process per policy
...     scenario.build_network, standard_baselines(seed=0), requests,
...     SimulationConfig(horizon=300.0))

Reproducing a paper figure (with on-disk caching)
-------------------------------------------------
>>> from repro.experiments import ExperimentConfig, ResultCache
>>> from repro.experiments.figures import figure_acceptance_vs_arrival
>>> config = ExperimentConfig.fast()
>>> data, hit = ResultCache().get_or_compute(
...     "fig2", config, lambda: figure_acceptance_vs_arrival(config))

See ``README.md`` for the module map, ``docs/ARCHITECTURE.md`` for the layer
diagram and episode data flow, and ``docs/BENCHMARKS.md`` for the benchmark
harness.
"""

from repro.agents import (
    A2CConfig,
    ActorCriticAgent,
    Agent,
    DQNAgent,
    DQNConfig,
    ReinforceAgent,
    ReinforceConfig,
    TabularQLearningAgent,
    make_dqn_variant,
)
from repro.baselines import (
    BestFitPolicy,
    BruteForceOptimalPolicy,
    CloudOnlyPolicy,
    EdgeOnlyPolicy,
    FirstFitPolicy,
    GreedyLeastLoadedPolicy,
    GreedyNearestPolicy,
    RandomPlacementPolicy,
    ViterbiPlacementPolicy,
    standard_baselines,
)
from repro.core import (
    DRLPlacementPolicy,
    EnvConfig,
    ManagerConfig,
    RewardConfig,
    StateEncoder,
    Trainer,
    TrainingConfig,
    VNFManager,
    VNFPlacementEnv,
)
from repro.experiments import ExperimentConfig
from repro.nfv import (
    Placement,
    SFCRequest,
    ServiceFunctionChain,
    ServiceLevelAgreement,
    VNFCatalog,
    VNFType,
    default_catalog,
    default_chain_templates,
)
from repro.sim import (
    NFVSimulation,
    PlacementPolicy,
    PoissonProcess,
    SimulationConfig,
    SimulationResult,
)
from repro.substrate import (
    ComputeNode,
    GeoPoint,
    ResourceVector,
    SubstrateNetwork,
    TopologyConfig,
    metro_edge_cloud_topology,
)
from repro.workloads import (
    RequestGenerator,
    Scenario,
    WorkloadConfig,
    reference_scenario,
    scalability_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "A2CConfig",
    "ActorCriticAgent",
    "Agent",
    "DQNAgent",
    "DQNConfig",
    "ReinforceAgent",
    "ReinforceConfig",
    "TabularQLearningAgent",
    "make_dqn_variant",
    "BestFitPolicy",
    "BruteForceOptimalPolicy",
    "CloudOnlyPolicy",
    "EdgeOnlyPolicy",
    "FirstFitPolicy",
    "GreedyLeastLoadedPolicy",
    "GreedyNearestPolicy",
    "RandomPlacementPolicy",
    "ViterbiPlacementPolicy",
    "standard_baselines",
    "DRLPlacementPolicy",
    "EnvConfig",
    "ManagerConfig",
    "RewardConfig",
    "StateEncoder",
    "Trainer",
    "TrainingConfig",
    "VNFManager",
    "VNFPlacementEnv",
    "ExperimentConfig",
    "Placement",
    "SFCRequest",
    "ServiceFunctionChain",
    "ServiceLevelAgreement",
    "VNFCatalog",
    "VNFType",
    "default_catalog",
    "default_chain_templates",
    "NFVSimulation",
    "PlacementPolicy",
    "PoissonProcess",
    "SimulationConfig",
    "SimulationResult",
    "ComputeNode",
    "GeoPoint",
    "ResourceVector",
    "SubstrateNetwork",
    "TopologyConfig",
    "metro_edge_cloud_topology",
    "RequestGenerator",
    "Scenario",
    "WorkloadConfig",
    "reference_scenario",
    "scalability_scenario",
    "__version__",
]
