"""Reproducible random number generation.

All stochastic components in the library (topology generators, arrival
processes, exploration policies, network weight initialization) accept either
an integer seed or a :class:`numpy.random.Generator`.  Routing everything
through :func:`new_rng` keeps experiments reproducible end to end: the same
seed always yields the same topology, the same request trace and the same
training trajectory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

#: Type alias accepted by every stochastic entry point in the library.
RandomState = Union[int, np.random.Generator, None]


def new_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible seed spec.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic seeding, an ``int`` for a reproducible
        generator, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Useful when a single experiment seed must drive several independent
    stochastic processes (e.g. topology generation vs. request arrivals) so
    that changing one sweep parameter does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: RandomState, *labels: object) -> int:
    """Derive a deterministic integer seed from a base seed and labels.

    The same ``(seed, labels)`` pair always produces the same derived seed —
    across processes and Python invocations (labels are hashed with zlib.crc32
    rather than the per-process randomized ``hash``) — which makes per-run
    seeds in parameter sweeps reproducible without requiring callers to manage
    seed bookkeeping themselves.
    """
    import zlib

    base = new_rng(seed).integers(0, 2**31 - 1)
    mixed = int(base)
    for label in labels:
        label_hash = zlib.crc32(str(label).encode("utf-8"))
        mixed = (mixed * 1000003 + label_hash) % (2**31 - 1)
    return mixed


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable, size: int
) -> list:
    """Sample ``size`` distinct items from ``items`` (order randomized)."""
    pool = list(items)
    if size > len(pool):
        raise ValueError(
            f"cannot sample {size} items from a population of {len(pool)}"
        )
    idx = rng.choice(len(pool), size=size, replace=False)
    return [pool[i] for i in idx]


def exponential_sample(
    rng: np.random.Generator, rate: float, size: Optional[int] = None
):
    """Sample from an exponential distribution parameterized by *rate*.

    numpy's ``exponential`` takes the scale (mean); arrival processes in this
    library are parameterized by rate (events per unit time), so this wrapper
    avoids a recurring source of unit bugs.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return rng.exponential(scale=1.0 / rate, size=size)
