"""Shared utilities: seeding, validation and serialization helpers."""

from repro.utils.rng import RandomState, derive_seed, new_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_type,
)
from repro.utils.serialization import to_jsonable, save_json, load_json

__all__ = [
    "RandomState",
    "derive_seed",
    "new_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_type",
    "to_jsonable",
    "save_json",
    "load_json",
]
