"""JSON-friendly serialization helpers.

Experiment results (figure series, table rows, agent checkpoints' metadata)
are persisted as plain JSON so that downstream plotting or analysis does not
depend on this package being importable.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable builtins.

    Handles numpy scalars and arrays, dataclasses, enums, mappings, sets and
    sequences.  Unknown objects fall back to ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    return str(obj)


def save_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialize ``obj`` to JSON at ``path`` (parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=False)
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON content from ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
