"""Lightweight argument validation helpers.

These helpers centralize the error messages used across the library so that
misconfigured experiments fail fast with actionable messages instead of
producing silently wrong simulation results.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float, low: float, high: float, name: str, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the given range."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_type(
    value: Any, expected: Union[Type, Tuple[Type, ...]], name: str
) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        exp_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be of type {exp_name}, got {type(value).__name__}"
        )
    return value


def check_not_empty(value, name: str):
    """Raise ``ValueError`` if a sized container is empty."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")
    return value
