"""The analysis driver: collect files, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.findings import Finding, Report
from repro.analysis.module import SourceModule
from repro.analysis.registry import all_rules
from repro.analysis.rules.base import FileRule, ProjectRule
from repro.analysis.suppressions import BAD_SUPPRESSION_RULE, PARSE_ERROR_RULE


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(
    paths: Sequence[Path], root: Path, config: AnalysisConfig
) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: Dict[str, Path] = {}
    for entry in paths:
        entry = entry if entry.is_absolute() else root / entry
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            rel = _rel_path(candidate, root)
            if config.excluded(rel):
                continue
            seen.setdefault(rel, candidate)
    return [seen[rel] for rel in sorted(seen)]


def analyze_modules(
    modules: List[SourceModule],
    config: AnalysisConfig,
    root: Path,
) -> Report:
    """Run every enabled rule over pre-loaded modules."""
    registered = all_rules()
    enabled = config.enabled_rules(list(registered))
    raw: List[Finding] = []

    for module in modules:
        if module.parse_error is not None:
            line, msg = module.parse_error
            raw.append(
                Finding(PARSE_ERROR_RULE, module.rel, line, 1,
                        f"file does not parse: {msg}", symbol="syntax")
            )
        for line, detail in module.malformed_suppressions:
            raw.append(
                Finding(BAD_SUPPRESSION_RULE, module.rel, line, 1, detail,
                        symbol="repro-lint")
            )

    by_rel = {module.rel: module for module in modules}
    for rule_id in enabled:
        rule_cls = registered[rule_id]
        rule = rule_cls(config.options_for(rule_id))
        scope = config.scope_for(rule_id)
        if issubclass(rule_cls, ProjectRule):
            raw.extend(rule.check_project(by_rel, root))
        elif issubclass(rule_cls, FileRule):
            for module in modules:
                if scope.applies_to(module.rel):
                    raw.extend(rule.check_module(module))

    findings: List[Finding] = []
    suppressed = 0
    suppression_cache: Dict[str, Dict[int, set]] = {
        module.rel: module.suppressions for module in modules
    }
    for finding in raw:
        lines = suppression_cache.get(finding.path)
        if lines is None:
            # Project-rule findings may land on files outside the scan set;
            # honor their inline suppressions too.
            target = root / finding.path
            try:
                lines = SourceModule.load(target, finding.path).suppressions
            except OSError:
                lines = {}
            suppression_cache[finding.path] = lines
        if finding.rule_id in lines.get(finding.line, ()):
            suppressed += 1
            continue
        findings.append(finding)

    findings.sort(key=Finding.sort_key)
    return Report(
        findings=findings,
        files_scanned=len(modules),
        suppressed=suppressed,
        rules_enabled=sorted(enabled),
        paths=sorted(by_rel),
    )


def analyze_paths(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    root: Optional[Path] = None,
) -> Report:
    """Analyze files/directories; the main entry point for CLI and tests."""
    config = config if config is not None else default_config()
    root = (root or Path.cwd()).resolve()
    files = collect_files([Path(p) for p in paths], root, config)
    modules = [SourceModule.load(path, _rel_path(path, root)) for path in files]
    return analyze_modules(modules, config, root)


def analyze_source(
    text: str,
    rel: str = "<string>",
    config: Optional[AnalysisConfig] = None,
    root: Optional[Path] = None,
) -> Report:
    """Analyze a single in-memory module (rule unit tests)."""
    config = config if config is not None else default_config()
    module = SourceModule.from_source(text, rel=rel)
    return analyze_modules([module], config, (root or Path.cwd()).resolve())
