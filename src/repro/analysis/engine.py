"""The analysis driver: collect files, run rules, apply suppressions.

Two execution paths produce byte-identical reports:

* :func:`analyze_modules` — the cold path: parse everything, run every
  enabled rule.
* the cached path inside :func:`analyze_paths` (``cache_file=...``) — per
  file, a content-hash hit replays the stored raw findings and suppression
  map instead of parsing; per project rule, an input-scope hit replays the
  stored findings.  Only *raw* (pre-suppression) findings are cached, so
  the shared suppression/sort/summary tail runs identically either way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import (
    CacheStats,
    LintCache,
    config_fingerprint,
    file_digest,
    project_scope_digest,
)
from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.findings import Finding, Report
from repro.analysis.module import SourceModule
from repro.analysis.registry import all_rules
from repro.analysis.rules.base import FileRule, ProjectRule
from repro.analysis.suppressions import BAD_SUPPRESSION_RULE, PARSE_ERROR_RULE


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(
    paths: Sequence[Path], root: Path, config: AnalysisConfig
) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: Dict[str, Path] = {}
    for entry in paths:
        entry = entry if entry.is_absolute() else root / entry
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            rel = _rel_path(candidate, root)
            if config.excluded(rel):
                continue
            seen.setdefault(rel, candidate)
    return [seen[rel] for rel in sorted(seen)]


def _framework_findings(module: SourceModule) -> List[Finding]:
    findings: List[Finding] = []
    if module.parse_error is not None:
        line, msg = module.parse_error
        findings.append(
            Finding(PARSE_ERROR_RULE, module.rel, line, 1,
                    f"file does not parse: {msg}", symbol="syntax")
        )
    for line, detail in module.malformed_suppressions:
        findings.append(
            Finding(BAD_SUPPRESSION_RULE, module.rel, line, 1, detail,
                    symbol="repro-lint")
        )
    return findings


def _split_rules(config: AnalysisConfig):
    """(enabled ids, file-rule instances, project-rule instances)."""
    registered = all_rules()
    enabled = config.enabled_rules(list(registered))
    file_rules = []
    project_rules = []
    for rule_id in enabled:
        rule_cls = registered[rule_id]
        rule = rule_cls(config.options_for(rule_id))
        if issubclass(rule_cls, ProjectRule):
            project_rules.append(rule)
        elif issubclass(rule_cls, FileRule):
            file_rules.append(rule)
    return enabled, file_rules, project_rules


def _file_rule_findings(
    module: SourceModule, file_rules, config: AnalysisConfig
) -> List[Finding]:
    """Framework + in-scope file-rule raw findings for one module.

    This exact function feeds both the cold path and cache misses, so a
    cache entry can never diverge from what a cold run would compute.
    """
    findings = _framework_findings(module)
    for rule in file_rules:
        if config.scope_for(rule.rule_id).applies_to(module.rel):
            findings.extend(rule.check_module(module))
    return findings


def _finalize(
    raw: List[Finding],
    suppression_maps: Dict[str, Dict[int, Set[str]]],
    root: Path,
    enabled: Sequence[str],
    rels: Sequence[str],
    cache_stats: Optional[CacheStats] = None,
) -> Report:
    """The shared suppression/sort/summary tail of every run."""
    findings: List[Finding] = []
    suppressed = 0
    for finding in raw:
        lines = suppression_maps.get(finding.path)
        if lines is None:
            # Project-rule findings may land on files outside the scan set;
            # honor their inline suppressions too.
            target = root / finding.path
            try:
                lines = SourceModule.load(target, finding.path).suppressions
            except OSError:
                lines = {}
            suppression_maps[finding.path] = lines
        if finding.rule_id in lines.get(finding.line, ()):
            suppressed += 1
            continue
        findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return Report(
        findings=findings,
        files_scanned=len(rels),
        suppressed=suppressed,
        rules_enabled=sorted(enabled),
        paths=sorted(rels),
        cache_stats=cache_stats,
    )


def analyze_modules(
    modules: List[SourceModule],
    config: AnalysisConfig,
    root: Path,
) -> Report:
    """Run every enabled rule over pre-loaded modules (the cold path)."""
    enabled, file_rules, project_rules = _split_rules(config)
    raw: List[Finding] = []
    for module in modules:
        raw.extend(_file_rule_findings(module, file_rules, config))
    by_rel = {module.rel: module for module in modules}
    for rule in project_rules:
        raw.extend(rule.check_project(by_rel, root))
    suppression_maps: Dict[str, Dict[int, Set[str]]] = {
        module.rel: module.suppressions for module in modules
    }
    return _finalize(raw, suppression_maps, root, enabled, sorted(by_rel))


def _analyze_cached(
    files: List[Path],
    config: AnalysisConfig,
    root: Path,
    cache_file: Path,
) -> Tuple[Report, CacheStats]:
    from repro.analysis.reporters import JSON_SCHEMA_VERSION

    enabled, file_rules, project_rules = _split_rules(config)
    fingerprint = config_fingerprint(config, all_rules(), JSON_SCHEMA_VERSION)
    cache = LintCache.load(cache_file, fingerprint)
    stats = CacheStats()

    raw: List[Finding] = []
    suppression_maps: Dict[str, Dict[int, Set[str]]] = {}
    digests: Dict[str, str] = {}
    parsed: Dict[str, SourceModule] = {}
    rels: List[str] = []
    for path in files:
        rel = _rel_path(path, root)
        rels.append(rel)
        text = path.read_text(encoding="utf-8")
        digest = file_digest(text)
        digests[rel] = digest
        applicable = [
            rule.rule_id
            for rule in file_rules
            if config.scope_for(rule.rule_id).applies_to(rel)
        ]
        entry = cache.lookup_file(rel, digest, applicable)
        if entry is not None:
            stats.file_hits += 1
            raw.extend(LintCache.entry_findings(entry))
            suppression_maps[rel] = LintCache.entry_suppressions(entry)
            continue
        stats.file_misses += 1
        module = SourceModule.from_source(text, path=path, rel=rel)
        parsed[rel] = module
        findings = _file_rule_findings(module, file_rules, config)
        raw.extend(findings)
        suppression_maps[rel] = module.suppressions
        cache.store_file(rel, digest, applicable, findings, module.suppressions)

    for rule in project_rules:
        scope_digest = project_scope_digest(
            rule.project_inputs(), digests, root
        )
        cached = cache.lookup_project(rule.rule_id, scope_digest)
        if cached is not None:
            stats.project_hits += 1
            raw.extend(cached)
            continue
        stats.project_misses += 1
        findings = rule.check_project(parsed, root)
        raw.extend(findings)
        cache.store_project(rule.rule_id, scope_digest, findings)

    cache.save(cache_file)
    report = _finalize(raw, suppression_maps, root, enabled, rels, stats)
    return report, stats


def analyze_paths(
    paths: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    root: Optional[Path] = None,
    cache_file: Optional[Path] = None,
) -> Report:
    """Analyze files/directories; the main entry point for CLI and tests.

    With ``cache_file`` the incremental cache is consulted and refreshed;
    the returned report is byte-identical to a cold run's and carries the
    hit/miss counters in ``report.cache_stats``.
    """
    config = config if config is not None else default_config()
    root = (root or Path.cwd()).resolve()
    files = collect_files([Path(p) for p in paths], root, config)
    if cache_file is not None:
        report, _ = _analyze_cached(files, config, root, cache_file)
        return report
    modules = [SourceModule.load(path, _rel_path(path, root)) for path in files]
    return analyze_modules(modules, config, root)


def analyze_source(
    text: str,
    rel: str = "<string>",
    config: Optional[AnalysisConfig] = None,
    root: Optional[Path] = None,
) -> Report:
    """Analyze a single in-memory module (rule unit tests)."""
    config = config if config is not None else default_config()
    module = SourceModule.from_source(text, rel=rel)
    return analyze_modules([module], config, (root or Path.cwd()).resolve())
