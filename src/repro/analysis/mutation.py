"""Shared in-place-mutation detection for numpy-heavy code.

Three rules care about the same question — "does this AST node mutate that
array?" — with different notions of *that array*: RPL105/RPL204 track the
registered ledger attributes (and local views of them), RPL203 tracks
function parameters declared read-only.  The site classifier lives here so
the catalog of mutation idioms (subscript stores, augmented assignment,
``.fill()``, ``out=`` keyword outputs, ``np.<ufunc>.at`` indexed updates)
is maintained once.

Callers supply a predicate over candidate expressions; the classifier
applies it to the right sub-expression of each idiom (the store target, the
``.fill`` receiver, the ``out=`` value, the first ``.at`` argument).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Optional, Set

from repro.analysis.module import resolve_dotted, subscript_base

#: Classifier results (also used in finding messages).
SUBSCRIPT_STORE = "subscript store"
AUG_ASSIGN = "augmented assignment"
FILL_CALL = ".fill() call"
OUT_KWARG = "out= ufunc output"
UFUNC_AT = "ufunc .at() update"

Predicate = Callable[[ast.AST], bool]


def mutation_kind(
    node: ast.AST, refers: Predicate, imports: Dict[str, str]
) -> Optional[str]:
    """How ``node`` mutates an expression accepted by ``refers``, or None.

    ``refers`` receives the candidate expression exactly as written
    (subscript chains included) and decides whether it denotes the tracked
    array; rebinding checks (``self.attr = ...`` replacing the array
    wholesale) stay with the caller because their meaning is rule-specific.
    """
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and refers(target):
                return SUBSCRIPT_STORE
    elif isinstance(node, ast.AugAssign):
        if refers(node.target):
            return AUG_ASSIGN
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "fill"
            and refers(func.value)
        ):
            return FILL_CALL
        for kw in node.keywords:
            if kw.arg == "out" and refers(kw.value):
                return OUT_KWARG
        dotted = resolve_dotted(func, imports) or ""
        if dotted.endswith(".at") and node.args and refers(node.args[0]):
            return UFUNC_AT
    return None


def base_name_or_attr_refers(
    node: ast.AST, names: Set[str], attr_pred: Predicate
) -> bool:
    """True when ``node`` (possibly a subscript chain) is rooted at a tracked
    local name or at an attribute accepted by ``attr_pred``."""
    base = subscript_base(node)
    if attr_pred(base):
        return True
    return isinstance(node, (ast.Name, ast.Subscript)) and isinstance(
        base, ast.Name
    ) and base.id in names


def chained_alias_names(fn: ast.AST, seed_pred: Predicate) -> Set[str]:
    """Local names transitively bound to (views of) a tracked expression.

    Collects ``x = <seed>[...]`` binds plus chains through already-collected
    names (``y = x[...]``, ``z = y``), iterating ``ast.walk`` to a fixpoint.
    Flow-insensitive by design: a name that ever aliases the tracked array
    is treated as aliasing it everywhere, which over-approximates for the
    lexical rules that use this helper (the flow rules track aliases in
    their own transfer functions instead).
    """
    aliases: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or target.id in aliases:
                continue
            base = subscript_base(node.value)
            if seed_pred(base) or (
                isinstance(base, ast.Name) and base.id in aliases
            ):
                aliases.add(target.id)
                changed = True
    return aliases
