"""reprolint: AST-based project-contract static analysis.

The dynamic enforcement of this repository's invariants — the differential
campaigns proving SoA==reference, lean==full and subproc==sync bitwise —
only catches a contract breach *after* it produces a divergent trajectory.
This package is the commit-time complement: a small lint framework whose
rules encode the contracts directly (no hidden RNG or clock state, no
id()-keyed caches, seed derivation through ``derive_seed``, numpy/Python
shadow-ledger pairing, no silent broad excepts, event-handler
exhaustiveness), so a violating diff fails ``make lint`` / CI before any
campaign runs.  On top of the lexical rules sits a flow-sensitive layer —
an intra-procedural CFG (``cfg``) and worklist dataflow engine
(``dataflow``) powering the ordering/aliasing rules (shared-view escapes,
shadow-ledger staleness, protocol exhaustiveness, read-only parameters).
See ``docs/ANALYSIS.md`` for the rule catalog and how to add a rule.
"""

from repro.analysis.cache import CacheStats, LintCache
from repro.analysis.cfg import CFG, Block, build_cfg
from repro.analysis.config import AnalysisConfig, RuleScope, default_config
from repro.analysis.dataflow import (
    ForwardAnalysis,
    ReachingDefinitions,
    defs_at,
    run_forward,
)
from repro.analysis.engine import analyze_modules, analyze_paths, analyze_source
from repro.analysis.findings import Finding, Report
from repro.analysis.module import SourceModule
from repro.analysis.registry import FRAMEWORK_RULES, all_rules, register
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.rules.base import FileRule, ProjectRule, Rule

__all__ = [
    "AnalysisConfig",
    "RuleScope",
    "default_config",
    "CFG",
    "Block",
    "build_cfg",
    "ForwardAnalysis",
    "ReachingDefinitions",
    "defs_at",
    "run_forward",
    "CacheStats",
    "LintCache",
    "render_github",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "Finding",
    "Report",
    "SourceModule",
    "FRAMEWORK_RULES",
    "all_rules",
    "register",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
    "FileRule",
    "ProjectRule",
    "Rule",
]
