"""Parsed source modules and shared AST utilities.

Every rule works against a :class:`SourceModule`: the raw text, the parsed
tree, an import map that canonicalizes dotted names (``np.random.rand`` →
``numpy.random.rand`` regardless of aliasing), the per-line suppression
index, and parent links for the handful of rules that need to classify a
node by its syntactic context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.suppressions import collect_suppressions


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted path they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``import numpy.random`` → ``{"numpy": "numpy"}``;
    ``from time import perf_counter as pc`` → ``{"pc": "time.perf_counter"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mapping[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """The ``["np", "random", "rand"]`` chain of a Name/Attribute, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, or None.

    Only chains whose base name was imported resolve — a local variable that
    merely shadows a module name stays unresolved, which keeps instance
    attributes (``self.rng.random()``) out of module-level RNG findings.
    """
    parts = dotted_parts(node)
    if not parts or parts[0] not in imports:
        return None
    canonical = imports[parts[0]]
    rest = parts[1:]
    return ".".join([canonical] + rest) if rest else canonical


def subscript_base(node: ast.AST) -> ast.AST:
    """Peel subscript chains: ``a[i][j]`` → the ``a`` expression."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def is_self_attr(node: ast.AST, attr: str) -> bool:
    """True for the exact expression ``self.<attr>``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


@dataclass
class SourceModule:
    """One parsed file plus the per-module context rules consume."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[Tuple[int, str]] = None
    imports: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    malformed_suppressions: List[Tuple[int, str]] = field(default_factory=list)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        return cls.from_source(text, path=path, rel=rel)

    @classmethod
    def from_source(
        cls, text: str, path: Optional[Path] = None, rel: str = "<string>"
    ) -> "SourceModule":
        suppressions, malformed = collect_suppressions(text)
        tree: Optional[ast.AST] = None
        parse_error: Optional[Tuple[int, str]] = None
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            parse_error = (exc.lineno or 1, exc.msg or "syntax error")
        module = cls(
            path=path or Path(rel),
            rel=rel,
            text=text,
            tree=tree,
            parse_error=parse_error,
            suppressions=suppressions,
            malformed_suppressions=malformed,
        )
        if tree is not None:
            module.imports = build_import_map(tree)
        return module

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent links, built lazily on first request."""
        if self._parents is None:
            links: Dict[ast.AST, ast.AST] = {}
            if self.tree is not None:
                for parent in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(parent):
                        links[child] = parent
            self._parents = links
        return self._parents
