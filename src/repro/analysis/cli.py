"""The ``reprolint`` command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error.  ``--output`` always writes
the JSON payload (regardless of ``--format``, which controls stdout), so one
invocation can both gate CI and refresh the committed machine-readable
artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.cache import DEFAULT_CACHE_FILE
from repro.analysis.config import default_config
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import FRAMEWORK_RULES, all_rules
from repro.analysis.reporters import render_github, render_json, render_text

DEFAULT_PATHS = ("src", "benchmarks", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based project-contract analyzer (determinism, "
            "bitwise-shadow and seed-discipline invariants)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root for relative paths and path-scoped config "
             "(default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="stdout report format (default: text); 'github' emits one "
             "::error workflow-command annotation per finding",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="use the content-hash incremental cache (unchanged files skip "
             "analysis; output stays byte-identical to a cold run)",
    )
    parser.add_argument(
        "--cache-file", type=Path, default=None,
        help=f"cache location (default: <root>/{DEFAULT_CACHE_FILE}; "
             "implies --cache)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON payload to this file",
    )
    parser.add_argument(
        "--select", default=None, metavar="RPLxxx[,RPLxxx...]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--disable", default=None, metavar="RPLxxx[,RPLxxx...]",
        help="disable these rule ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw: Optional[str]):
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def list_rules() -> str:
    lines = []
    for rule_id, desc in sorted(FRAMEWORK_RULES.items()):
        lines.append(f"{rule_id}  [framework]  {desc}")
    for rule_id, rule_cls in all_rules().items():
        lines.append(f"{rule_id}  [{rule_cls.name}]  {rule_cls.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    config = default_config()
    select = _split_ids(args.select)
    disable = _split_ids(args.disable)
    known = set(all_rules()) | set(FRAMEWORK_RULES)
    for requested in (select or []) + (disable or []):
        if requested not in known:
            print(f"unknown rule id {requested!r}", file=sys.stderr)
            return 2
    if select is not None:
        config.select = select
    if disable is not None:
        config.disable = disable

    root = (args.root or Path.cwd()).resolve()
    missing = [p for p in args.paths if not (root / p).exists() and not Path(p).exists()]
    if missing:
        print(f"no such path(s): {missing}", file=sys.stderr)
        return 2

    cache_file = args.cache_file
    if cache_file is None and args.cache:
        cache_file = root / DEFAULT_CACHE_FILE
    report = analyze_paths(
        args.paths, config=config, root=root, cache_file=cache_file
    )
    if report.cache_stats is not None:
        # Hit/miss detail goes to stderr only: stdout (and --output) must be
        # byte-identical between cold and warm runs.
        print(report.cache_stats.describe(), file=sys.stderr)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(render_json(report), encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(render_json(report))
    elif args.format == "github":
        print(render_github(report))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
