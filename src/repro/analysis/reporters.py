"""Text, JSON and GitHub-annotation reporters.

The JSON payload is a committed artifact (``benchmarks/results/
reprolint.json``) gated by ``scripts/check_results_schema.py``, so its
top-level shape is versioned and changes require a schema bump:

.. code-block:: json

    {
      "schema_version": 2,
      "tool": "reprolint",
      "rules_enabled": ["RPL101", "..."],
      "paths_scanned": 123,
      "findings": [
        {"rule": "...", "path": "...", "line": 1, "col": 1,
         "message": "...", "symbol": "..."}
      ],
      "summary": {"files": 123, "findings": 0, "suppressed": 12,
                  "clean": true,
                  "by_rule": {"RPL101": 0, "...": 0},
                  "cache": {"enabled": true, "files": 123}}
    }

Schema history: v1 had no ``summary.by_rule``/``summary.cache``; v2 added
both (per-rule post-suppression counts with zeros for every enabled rule,
and whether the incremental cache served the run).  Cache hit/miss counts
deliberately stay out of the payload — they differ between a cold and a
warm run, and the committed artifact must be byte-identical across both.

Output is deterministic: findings sort by (path, line, col, rule) and no
timestamps or absolute paths appear anywhere.

The GitHub format emits one `workflow command
<https://docs.github.com/actions/reference/workflow-commands>`_ error
annotation per finding — CI runs surface findings inline on the PR diff —
followed by the text summary line (``::`` lines are consumed by the runner;
the summary keeps the raw log readable).
"""

from __future__ import annotations

import json

from repro.analysis.findings import Report

#: Bumped whenever the JSON payload's shape changes.
JSON_SCHEMA_VERSION = 2


def render_text(report: Report) -> str:
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} {finding.message}"
        )
    suffix = f" ({report.suppressed} suppressed)" if report.suppressed else ""
    status = "clean — 0 findings" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"reprolint: {status}{suffix} across {report.files_scanned} files, "
        f"{len(report.rules_enabled)} rules enabled"
    )
    return "\n".join(lines)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (file=, title=)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(report: Report) -> str:
    """``::error`` annotations per finding, plus the text summary line."""
    lines = []
    for finding in report.findings:
        lines.append(
            "::error "
            f"file={_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.col},"
            f"title={_escape_property('reprolint ' + finding.rule_id)}"
            f"::{_escape_data(finding.message)}"
        )
    suffix = f" ({report.suppressed} suppressed)" if report.suppressed else ""
    status = "clean — 0 findings" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"reprolint: {status}{suffix} across {report.files_scanned} files, "
        f"{len(report.rules_enabled)} rules enabled"
    )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "rules_enabled": list(report.rules_enabled),
        "paths_scanned": report.files_scanned,
        "findings": [finding.to_dict() for finding in report.findings],
        "summary": {
            "files": report.files_scanned,
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "clean": report.clean,
            "by_rule": report.by_rule(),
            "cache": {
                "enabled": report.cache_stats is not None,
                "files": report.files_scanned,
            },
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
