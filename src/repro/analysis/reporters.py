"""Text and JSON reporters.

The JSON payload is a committed artifact (``benchmarks/results/
reprolint.json``) gated by ``scripts/check_results_schema.py``, so its
top-level shape is versioned and changes require a schema bump:

.. code-block:: json

    {
      "schema_version": 1,
      "tool": "reprolint",
      "rules_enabled": ["RPL101", "..."],
      "paths_scanned": 123,
      "findings": [
        {"rule": "...", "path": "...", "line": 1, "col": 1,
         "message": "...", "symbol": "..."}
      ],
      "summary": {"files": 123, "findings": 0, "suppressed": 12,
                  "clean": true}
    }

Output is deterministic: findings sort by (path, line, col, rule) and no
timestamps or absolute paths appear anywhere.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Report

#: Bumped whenever the JSON payload's shape changes.
JSON_SCHEMA_VERSION = 1


def render_text(report: Report) -> str:
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} {finding.message}"
        )
    suffix = f" ({report.suppressed} suppressed)" if report.suppressed else ""
    status = "clean — 0 findings" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"reprolint: {status}{suffix} across {report.files_scanned} files, "
        f"{len(report.rules_enabled)} rules enabled"
    )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "rules_enabled": list(report.rules_enabled),
        "paths_scanned": report.files_scanned,
        "findings": [finding.to_dict() for finding in report.findings],
        "summary": {
            "files": report.files_scanned,
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "clean": report.clean,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
