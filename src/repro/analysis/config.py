"""Analyzer configuration: enabled rules, per-path scoping, rule options.

The default configuration encodes this repository's contract surface:

* RPL102 (wall-clock reads) is waived for benchmark drivers, the experiment
  CLI and the injectable-clock seam in ``core/timeout.py`` — the three places
  that legitimately measure real elapsed time.
* RPL104 (seed arithmetic) applies to production code (``src``/``benchmarks``)
  only; tests may label ad-hoc campaign seeds arithmetically.
* RPL105 (shadow-ledger pairing) runs only on ``core/soa.py``, the one module
  that declares mirrored numpy/Python ledgers.
* RPL107 (event-handler exhaustiveness) is a cross-module rule configured
  with the event enum's module and the modules allowed to register handlers.
* RPL201 (shared-memory view escapes) runs only on ``core/subproc.py``,
  where the shm-backed ``self._views`` mapping lives.
* RPL202 (pipe-protocol exhaustiveness) is a cross-module rule configured
  with the parent/worker module, the worker loop's dispatch variable and
  the ``_command_all``/``_command_one`` send wrappers.
* RPL203 (read-only parameters) runs repo-wide; obligations come from
  ``# repro-lint: readonly=...`` anchors and frozen-dataclass annotations.
* RPL204 (flow-sensitive shadow staleness) runs only on ``core/soa.py``
  and carries the same ledger pairs as RPL105 plus the scalar-replay
  reader and resync-method vocabularies.
* ``tests/fixtures`` is excluded entirely: it holds deliberately-violating
  lint fixtures.

Paths in scopes are fnmatch globs matched against the project-root-relative
POSIX path of each file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies.

    ``only`` (when non-empty) restricts the rule to matching paths;
    ``skip`` then waives matching paths.  ``skip`` wins over ``only``.
    """

    only: Sequence[str] = ()
    skip: Sequence[str] = ()

    def applies_to(self, rel: str) -> bool:
        if any(fnmatch(rel, pattern) for pattern in self.skip):
            return False
        if self.only:
            return any(fnmatch(rel, pattern) for pattern in self.only)
        return True


@dataclass
class AnalysisConfig:
    """One analyzer run's configuration."""

    #: Glob patterns (root-relative POSIX) excluded from scanning entirely.
    exclude: Sequence[str] = ()
    #: Rule ids to run; None means every registered rule.
    select: Optional[Sequence[str]] = None
    #: Rule ids disabled on top of ``select``.
    disable: Sequence[str] = ()
    #: Per-rule path scoping.
    scopes: Dict[str, RuleScope] = field(default_factory=dict)
    #: Per-rule free-form options consumed by the rule implementation.
    options: Dict[str, dict] = field(default_factory=dict)

    def excluded(self, rel: str) -> bool:
        return any(fnmatch(rel, pattern) for pattern in self.exclude)

    def scope_for(self, rule_id: str) -> RuleScope:
        return self.scopes.get(rule_id, _UNSCOPED)

    def options_for(self, rule_id: str) -> dict:
        return self.options.get(rule_id, {})

    def enabled_rules(self, registered: Sequence[str]) -> List[str]:
        selected = list(self.select) if self.select is not None else list(registered)
        return [rid for rid in selected if rid not in set(self.disable)]


_UNSCOPED = RuleScope()


def default_config() -> AnalysisConfig:
    """The repository's committed rule configuration (see module docstring)."""
    return AnalysisConfig(
        exclude=(
            "tests/fixtures/*",
            "tests/fixtures/**/*",
        ),
        scopes={
            "RPL102": RuleScope(
                skip=(
                    "benchmarks/*",
                    "benchmarks/**/*",
                    "src/repro/experiments/cli.py",
                    "src/repro/core/timeout.py",
                )
            ),
            "RPL104": RuleScope(skip=("tests/*", "tests/**/*")),
            "RPL105": RuleScope(only=("src/repro/core/soa.py",)),
            "RPL201": RuleScope(only=("src/repro/core/subproc.py",)),
            "RPL204": RuleScope(only=("src/repro/core/soa.py",)),
        },
        options={
            "RPL105": {
                # numpy ledger attribute → its Python shadow attribute.
                "pairs": {
                    "_node_used": "_node_used_py",
                    "_link_used": "_link_used_py",
                },
                # Methods whose call counts as a shadow resync at the call
                # site (each syncs the shadows for the rows it touches).
                "resync_methods": [
                    "_release_record",
                    "_reset_lane_state",
                    "_resync_shadow_lanes",
                ],
            },
            "RPL107": {
                "events_module": "src/repro/sim/events.py",
                "enum_name": "EventType",
                "handler_modules": [
                    "src/repro/sim/engine.py",
                    "src/repro/sim/simulation.py",
                    "src/repro/sim/failures.py",
                    "src/repro/serving/service.py",
                ],
                "register_methods": ["on"],
            },
            "RPL201": {
                # self attributes holding shm-backed view mappings.
                "view_attrs": ["_views"],
            },
            "RPL202": {
                "module": "src/repro/core/subproc.py",
                "worker_function": "_worker_main",
                "command_var": "command",
                "reply_var": "tag",
                # Wrapper method → index of its command argument.
                "send_wrappers": {"_command_all": 0, "_command_one": 1},
            },
            "RPL204": {
                # Same pairs as RPL105; RPL204 adds the ordering dimension.
                "pairs": {
                    "_node_used": "_node_used_py",
                    "_link_used": "_link_used_py",
                },
                # Scalar-replay entry points: calling one while a ledger is
                # dirty means the replay consumes stale shadow rows.
                "shadow_readers": [
                    "_release_record",
                    "_check_feasible",
                    "_commit",
                    "_rollback",
                    "_finalize_request",
                ],
                # Methods that bring every shadow row they touch up to date.
                "resync_methods": [
                    "_reset_lane_state",
                    "_resync_shadow_lanes",
                ],
            },
        },
    )
