"""RPL202: subprocess command protocol must be exhaustive, both directions.

The vectorized subprocess environment speaks a tiny pipe protocol: the
parent sends ``(command, payload)`` tuples — through the
``_command_all``/``_command_one`` wrappers or directly via ``conn.send`` —
and each worker's command loop dispatches on the tag; replies travel back as
``(tag, payload)`` and the parent branches on the reply tag.  The tag sets
live only in string literals, so nothing but review discipline keeps them
aligned: a parent-side command with no worker branch raises a generic
"unknown worker command" *at runtime, in a subprocess*, and a worker reply
the parent never examines silently stands in for an ack (the original
``"ok"`` tag was exactly that — see ``_collect``).

Like RPL107, the check is AST-derived from the real modules so it can never
drift from the code:

* every command the parent sends must be dispatched by the worker loop, and
  every dispatched command must be sent by some parent call site;
* every reply tag the worker sends must be examined by the parent, and
  every examined tag must be sent by some worker site.

Configured via options::

    module:          "src/repro/core/subproc.py"   # parent side
    worker_module:   "src/repro/core/subproc.py"   # worker side (same file here)
    worker_function: "_worker_main"
    command_var:     "command"   # worker's dispatch variable
    reply_var:       "tag"       # parent's reply variable
    send_wrappers:   {"_command_all": 0, "_command_one": 1}  # cmd arg index
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.registry import register
from repro.analysis.rules.base import ProjectRule

_COMPARE_OPS = (ast.Eq, ast.NotEq)
_MEMBER_OPS = (ast.In, ast.NotIn)


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _compared_tags(node: ast.Compare, var: str) -> List[str]:
    """String constants this compare tests ``var`` against (any direction)."""
    tags: List[str] = []
    sides = [node.left] + list(node.comparators)
    involves_var = any(
        isinstance(side, ast.Name) and side.id == var for side in sides
    )
    if not involves_var:
        return tags
    for op, comparator in zip(node.ops, node.comparators):
        if isinstance(op, _COMPARE_OPS):
            for side in (node.left, comparator):
                value = _const_str(side)
                if value is not None:
                    tags.append(value)
        elif isinstance(op, _MEMBER_OPS) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            for elt in comparator.elts:
                value = _const_str(elt)
                if value is not None:
                    tags.append(value)
    return tags


def _sent_tag(call: ast.Call) -> Optional[str]:
    """Tag of a ``<conn>.send(("tag", payload))`` call, else None."""
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "send"
        and call.args
        and isinstance(call.args[0], ast.Tuple)
        and call.args[0].elts
    ):
        return _const_str(call.args[0].elts[0])
    return None


@register
class CommandProtocolRule(ProjectRule):
    """Tag-set equality between parent senders and worker dispatch."""

    rule_id = "RPL202"
    name = "subproc-protocol-exhaustiveness"
    description = (
        "the parent/worker command and reply tag sets of the subprocess "
        "protocol must match exactly in both directions (AST-derived)"
    )

    def project_inputs(self) -> List[str]:
        parent_rel = self.options.get("module", "src/repro/core/subproc.py")
        worker_rel = self.options.get("worker_module", parent_rel)
        return sorted({parent_rel, worker_rel})

    def check_project(
        self, modules: Dict[str, SourceModule], root
    ) -> List[Finding]:
        parent_rel = self.options.get("module", "src/repro/core/subproc.py")
        worker_rel = self.options.get("worker_module", parent_rel)
        worker_fn_name = self.options.get("worker_function", "_worker_main")
        command_var = self.options.get("command_var", "command")
        reply_var = self.options.get("reply_var", "tag")
        wrappers: Dict[str, int] = dict(
            self.options.get(
                "send_wrappers", {"_command_all": 0, "_command_one": 1}
            )
        )

        parent = self.load_module(modules, root, parent_rel)
        worker = (
            parent
            if worker_rel == parent_rel
            else self.load_module(modules, root, worker_rel)
        )
        findings: List[Finding] = []
        for rel, mod in {parent_rel: parent, worker_rel: worker}.items():
            if mod is None or mod.tree is None:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=rel,
                        line=1,
                        col=1,
                        message=(
                            f"protocol module {rel!r} not found or unparsable; "
                            "RPL202 cannot verify the command protocol"
                        ),
                    )
                )
        if findings:
            return findings

        worker_fn = self._find_function(worker.tree, worker_fn_name)
        if worker_fn is None:
            return [
                Finding(
                    rule_id=self.rule_id,
                    path=worker_rel,
                    line=1,
                    col=1,
                    message=(
                        f"worker function {worker_fn_name!r} not found in "
                        f"{worker_rel!r}; RPL202 cannot verify the protocol"
                    ),
                )
            ]

        # Worker side: dispatched commands + sent reply tags.
        dispatched: Dict[str, ast.AST] = {}
        replies_sent: Dict[str, ast.AST] = {}
        for node in ast.walk(worker_fn):
            if isinstance(node, ast.Compare):
                for tag in _compared_tags(node, command_var):
                    dispatched.setdefault(tag, node)
            elif isinstance(node, ast.Call):
                tag = _sent_tag(node)
                if tag is not None:
                    replies_sent.setdefault(tag, node)

        # Parent side: everything in the parent module OUTSIDE the worker fn.
        inside_worker = (
            {id(node) for node in ast.walk(worker_fn)}
            if worker is parent
            else set()
        )
        commands_sent: Dict[str, ast.AST] = {}
        replies_examined: Dict[str, ast.AST] = {}
        for node in ast.walk(parent.tree):
            if id(node) in inside_worker:
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in wrappers
                    and len(node.args) > wrappers[func.attr]
                ):
                    tag = _const_str(node.args[wrappers[func.attr]])
                    if tag is not None:
                        commands_sent.setdefault(tag, node)
                else:
                    tag = _sent_tag(node)
                    if tag is not None:
                        commands_sent.setdefault(tag, node)
            elif isinstance(node, ast.Compare):
                for tag in _compared_tags(node, reply_var):
                    replies_examined.setdefault(tag, node)

        def report(rel: str, node: ast.AST, message: str, tag: str) -> None:
            findings.append(
                Finding(
                    rule_id=self.rule_id,
                    path=rel,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=message,
                    symbol=tag,
                )
            )

        for tag in sorted(set(commands_sent) - set(dispatched)):
            report(
                parent_rel,
                commands_sent[tag],
                f"parent sends command {tag!r} but {worker_fn_name}() has no "
                "dispatch branch for it; the worker would die with 'unknown "
                "worker command' at runtime",
                tag,
            )
        for tag in sorted(set(dispatched) - set(commands_sent)):
            report(
                worker_rel,
                dispatched[tag],
                f"{worker_fn_name}() dispatches command {tag!r} but no "
                "parent call site ever sends it; dead protocol branch or a "
                "missing parent API",
                tag,
            )
        for tag in sorted(set(replies_sent) - set(replies_examined)):
            report(
                worker_rel,
                replies_sent[tag],
                f"{worker_fn_name}() sends reply tag {tag!r} but the parent "
                "never examines it; an unexpected tag would silently stand "
                "in for an acknowledgement",
                tag,
            )
        for tag in sorted(set(replies_examined) - set(replies_sent)):
            report(
                parent_rel,
                replies_examined[tag],
                f"parent examines reply tag {tag!r} but the worker never "
                "sends it; dead handling or a missing worker reply",
                tag,
            )
        return findings

    @staticmethod
    def _find_function(tree: ast.AST, name: str):
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None
