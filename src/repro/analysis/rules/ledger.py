"""RPL105: numpy-ledger mutations must pair with their Python shadow.

``core/soa.py`` mirrors its ``(K, N, 3)`` node and ``(K, E)`` link usage
arrays with Python-float shadow lists: the scalar commit/teardown paths read
and write the shadows (pure-Python float arithmetic is what keeps the SoA
core bitwise-equal to the reference env), while the array kernels write the
numpy side and must resync the shadow rows before the next scalar read.
A mutation site that touches only one side silently diverges the pair, and
the divergence surfaces far away — as a bitwise mismatch in a differential
campaign.  This rule enforces the pairing *lexically*: every function that
mutates a registered numpy ledger must, in the same function, touch the
paired shadow attribute or call a registered resync method.

Configured via options::

    pairs:          {"_node_used": "_node_used_py", ...}
    resync_methods: ["_release_record", ...]
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.findings import Finding
from repro.analysis.module import (
    SourceModule,
    is_self_attr,
    subscript_base,
)
from repro.analysis.mutation import base_name_or_attr_refers, mutation_kind
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule


@register
class ShadowLedgerRule(FileRule):
    """Pairing check between numpy ledgers and their Python shadows."""

    rule_id = "RPL105"
    name = "shadow-ledger-pairing"
    description = (
        "a function mutates a registered numpy ledger without touching its "
        "Python shadow (or calling a resync method) in the same function"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        pairs: Dict[str, str] = dict(self.options.get("pairs", {}))
        if not pairs:
            return findings
        resync = set(self.options.get("resync_methods", ()))
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for ledger, shadow in pairs.items():
                mutation = self._first_mutation(fn, ledger, module)
                if mutation is None:
                    continue
                if self._touches_shadow(fn, shadow, resync):
                    continue
                findings.append(
                    self.finding(
                        module.rel, mutation,
                        f"{fn.name}() mutates numpy ledger '{ledger}' but "
                        f"never touches its shadow '{shadow}' (or a resync "
                        "method) in the same function; the pair silently "
                        "diverges and breaks the bitwise contract",
                        symbol=ledger,
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    # Mutation detection
    # ------------------------------------------------------------------ #
    def _aliases(self, fn: ast.AST, ledger: str) -> Set[str]:
        """Local names bound to the ledger or a subscripted view of it."""
        aliases: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if is_self_attr(subscript_base(node.value), ledger):
                aliases.add(target.id)
        return aliases

    def _refers_to_ledger(self, node: ast.AST, ledger: str, aliases: Set[str]) -> bool:
        return base_name_or_attr_refers(
            node, aliases, lambda base: is_self_attr(base, ledger)
        )

    def _first_mutation(self, fn, ledger: str, module: SourceModule):
        aliases = self._aliases(fn, ledger)

        def refers(expr: ast.AST) -> bool:
            return self._refers_to_ledger(expr, ledger, aliases)

        for node in ast.walk(fn):
            # Shared idiom catalog: subscript stores, augassign, .fill(),
            # out= outputs, np.<ufunc>.at — see analysis/mutation.py.
            if mutation_kind(node, refers, module.imports) is not None:
                return node
            if isinstance(node, ast.Assign) and any(
                is_self_attr(target, ledger) for target in node.targets
            ):
                return node  # rebinding the ledger itself
        return None

    # ------------------------------------------------------------------ #
    # Shadow detection
    # ------------------------------------------------------------------ #
    def _touches_shadow(self, fn, shadow: str, resync: Set[str]) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and node.attr == shadow:
                return True
            # self._release_record(...) style resync call
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in resync
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                return True
        return False
