"""RPL107: every declared event type must have a registered handler.

The discrete-event engine dispatches by :class:`EventType`; an enum member
nobody registers a handler for is dropped on the floor at dispatch time
(the engine has no "unhandled event" failure mode — END_OF_SIMULATION is
special-cased by identity comparison inside the run loop).  Adding an event
type in ``sim/events.py`` without teaching ``sim/simulation.py``,
``sim/failures.py`` or ``serving/service.py`` to handle it is exactly the
kind of cross-module drift a per-file linter cannot see, so this rule runs
at project scope over the configured modules.

Configured via options::

    events_module:    "src/repro/sim/events.py"
    enum_name:        "EventType"
    handler_modules:  ["src/repro/sim/engine.py", ...]
    register_methods: ["on"]
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Set

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.registry import register
from repro.analysis.rules.base import ProjectRule


def _enum_members(module: SourceModule, enum_name: str) -> Dict[str, int]:
    """Member name → declaration line of the named enum class."""
    members: Dict[str, int] = {}
    if module.tree is None:
        return members
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == enum_name):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        members[target.id] = stmt.lineno
    return members


def _enum_refs(node: ast.AST, enum_name: str) -> Set[str]:
    """EventType.X member names referenced anywhere under ``node``."""
    refs: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == enum_name
        ):
            refs.add(sub.attr)
    return refs


def _handled_members(
    module: SourceModule, enum_name: str, register_methods: Set[str]
) -> Set[str]:
    """Members this module handles: registration args + dispatch comparisons.

    Creating an event (``Event.create(t, EventType.X)``) is *not* handling
    it, so only two contexts count: an ``EventType.X`` argument to a
    registration call (``engine.on(EventType.X, fn)``) and an identity or
    equality comparison against ``EventType.X`` (the engine's run-loop
    special case).
    """
    handled: Set[str] = set()
    if module.tree is None:
        return handled
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in register_methods
        ):
            for arg in node.args:
                handled.update(_enum_refs(arg, enum_name))
        elif isinstance(node, ast.Compare) and all(
            isinstance(op, (ast.Is, ast.Eq)) for op in node.ops
        ):
            handled.update(_enum_refs(node, enum_name))
    return handled


@register
class EventHandlerExhaustivenessRule(ProjectRule):
    """Cross-module exhaustiveness of event-type handling."""

    rule_id = "RPL107"
    name = "event-handler-exhaustiveness"
    description = (
        "an EventType member declared in the events module has no handler "
        "registration (or dispatch comparison) in any handler module"
    )

    def project_inputs(self) -> List[str]:
        events_rel = self.options.get("events_module")
        handler_rels = list(self.options.get("handler_modules", ()))
        return ([events_rel] if events_rel else []) + handler_rels

    def check_project(
        self, modules: Dict[str, SourceModule], root: Path
    ) -> List[Finding]:
        events_rel = self.options.get("events_module")
        enum_name = self.options.get("enum_name", "EventType")
        handler_rels = list(self.options.get("handler_modules", ()))
        register_methods = set(self.options.get("register_methods", ("on",)))
        if not events_rel or not handler_rels:
            return []
        events_module = self.load_module(modules, root, events_rel)
        if events_module is None:
            return [
                Finding(
                    rule_id=self.rule_id,
                    path=events_rel,
                    line=1,
                    col=1,
                    message=f"configured events module {events_rel!r} not found",
                    symbol=enum_name,
                )
            ]
        members = _enum_members(events_module, enum_name)
        handled: Set[str] = set()
        searched: List[str] = []
        for rel in handler_rels:
            handler_module = self.load_module(modules, root, rel)
            if handler_module is None:
                continue
            searched.append(rel)
            handled.update(
                _handled_members(handler_module, enum_name, register_methods)
            )
        findings: List[Finding] = []
        for name in sorted(members):
            if name in handled:
                continue
            findings.append(
                Finding(
                    rule_id=self.rule_id,
                    path=events_rel,
                    line=members[name],
                    col=1,
                    message=(
                        f"{enum_name}.{name} has no registered handler in "
                        f"any of {searched}; events of this type are "
                        "silently dropped at dispatch"
                    ),
                    symbol=f"{enum_name}.{name}",
                )
            )
        return findings
