"""RPL201: shared-memory views must not escape without a copy.

``core/subproc.py`` maps every exchange array (states, rewards, masks,
contexts, ...) straight onto one shared-memory block: ``self._views`` holds
numpy arrays whose buffer *is* the block, and every ``step``/``reset``
overwrites them in place.  Returning such a view — or stashing it on
``self`` — hands the caller an array that silently changes under it on the
next command, the classic aliasing bug behind "my rollout buffer is full of
the final state".  The public API therefore ``.copy()``s everything it hands
out; the deliberate exceptions (the lean-step accessors, which exist
precisely to skip the copy) carry reasoned suppressions.

This rule flags a function that lets a raw view escape:

* ``return self._views[...]`` (any subscript depth) or a local transitively
  aliased to one, including the whole ``self._views`` mapping itself;
* ``self.<attr> = <raw view>`` for any attribute other than the registered
  view mappings themselves;
* containers (tuples/lists/dicts) returned with a raw view inside.

``.copy()`` (or any other call) on the view breaks the chain — the escaping
expression is then a call result, not a view.  Configured via options::

    view_attrs: ["_views"]     # self attributes holding shm-backed mappings
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule, is_self_attr, subscript_base
from repro.analysis.mutation import chained_alias_names
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule


@register
class ViewEscapeRule(FileRule):
    """Raw shm-backed views must not outlive the command that filled them."""

    rule_id = "RPL201"
    name = "shared-view-escape"
    description = (
        "a raw view of a shared-memory-backed array escapes the function "
        "(returned or stored on self) without .copy(); the next worker "
        "command overwrites it in place under the caller"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        view_attrs: Sequence[str] = tuple(
            self.options.get("view_attrs", ("_views",))
        )
        if not view_attrs:
            return findings
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(self._check_function(fn, view_attrs, module))
        return findings

    def _check_function(
        self, fn, view_attrs: Sequence[str], module: SourceModule
    ) -> List[Finding]:
        def seed(base: ast.AST) -> bool:
            return any(is_self_attr(base, attr) for attr in view_attrs)

        aliases = chained_alias_names(fn, seed)

        def is_raw_view(expr: ast.AST) -> bool:
            if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
                return any(is_raw_view(elt) for elt in expr.elts)
            if isinstance(expr, ast.Dict):
                return any(
                    value is not None and is_raw_view(value)
                    for value in expr.values
                )
            if isinstance(expr, ast.Starred):
                return is_raw_view(expr.value)
            if isinstance(expr, ast.IfExp):
                return is_raw_view(expr.body) or is_raw_view(expr.orelse)
            base = subscript_base(expr)
            if seed(base):
                return True
            return isinstance(base, ast.Name) and base.id in aliases

        findings: List[Finding] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Return):
                if node.value is not None and is_raw_view(node.value):
                    findings.append(
                        self.finding(
                            module.rel,
                            node,
                            f"{fn.name}() returns a raw shared-memory view "
                            "(no .copy()); the next worker command rewrites "
                            "it in place under the caller — copy it, or "
                            "suppress with a reason documenting the no-copy "
                            "contract",
                            symbol=fn.name,
                        )
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in view_attrs
                        and is_raw_view(node.value)
                    ):
                        findings.append(
                            self.finding(
                                module.rel,
                                node,
                                f"{fn.name}() stores a raw shared-memory "
                                f"view on self.{target.attr}; the stored "
                                "array mutates on every later command — "
                                ".copy() it at the boundary",
                                symbol=fn.name,
                            )
                        )
                        break
        return findings
