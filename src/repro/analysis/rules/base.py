"""Rule base classes.

A :class:`FileRule` inspects one parsed module at a time; a
:class:`ProjectRule` runs once per analysis with access to every scanned
module (and may load configured modules that were outside the scan set).
Both receive their free-form option dict from the active configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule


class Rule:
    """Common surface: ``rule_id``, ``name``, ``description``, options."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def __init__(self, options: Optional[dict] = None):
        self.options = dict(options or {})

    def finding(
        self, module_rel: str, node, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module_rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


class FileRule(Rule):
    """A rule that inspects one module."""

    def check_module(self, module: SourceModule) -> List[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the whole scanned file set at once.

    ``modules`` maps root-relative POSIX paths to parsed modules; ``root``
    lets the rule load configured modules that the scan did not cover.
    """

    def check_project(
        self, modules: Dict[str, SourceModule], root: Path
    ) -> List[Finding]:
        raise NotImplementedError

    def project_inputs(self) -> Optional[List[str]]:
        """Root-relative files this rule reads, for cache invalidation.

        The incremental cache re-runs a project rule only when one of the
        declared inputs changed.  Returning None (the default) declares the
        whole scan set as input — always sound, never incremental.  A rule
        overriding this must access sources exclusively through
        :meth:`load_module` on the declared rels.
        """
        return None

    def load_module(
        self, modules: Dict[str, SourceModule], root: Path, rel: str
    ) -> Optional[SourceModule]:
        if rel in modules:
            return modules[rel]
        path = root / rel
        if not path.is_file():
            return None
        return SourceModule.load(path, rel)
