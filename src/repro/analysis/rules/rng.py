"""Seed-discipline rules: RPL101 (unseeded/global RNG), RPL104 (seed math).

The reproducibility contract (docs/ARCHITECTURE.md, "Seeding discipline")
routes every stochastic component through ``repro.utils.rng``: explicit
``numpy.random.Generator`` instances built from explicit seeds, with derived
per-lane/per-task seeds coming from ``derive_seed``/``lane_workload_seed``.
Module-state RNG (``np.random.rand``, bare ``random.random``) and ad-hoc
seed arithmetic (``seed + lane``) both silently break bitwise replays: the
former leaks hidden global state across components, the latter produces
correlated or colliding streams that ``derive_seed``'s label mixing avoids.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule, resolve_dotted
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

#: numpy.random attributes that are seeded constructors, not module state.
_NP_SAFE = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}
#: Constructors that are only deterministic when given an explicit seed.
_NEEDS_SEED_ARG = {"default_rng", "RandomState", "Random"}


@register
class UnseededRandomRule(FileRule):
    """RPL101: no module-state or unseeded RNG."""

    rule_id = "RPL101"
    name = "unseeded-rng"
    description = (
        "module-state RNG (np.random.*, bare random.*) or argless "
        "default_rng()/Random(); route randomness through an explicit "
        "seeded Generator (repro.utils.rng.new_rng)"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_dotted(node.func, module.imports)
            if path is None:
                continue
            finding = self._classify(module, node, path)
            if finding is not None:
                findings.append(finding)
        return findings

    def _classify(self, module, node: ast.Call, path: str):
        argless = not node.args and not node.keywords
        if path.startswith("numpy.random."):
            tail = path[len("numpy.random."):]
            if tail in _NP_SAFE:
                if tail in _NEEDS_SEED_ARG and argless:
                    return self.finding(
                        module.rel, node,
                        f"argless {path}() draws OS entropy; pass an explicit "
                        "seed (or accept a Generator from the caller)",
                        symbol=path,
                    )
                return None
            if "." in tail:
                return None
            return self.finding(
                module.rel, node,
                f"{path}() uses numpy's hidden module-state RNG; build an "
                "explicit Generator via repro.utils.rng.new_rng(seed)",
                symbol=path,
            )
        if path == "random" or path.startswith("random."):
            tail = path[len("random."):] if "." in path else path
            if tail == "Random" and not argless:
                return None
            what = (
                "argless random.Random() draws OS entropy"
                if tail == "Random"
                else f"stdlib {path}() uses interpreter-global RNG state"
            )
            return self.finding(
                module.rel, node,
                f"{what}; use a seeded numpy Generator instead",
                symbol=path,
            )
        return None


#: A name participates in RPL104 when it looks like a seed binding.
_SEEDISH = re.compile(r"(^|_)seeds?($|_)", re.IGNORECASE)

_ARITH_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitXor, ast.BitOr, ast.BitAnd,
)


def _seedish_operand(node: ast.AST) -> str:
    if isinstance(node, ast.Name) and _SEEDISH.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _SEEDISH.search(node.attr):
        return node.attr
    return ""


@register
class SeedArithmeticRule(FileRule):
    """RPL104: lane/worker seeds must come from derive_seed, not arithmetic."""

    rule_id = "RPL104"
    name = "seed-arithmetic"
    description = (
        "arithmetic on a seed-named value (seed + i, seed * k); derive "
        "per-lane/per-task seeds via derive_seed/lane_workload_seed instead"
    )

    #: Functions whose bodies implement the sanctioned derivation and are
    #: therefore exempt (configurable via the ``exempt_functions`` option).
    DEFAULT_EXEMPT = (
        "derive_seed",
        "lane_workload_seed",
        "lane_failure_seed",
        "spawn_rngs",
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        exempt = set(self.options.get("exempt_functions", self.DEFAULT_EXEMPT))
        skip_nodes = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in exempt
            ):
                skip_nodes.update(id(n) for n in ast.walk(node))
        for node in ast.walk(module.tree):
            if id(node) in skip_nodes:
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                name = _seedish_operand(node.left) or _seedish_operand(node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ARITH_OPS):
                name = _seedish_operand(node.target)
            else:
                continue
            if name:
                findings.append(
                    self.finding(
                        module.rel, node,
                        f"arithmetic on seed-like value {name!r}; route "
                        "derived seeds through repro.utils.rng.derive_seed "
                        "(or lane_workload_seed/lane_failure_seed)",
                        symbol=name,
                    )
                )
        return findings
