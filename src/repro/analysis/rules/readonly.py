"""RPL203: parameters documented read-only must not be mutated in place.

Batched numpy APIs pass big arrays (action masks, Q-value batches, demand
stacks) through many hands; the contract that a callee treats them as
read-only lives only in docstrings — until a ``masks[row] = False`` or an
``out=masks`` sneaks in and corrupts the caller's array for every lane at
once.  This rule makes the contract checkable with a one-line anchor inside
the function::

    def select_batch(self, q_values, step, masks=None, greedy=False):
        # repro-lint: readonly=q_values,masks
        ...

Any in-place mutation idiom (subscript store, augmented assignment,
``.fill()``, ``out=``, ``np.<ufunc>.at``) applied to an anchored parameter
— or to a local transitively aliased to a view of one — is a finding.
Rebinding the bare name (``masks = masks.copy()``) releases it: the
function now owns a private array, and mutating that is fine.  An anchor
naming something that is not a parameter is itself a finding, so anchors
cannot drift from signatures.

Parameters annotated with a frozen dataclass defined in the same module are
implicitly read-only for attribute stores: ``param.field = ...`` would raise
``FrozenInstanceError`` at runtime anyway; the rule reports it before a rare
path has to hit it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule, resolve_dotted
from repro.analysis.mutation import (
    base_name_or_attr_refers,
    chained_alias_names,
    mutation_kind,
)
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

_ANCHOR = re.compile(r"#\s*repro-lint:\s*readonly=([A-Za-z0-9_,\s]+?)\s*$")


def _anchor_comments(text: str) -> List[Tuple[int, "re.Match"]]:
    """(line, match) per anchor, from real COMMENT tokens only.

    Tokenizing (rather than regexing raw lines) keeps anchors quoted inside
    docstrings — like the example in this module's own docstring — from
    registering as live anchors.
    """
    anchors: List[Tuple[int, "re.Match"]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ANCHOR.search(tok.string)
            if match is not None:
                anchors.append((tok.start[0], match))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return anchors


def _param_names(fn) -> Set[str]:
    args = fn.args
    names = {arg.arg for arg in args.posonlyargs}
    names.update(arg.arg for arg in args.args)
    names.update(arg.arg for arg in args.kwonlyargs)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _frozen_dataclasses(tree: ast.AST, imports: Dict[str, str]) -> Set[str]:
    """Names of same-module classes decorated ``@dataclass(frozen=True)``."""
    frozen: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            call = deco if isinstance(deco, ast.Call) else None
            func = call.func if call else deco
            if resolve_dotted(func, imports) != "dataclasses.dataclass":
                continue
            if call and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            ):
                frozen.add(node.name)
    return frozen


@register
class ReadonlyParamRule(FileRule):
    """Enforce ``# repro-lint: readonly=...`` parameter anchors."""

    rule_id = "RPL203"
    name = "readonly-param-mutation"
    description = (
        "a parameter anchored '# repro-lint: readonly=...' (or typed as a "
        "frozen dataclass) is mutated in place; the caller's array/object "
        "changes under it"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        anchors = _anchor_comments(module.text)
        frozen = _frozen_dataclasses(module.tree, module.imports)
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        anchored: Dict[ast.AST, Set[str]] = {}
        for lineno, match in anchors:
            names = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            fn = self._innermost(functions, lineno)
            if fn is None:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=module.rel,
                        line=lineno,
                        col=1,
                        message=(
                            "readonly anchor is outside any function; it "
                            "protects nothing"
                        ),
                    )
                )
                continue
            params = _param_names(fn)
            for name in sorted(names - params):
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        path=module.rel,
                        line=lineno,
                        col=1,
                        message=(
                            f"readonly anchor names {name!r} which is not a "
                            f"parameter of {fn.name}(); fix the anchor so it "
                            "cannot drift from the signature"
                        ),
                        symbol=fn.name,
                    )
                )
            anchored.setdefault(fn, set()).update(names & params)
        for fn in functions:
            ro = anchored.get(fn, set())
            if ro:
                findings.extend(self._check_mutations(fn, ro, module))
            if frozen:
                findings.extend(self._check_frozen(fn, frozen, module))
        return findings

    @staticmethod
    def _innermost(functions, lineno: int):
        best = None
        for fn in functions:
            end = getattr(fn, "end_lineno", fn.lineno)
            if fn.lineno <= lineno <= end:
                if best is None or fn.lineno > best.lineno:
                    best = fn
        return best

    def _check_mutations(
        self, fn, readonly: Set[str], module: SourceModule
    ) -> List[Finding]:
        # A bare rebind (``masks = masks.copy()``) transfers ownership to the
        # function for the whole body — flow-insensitively, which errs toward
        # silence; the flow rules get ordering right where it matters.
        rebound: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    rebound.add(node.target.id)
        tracked = readonly - rebound
        if not tracked:
            return []
        aliases = chained_alias_names(
            fn,
            lambda base: isinstance(base, ast.Name) and base.id in tracked,
        )
        names = tracked | aliases

        def refers(expr: ast.AST) -> bool:
            return base_name_or_attr_refers(expr, names, lambda base: False)

        findings = []
        for node in ast.walk(fn):
            kind = mutation_kind(node, refers, module.imports)
            if kind is not None:
                findings.append(
                    self.finding(
                        module.rel,
                        node,
                        f"{fn.name}() mutates read-only parameter data via "
                        f"{kind}; the caller's array changes under it — "
                        ".copy() first or drop the readonly anchor",
                        symbol=fn.name,
                    )
                )
        return findings

    def _check_frozen(
        self, fn, frozen: Set[str], module: SourceModule
    ) -> List[Finding]:
        frozen_params = {
            arg.arg
            for arg in (
                list(fn.args.posonlyargs)
                + list(fn.args.args)
                + list(fn.args.kwonlyargs)
            )
            if arg.annotation is not None
            and isinstance(arg.annotation, ast.Name)
            and arg.annotation.id in frozen
        }
        if not frozen_params:
            return []
        findings = []
        for node in ast.walk(fn):
            target = None
            if isinstance(node, ast.Assign):
                for candidate in node.targets:
                    if isinstance(candidate, ast.Attribute):
                        target = candidate
                        break
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                target = node.target
            if (
                target is not None
                and isinstance(target.value, ast.Name)
                and target.value.id in frozen_params
            ):
                findings.append(
                    self.finding(
                        module.rel,
                        node,
                        f"{fn.name}() assigns to field "
                        f"'{target.value.id}.{target.attr}' of a frozen "
                        "dataclass parameter; this raises "
                        "FrozenInstanceError at runtime",
                        symbol=fn.name,
                    )
                )
        return findings
