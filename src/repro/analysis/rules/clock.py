"""RPL102: no wall-clock reads outside the explicit clock allowlist.

The bitwise differential contract replays identical trajectories across
backends and processes; any wall-clock read inside simulation, environment
or policy code is hidden nondeterministic input.  Real elapsed-time
measurement belongs to benchmark drivers and the CLI, and latency-sensitive
serving code must take an injectable clock (see ``core/timeout.py``) so
tests can drive it deterministically.  Those locations are waived by the
per-path scope in the committed configuration, not by the rule itself.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule, resolve_dotted
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

#: Canonical dotted paths that read a clock.
WALL_CLOCK_READS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.thread_time",
    "time.thread_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(FileRule):
    """Flag references to wall-clock functions (called or passed around)."""

    rule_id = "RPL102"
    name = "wall-clock-read"
    description = (
        "wall-clock read (time.time, perf_counter, datetime.now, ...) "
        "outside the benchmark/CLI/injectable-clock allowlist"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            path = resolve_dotted(node, module.imports)
            if path in WALL_CLOCK_READS:
                findings.append(
                    self.finding(
                        module.rel, node,
                        f"wall-clock read {path}; inject a clock (cf. "
                        "core/timeout.py) or move the measurement into a "
                        "benchmark driver",
                        symbol=path,
                    )
                )
        return findings
