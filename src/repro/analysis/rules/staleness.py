"""RPL204: path-sensitive shadow-ledger staleness (ordering, not pairing).

RPL105 checks that a function mutating a numpy ledger also touches the
paired Python shadow *somewhere* in the same function.  That lexical check
cannot see ordering: a batched kernel that writes ``self._node_used`` and
only later resyncs ``self._node_used_py`` has a window in which any shadow
read — directly, or through a scalar-replay entry point like
``_check_feasible``/``_commit`` — observes stale values, and the divergence
surfaces far away as a bitwise differential mismatch.  This rule runs the
ledger state machine over the function's CFG (``analysis/cfg.py`` +
``analysis/dataflow.py``): a numpy-side mutation marks the pair *dirty*, a
shadow store or registered resync-method call marks it *synced*, and a
shadow read (or scalar-replay call) reachable while dirty on **some** path
is a finding.

Two refinements keep the real scalar paths clean:

* **Lockstep writes.**  ``led_py[i] = v; led[i] = v`` keeps the pair equal;
  the analysis tracks names stored to the shadow since their last rebind
  and does not dirty the pair when the numpy store writes the same name.
* **View aliasing.**  ``used = self._node_used[lane]`` binds a numpy view;
  mutations through the alias dirty the pair.  Alias sets are part of the
  dataflow state, so rebinding a name drops its alias role on that path.

Configured via options::

    pairs:          {"_node_used": "_node_used_py", ...}
    shadow_readers: ["_check_feasible", "_commit", ...]   # replay entry points
    resync_methods: ["_resync_shadow_lanes", ...]         # full-sync calls
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule, is_self_attr, subscript_base
from repro.analysis.mutation import mutation_kind
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

#: Per-pair fact: (numpy aliases, shadow aliases, lockstep-synced names,
#: dirty numpy-mutation lines — empty means the pair is in sync).
PairState = Tuple[
    FrozenSet[str], FrozenSet[str], FrozenSet[str], FrozenSet[int]
]
#: Whole state: ledger attr → PairState, canonicalized for equality.
State = Tuple[Tuple[str, PairState], ...]

_EMPTY: PairState = (frozenset(), frozenset(), frozenset(), frozenset())


def _self_method_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


class _StaleAnalysis(ForwardAnalysis):
    def __init__(
        self,
        pairs: Dict[str, str],
        readers: Set[str],
        resyncs: Set[str],
        imports: Dict[str, str],
    ):
        self.pairs = pairs
        self.readers = readers
        self.resyncs = resyncs
        self.imports = imports

    # -------------------------------------------------------------- #
    # Lattice plumbing
    # -------------------------------------------------------------- #
    def initial_state(self) -> State:
        return tuple(sorted((ledger, _EMPTY) for ledger in self.pairs))

    def join(self, left: State, right: State) -> State:
        merged = []
        rmap = dict(right)
        for ledger, (np_a, sh_a, synced, dirty) in left:
            rnp, rsh, rsynced, rdirty = rmap.get(ledger, _EMPTY)
            merged.append(
                (
                    ledger,
                    (
                        np_a | rnp,
                        sh_a | rsh,
                        synced & rsynced,  # must-synced
                        dirty | rdirty,  # may-dirty
                    ),
                )
            )
        return tuple(sorted(merged))

    # -------------------------------------------------------------- #
    # Expression classification
    # -------------------------------------------------------------- #
    def _base_role(
        self, expr: ast.AST, ledger: str, pair: PairState
    ) -> Optional[str]:
        """'np'/'shadow' when ``expr`` (subscript chain) denotes one side."""
        shadow = self.pairs[ledger]
        np_aliases, sh_aliases = pair[0], pair[1]
        base = subscript_base(expr)
        if is_self_attr(base, ledger):
            return "np"
        if is_self_attr(base, shadow):
            return "shadow"
        if isinstance(base, ast.Name):
            if base.id in np_aliases:
                return "np"
            if base.id in sh_aliases:
                return "shadow"
        return None

    def _alias_bind(self, elem: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """``name = <chain>`` single-target binds: (name, value-base)."""
        if (
            isinstance(elem, ast.Assign)
            and len(elem.targets) == 1
            and isinstance(elem.targets[0], ast.Name)
            and isinstance(elem.value, (ast.Name, ast.Attribute, ast.Subscript))
        ):
            return elem.targets[0].id, elem.value
        return None

    def _read_exprs(self, elem: ast.AST) -> Iterator[ast.AST]:
        """Sub-expressions evaluated in load context by this element.

        Store-target base chains are excluded (storing through
        ``shadow[lane][row]`` is a write, not a read) but their subscript
        indices are included.
        """

        def target_indices(target: ast.AST) -> Iterator[ast.AST]:
            while isinstance(target, ast.Subscript):
                yield target.slice
                target = target.value

        if isinstance(elem, ast.Assign):
            if self._alias_bind(elem) is None:
                yield elem.value
            for target in elem.targets:
                yield from target_indices(target)
        elif isinstance(elem, ast.AugAssign):
            yield elem.value
            yield from target_indices(elem.target)
        elif isinstance(elem, ast.AnnAssign):
            if elem.value is not None:
                yield elem.value
        elif isinstance(elem, (ast.Expr, ast.Return)):
            if elem.value is not None:
                yield elem.value
        elif isinstance(elem, ast.Assert):
            yield elem.test
        elif isinstance(elem, ast.Raise):
            if elem.exc is not None:
                yield elem.exc
        elif isinstance(elem, (ast.With, ast.AsyncWith)):
            for item in elem.items:
                yield item.context_expr
        elif isinstance(elem, ast.expr):
            yield elem  # decomposed condition block

    # -------------------------------------------------------------- #
    # Transfer
    # -------------------------------------------------------------- #
    def transfer(self, elem: ast.AST, state: State, sink=None) -> State:
        pairs = {ledger: list(pair) for ledger, pair in state}

        def record(node: ast.AST, ledger: str, what: str) -> None:
            if sink is not None:
                sink.append((node, ledger, what))

        # 1. Reads (and embedded calls) happen before this element's stores.
        resync_all = False
        for expr in self._read_exprs(elem):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    method = _self_method_call(sub)
                    if method in self.resyncs:
                        resync_all = True
                    elif method in self.readers:
                        for ledger, pair in pairs.items():
                            if pair[3]:
                                record(sub, ledger, f"self.{method}() replay")
                elif isinstance(sub, (ast.Subscript, ast.Name, ast.Attribute)):
                    for ledger, pair in pairs.items():
                        if pair[3] and self._base_role(
                            sub, ledger, tuple(pair)
                        ) == "shadow":
                            record(sub, ledger, "shadow read")

        # 2. Mutation idioms anywhere in the element (.fill, out=, .at).
        for sub in ast.walk(elem):
            if not isinstance(sub, ast.Call):
                continue
            for ledger, pair in pairs.items():
                kind = mutation_kind(
                    sub,
                    lambda e, lg=ledger, p=pair: self._base_role(
                        e, lg, tuple(p)
                    ) == "np",
                    self.imports,
                )
                if kind is not None:
                    pair[3] = pair[3] | {getattr(sub, "lineno", 0)}
                shadow_kind = mutation_kind(
                    sub,
                    lambda e, lg=ledger, p=pair: self._base_role(
                        e, lg, tuple(p)
                    ) == "shadow",
                    self.imports,
                )
                if shadow_kind is not None:
                    pair[3] = frozenset()  # shadow brought up to date

        # 3. Stores and rebinds.
        if isinstance(elem, ast.Assign):
            bind = self._alias_bind(elem)
            for target in elem.targets:
                self._apply_store(target, elem.value, pairs)
            if bind is not None:
                name, value = bind
                self._rebind(name, pairs)
                for ledger, pair in pairs.items():
                    role = self._base_role(value, ledger, tuple(pair))
                    if role == "np":
                        pair[0] = pair[0] | {name}
                    elif role == "shadow":
                        pair[1] = pair[1] | {name}
            else:
                for target in elem.targets:
                    for name in _plain_names(target):
                        self._rebind(name, pairs)
        elif isinstance(elem, ast.AugAssign):
            handled = False
            for ledger, pair in pairs.items():
                role = self._base_role(elem.target, ledger, tuple(pair))
                if role == "np":
                    pair[3] = pair[3] | {elem.lineno}
                    handled = True
                elif role == "shadow":
                    # In-place shadow update: a read (flagged above via the
                    # target indices? no — flag here) followed by a store.
                    if pair[3]:
                        record(elem.target, ledger, "shadow read")
                    pair[3] = frozenset()
                    handled = True
            if not handled and isinstance(elem.target, ast.Name):
                for pair in pairs.values():
                    pair[2] = pair[2] - {elem.target.id}
        elif isinstance(elem, (ast.For, ast.AsyncFor)):
            for name in _plain_names(elem.target):
                self._rebind(name, pairs)
        elif isinstance(elem, (ast.With, ast.AsyncWith)):
            for item in elem.items:
                if item.optional_vars is not None:
                    for name in _plain_names(item.optional_vars):
                        self._rebind(name, pairs)

        if resync_all:
            for pair in pairs.values():
                pair[3] = frozenset()

        return tuple(sorted(
            (ledger, tuple(pair)) for ledger, pair in pairs.items()
        ))

    def _apply_store(
        self, target: ast.AST, value: ast.AST, pairs: Dict[str, list]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._apply_store(elt, value, pairs)
            return
        for ledger, pair in pairs.items():
            shadow = self.pairs[ledger]
            if isinstance(target, ast.Subscript):
                role = self._base_role(target, ledger, tuple(pair))
                if role == "shadow":
                    pair[3] = frozenset()
                    if isinstance(value, ast.Name):
                        pair[2] = pair[2] | {value.id}
                elif role == "np":
                    if not (
                        isinstance(value, ast.Name) and value.id in pair[2]
                    ):
                        pair[3] = pair[3] | {target.lineno}
            elif is_self_attr(target, shadow):
                pair[3] = frozenset()  # rebinding the shadow = full resync
            elif is_self_attr(target, ledger):
                if not (isinstance(value, ast.Name) and value.id in pair[2]):
                    pair[3] = pair[3] | {target.lineno}

    def _rebind(self, name: str, pairs: Dict[str, list]) -> None:
        for pair in pairs.values():
            pair[0] = pair[0] - {name}
            pair[1] = pair[1] - {name}
            pair[2] = pair[2] - {name}


def _plain_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _plain_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _plain_names(target.value)


@register
class ShadowStalenessRule(FileRule):
    """Flow-sensitive ordering check over the ledger/shadow pairs."""

    rule_id = "RPL204"
    name = "shadow-ledger-staleness"
    description = (
        "on some control-flow path a numpy ledger mutation reaches a read "
        "of its Python shadow (or a scalar-replay entry point) before any "
        "resync; the replay would consume stale values"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        pairs: Dict[str, str] = dict(self.options.get("pairs", {}))
        if not pairs:
            return findings
        readers = set(self.options.get("shadow_readers", ()))
        resyncs = set(self.options.get("resync_methods", ()))
        tracked_attrs = set(pairs) | set(pairs.values())
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            mentioned = {
                node.attr
                for node in ast.walk(fn)
                if isinstance(node, ast.Attribute)
            }
            if not (mentioned & tracked_attrs):
                continue
            findings.extend(self._check_function(fn, pairs, readers, resyncs, module))
        return findings

    def _check_function(
        self, fn, pairs, readers, resyncs, module: SourceModule
    ) -> List[Finding]:
        cfg = build_cfg(fn)
        analysis = _StaleAnalysis(pairs, readers, resyncs, module.imports)
        in_states = run_forward(cfg, analysis)
        hits: List[Tuple[ast.AST, str, str]] = []
        for block_id, state in in_states.items():
            running = state
            for elem in cfg.blocks[block_id].elems:
                running = analysis.transfer(elem, running, sink=hits)
        findings: List[Finding] = []
        seen = set()
        for node, ledger, what in hits:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), ledger)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                self.finding(
                    module.rel,
                    node,
                    f"{fn.name}(): {what} of '{pairs[ledger]}' is reachable "
                    f"while numpy ledger '{ledger}' is dirty (unresynced "
                    "mutation on some path); the scalar replay would see "
                    "stale shadow values — resync before the read",
                    symbol=ledger,
                )
            )
        return findings
