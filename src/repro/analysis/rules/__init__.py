"""The reprolint rule catalog.

Importing this package registers every rule; the import order below fixes
the registration (and therefore ``--list-rules``) order.
"""

from repro.analysis.rules.base import FileRule, ProjectRule, Rule
from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    caching,
    clock,
    events,
    exceptions,
    ledger,
    rng,
    views,
    protocol,
    readonly,
    staleness,
)

__all__ = ["FileRule", "ProjectRule", "Rule"]
