"""RPL106: no silent broad exception swallowing.

``except Exception: pass`` in a worker or cleanup path converts a real
failure (a crashed env worker, a half-torn-down shared-memory segment) into
silent state corruption that only surfaces campaigns later.  A broad catch
must re-raise, fence/report the failure (any call in the handler body counts
— e.g. ``conn.send(("error", ...))`` or a serial fallback), or carry an
inline suppression explaining why swallowing is correct there.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD
            for elt in handler.type.elts
        )
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body neither raises nor calls anything."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call)):
                return False
    return True


@register
class SilentBroadExceptRule(FileRule):
    """Flag broad exception handlers that swallow without any action."""

    rule_id = "RPL106"
    name = "silent-broad-except"
    description = (
        "broad 'except Exception'/bare except whose body neither raises "
        "nor calls anything (silent swallow); re-raise, fence, or suppress "
        "with a reason"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _is_silent(node):
                caught = (
                    "bare except" if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                findings.append(
                    self.finding(
                        module.rel, node,
                        f"{caught} silently swallows the error; re-raise, "
                        "report/fence the failure, or add a suppression "
                        "with the rationale",
                        symbol="except",
                    )
                )
        return findings
