"""RPL103: no ``id(x)`` used as a dict/cache key.

CPython recycles object ids the moment the referent is garbage collected,
so an id-keyed cache that does not also hold the object alive can serve a
stale hit for a brand-new object (the PR 8 ``_type_info`` bug: a rebuilt
``VNFType`` landed on the freed type's id and inherited its cached info).
Caches must key on stable identity (names, versions) or hold strong
references and compare with ``is``.

Flagged contexts for an ``id(...)`` call:

* a dict-literal key (directly or inside a tuple key),
* a subscript index (``cache[id(x)]``, ``cache[attr, id(x)]``),
* the first argument of ``.get`` / ``.setdefault`` / ``.pop``,
* any value assigned to a ``key``-named variable.

Transient identity *sets* over objects that stay referenced (dedup during a
single pass) are deliberately out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.registry import register
from repro.analysis.rules.base import FileRule

_KEYISH = re.compile(r"key", re.IGNORECASE)
_DICT_METHODS = {"get", "setdefault", "pop"}


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class IdAsKeyRule(FileRule):
    """Flag id() results flowing into dict/cache keys."""

    rule_id = "RPL103"
    name = "id-as-cache-key"
    description = (
        "id(x) used as a dict/cache key; ids are recycled after GC — key "
        "on stable identity or hold the object and compare with 'is'"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        if module.tree is None:
            return findings
        parents = module.parents()
        for node in ast.walk(module.tree):
            if not _is_id_call(node):
                continue
            context = self._key_context(node, parents)
            if context:
                findings.append(
                    self.finding(
                        module.rel, node,
                        f"id() result used as {context}; object ids are "
                        "recycled after GC, so this cache can serve stale "
                        "hits for new objects",
                        symbol="id",
                    )
                )
        return findings

    def _key_context(self, node: ast.AST, parents) -> str:
        """Classify the ancestor chain of one id() call, '' when benign."""
        child = node
        parent = parents.get(child)
        while parent is not None:
            if isinstance(parent, ast.Dict) and child in parent.keys:
                return "a dict-literal key"
            if isinstance(parent, ast.DictComp) and child is parent.key:
                return "a dict-comprehension key"
            if isinstance(parent, ast.Subscript) and child is parent.slice:
                return "a subscript index"
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _DICT_METHODS
                and parent.args
                and child is parent.args[0]
            ):
                return f"the key argument of .{parent.func.attr}()"
            if isinstance(parent, ast.Assign) and child is parent.value:
                for target in parent.targets:
                    name = target.id if isinstance(target, ast.Name) else (
                        target.attr if isinstance(target, ast.Attribute) else ""
                    )
                    if name and _KEYISH.search(name):
                        return f"a cache key (assigned to {name!r})"
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.stmt)) and not isinstance(
                parent, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return)
            ):
                # Crossed out of the value expression into control flow:
                # no key context found on the way up.
                return ""
            child, parent = parent, parents.get(parent)
        return ""
