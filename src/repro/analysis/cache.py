"""Content-hash incremental cache for reprolint runs.

A lint run over the whole tree re-parses ~160 files to rediscover what it
already knew: almost nothing changed since the last run.  The cache keyed
on content hashes removes that work while guaranteeing the one property an
incremental linter must never trade away: **a cached run's output is
byte-identical to a cold run's** (text and JSON).  That falls out of what
gets cached — per-file *raw* (pre-suppression) findings plus the file's
suppression map — so the engine replays exactly the inputs of the final
suppression/sort/summary passes instead of caching their outputs.

Invalidation is three-layered:

* **Config fingerprint.**  The whole cache is discarded when the enabled
  rule set, scopes, options, excludes or payload schema change — the
  fingerprint hashes the canonical JSON of all of them.
* **Per-file content hash.**  A file entry is valid only when its sha256
  and its set of applicable file rules both match.
* **Per-project-rule scope hash.**  A project rule declares its input files
  (:meth:`ProjectRule.project_inputs`); its cached findings are valid only
  while the hash over those inputs' contents is unchanged.  A rule that
  declares no inputs depends on the entire scan set.

The cache file is itself deterministic (sorted keys, no timestamps) and
lives under ``benchmarks/results/cache/`` with the other derived artifacts
(``make clean-cache`` removes it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding

#: Bumped whenever the cache file layout changes.
CACHE_FORMAT_VERSION = 1

#: Default location, alongside the other derived artifacts.
DEFAULT_CACHE_FILE = "benchmarks/results/cache/reprolint-cache.json"


def file_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config, registered_rules, schema_version: int) -> str:
    """Hash of everything that changes findings without changing sources."""
    payload = {
        "cache_format": CACHE_FORMAT_VERSION,
        "schema_version": schema_version,
        "exclude": list(config.exclude),
        "select": None if config.select is None else list(config.select),
        "disable": list(config.disable),
        "scopes": {
            rule_id: {"only": list(scope.only), "skip": list(scope.skip)}
            for rule_id, scope in sorted(config.scopes.items())
        },
        "options": config.options,
        "rules": sorted(registered_rules),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_findings(findings: List[Finding]) -> List[dict]:
    return [finding.to_dict() for finding in findings]


def _decode_findings(raw: List[dict]) -> List[Finding]:
    return [
        Finding(
            rule_id=entry["rule"],
            path=entry["path"],
            line=int(entry["line"]),
            col=int(entry["col"]),
            message=entry["message"],
            symbol=entry.get("symbol", ""),
        )
        for entry in raw
    ]


@dataclass
class CacheStats:
    """Hit/miss counters of one cached run (reported to stderr only —
    putting them in the payload would break cold/warm byte-identity)."""

    file_hits: int = 0
    file_misses: int = 0
    project_hits: int = 0
    project_misses: int = 0

    def describe(self) -> str:
        return (
            f"reprolint cache: {self.file_hits} file hit(s), "
            f"{self.file_misses} file miss(es), "
            f"{self.project_hits} project-rule hit(s), "
            f"{self.project_misses} project-rule miss(es)"
        )


@dataclass
class LintCache:
    """The on-disk cache: per-file and per-project-rule entries."""

    fingerprint: str
    files: Dict[str, dict] = field(default_factory=dict)
    project: Dict[str, dict] = field(default_factory=dict)

    # ---------------------------------------------------------------- #
    # Persistence
    # ---------------------------------------------------------------- #
    @classmethod
    def load(cls, path: Path, fingerprint: str) -> "LintCache":
        """Read the cache; any mismatch or damage yields an empty cache."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls(fingerprint=fingerprint)
        if (
            not isinstance(payload, dict)
            or payload.get("cache_version") != CACHE_FORMAT_VERSION
            or payload.get("fingerprint") != fingerprint
        ):
            return cls(fingerprint=fingerprint)
        files = payload.get("files", {})
        project = payload.get("project", {})
        if not isinstance(files, dict) or not isinstance(project, dict):
            return cls(fingerprint=fingerprint)
        return cls(fingerprint=fingerprint, files=files, project=project)

    def save(self, path: Path) -> None:
        payload = {
            "cache_version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "files": self.files,
            "project": self.project,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )

    # ---------------------------------------------------------------- #
    # Per-file entries
    # ---------------------------------------------------------------- #
    def lookup_file(
        self, rel: str, digest: str, applicable_rules: List[str]
    ) -> Optional[dict]:
        """The valid cache entry for ``rel``, or None on any mismatch."""
        entry = self.files.get(rel)
        if (
            not isinstance(entry, dict)
            or entry.get("hash") != digest
            or sorted(entry.get("rules", ())) != sorted(applicable_rules)
        ):
            return None
        return entry

    def store_file(
        self,
        rel: str,
        digest: str,
        applicable_rules: List[str],
        findings: List[Finding],
        suppressions: Dict[int, Set[str]],
    ) -> None:
        self.files[rel] = {
            "hash": digest,
            "rules": sorted(applicable_rules),
            "findings": _encode_findings(findings),
            "suppressions": {
                str(line): sorted(ids) for line, ids in suppressions.items()
            },
        }

    @staticmethod
    def entry_findings(entry: dict) -> List[Finding]:
        return _decode_findings(entry.get("findings", ()))

    @staticmethod
    def entry_suppressions(entry: dict) -> Dict[int, Set[str]]:
        return {
            int(line): set(ids)
            for line, ids in entry.get("suppressions", {}).items()
        }

    # ---------------------------------------------------------------- #
    # Per-project-rule entries
    # ---------------------------------------------------------------- #
    def lookup_project(self, rule_id: str, scope_digest: str) -> Optional[List[Finding]]:
        entry = self.project.get(rule_id)
        if not isinstance(entry, dict) or entry.get("scope") != scope_digest:
            return None
        return _decode_findings(entry.get("findings", ()))

    def store_project(
        self, rule_id: str, scope_digest: str, findings: List[Finding]
    ) -> None:
        self.project[rule_id] = {
            "scope": scope_digest,
            "findings": _encode_findings(findings),
        }


def project_scope_digest(
    input_rels: Optional[List[str]],
    scanned_digests: Dict[str, str],
    root: Path,
) -> str:
    """Hash of a project rule's input files (contents, not mtimes).

    ``input_rels`` of None means the rule depends on the whole scan set.
    Inputs outside the scan set are read from disk; a missing file hashes
    as the sentinel ``"absent"`` so creating it later invalidates.
    """
    if input_rels is None:
        pairs = sorted(scanned_digests.items())
    else:
        pairs = []
        for rel in sorted(set(input_rels)):
            digest = scanned_digests.get(rel)
            if digest is None:
                try:
                    digest = file_digest(
                        (root / rel).read_text(encoding="utf-8")
                    )
                except OSError:
                    digest = "absent"
            pairs.append((rel, digest))
    canonical = json.dumps(pairs, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
