"""Inline suppression comments.

The suppression syntax is::

    some_call()  # repro-lint: disable=RPL102 — profiling timer, off by default

    # repro-lint: disable=RPL103, RPL106 — reason covering the next line
    offending_line()

A trailing comment suppresses its own line; a standalone comment line
suppresses the next non-comment, non-blank line.  Every suppression **must**
carry a reason after an em dash (``—``), double hyphen (``--``) or spaced
single hyphen (`` - ``): a suppression without a rationale is itself reported
as RPL002 so "silenced, nobody remembers why" can never accumulate.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

#: Rule id reported for a file that does not parse.
PARSE_ERROR_RULE = "RPL001"
#: Rule id reported for a suppression comment with no reason.
BAD_SUPPRESSION_RULE = "RPL002"

_MARKER = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+?)(?:(—|--| - )\s*(\S.*))?$")
_RULE_ID = re.compile(r"^RPL\d{3}$")


def collect_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Parse one module's source for suppression comments.

    Returns ``(by_line, malformed)`` where ``by_line`` maps a 1-based line
    number to the set of rule ids suppressed on it, and ``malformed`` lists
    ``(line, detail)`` pairs for marker comments missing a reason or naming
    an invalid rule id.
    """
    by_line: Dict[int, Set[str]] = {}
    malformed: List[Tuple[int, str]] = []
    pending: List[Tuple[int, Set[str]]] = []
    lines = text.splitlines()
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        match = _MARKER.search(raw)
        ids: Set[str] = set()
        if match is not None:
            listed = [part.strip() for part in match.group(1).split(",")]
            listed = [part for part in listed if part]
            bad = [part for part in listed if not _RULE_ID.match(part)]
            if match.group(3) is None or not match.group(3).strip():
                # The marker text is assembled so this module's own source
                # never matches the marker regex when reprolint scans itself.
                syntax = "# repro-lint: " + "disable=RPLxxx — <reason>"
                malformed.append(
                    (lineno, f"suppression is missing a reason (use {syntax!r})")
                )
            elif bad:
                malformed.append(
                    (lineno, f"suppression names invalid rule id(s) {sorted(bad)}")
                )
            else:
                ids = set(listed)
        if stripped.startswith("#"):
            # A standalone comment line: carry the ids forward to the next
            # code line (comments may be stacked).
            if ids:
                pending.append((lineno, ids))
            continue
        if not stripped:
            continue
        # A code line: it receives any trailing suppression plus whatever
        # standalone comments queued immediately above it.
        if ids:
            by_line.setdefault(lineno, set()).update(ids)
        for _, queued in pending:
            by_line.setdefault(lineno, set()).update(queued)
        pending.clear()
    return by_line, malformed
