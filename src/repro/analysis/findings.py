"""The finding datatype shared by every reprolint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is always the project-root-relative POSIX path, so findings are
    stable across machines and the JSON reporter output is byte-for-byte
    reproducible for the same tree.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    #: Short machine-readable slug of the offending construct (a dotted name,
    #: an attribute, an enum member) for grep-ability in JSON output.
    symbol: str = ""

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class Report:
    """The outcome of one analyzer run."""

    findings: list = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    rules_enabled: list = field(default_factory=list)
    paths: list = field(default_factory=list)
    #: CacheStats when the run used the incremental cache, else None.
    #: Hit/miss detail never enters the payload (see cache module docstring);
    #: reporters only expose whether caching was on.
    cache_stats: object = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        """Post-suppression finding counts per rule, zeros included for
        every enabled rule (sorted for deterministic JSON)."""
        counts = {rule_id: 0 for rule_id in self.rules_enabled}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))
