"""The rule registry.

Rules self-register at import time via :func:`register`; the engine and the
CLI discover them through :func:`all_rules`.  Two framework pseudo-rules
(RPL001 parse errors, RPL002 malformed suppressions) are emitted by the
engine itself and listed here so ``--list-rules`` and the JSON reporter show
the complete catalog.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.analysis.suppressions import BAD_SUPPRESSION_RULE, PARSE_ERROR_RULE

#: Framework-emitted rule ids → one-line description.
FRAMEWORK_RULES: Dict[str, str] = {
    PARSE_ERROR_RULE: "file does not parse as Python",
    BAD_SUPPRESSION_RULE: "suppression comment without a reason or with an "
                          "invalid rule id",
}

_REGISTRY: Dict[str, Type] = {}


def register(rule_cls: Type) -> Type:
    """Class decorator adding a rule to the global registry."""
    rule_id = getattr(rule_cls, "rule_id", None)
    if not rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY or rule_id in FRAMEWORK_RULES:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type]:
    """Registered rule classes keyed by id, in id order."""
    # Importing the rules package populates the registry exactly once.
    import repro.analysis.rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))
