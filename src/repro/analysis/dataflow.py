"""Generic forward dataflow over :mod:`repro.analysis.cfg` graphs.

A flow rule supplies a :class:`ForwardAnalysis`: an initial state for the
function entry, a pure ``transfer(elem, state) -> state`` over one block
element, and a ``join`` merging the out-states of a block's predecessors.
:func:`run_forward` iterates a worklist in reverse postorder until the
block in-states stop changing (states must implement ``==``); the usual
termination argument applies — transfer and join must be monotone over a
finite-height lattice, which every analysis in this package satisfies by
building states from frozensets of program facts.

Two ready-made pieces ship here:

* :class:`ReachingDefinitions` — name → frozenset of definition sites
  (1-based line numbers), the textbook may-analysis.  Used by the CFG unit
  tests and available to future rules.
* The RPL204 staleness lattice lives with its rule
  (``rules/staleness.py``); it follows the same protocol.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.cfg import CFG


class ForwardAnalysis:
    """Protocol for a forward may/must analysis (subclass and override)."""

    def initial_state(self):
        raise NotImplementedError

    def transfer(self, elem: ast.AST, state):
        raise NotImplementedError

    def join(self, left, right):
        raise NotImplementedError


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> Dict[int, object]:
    """Fixpoint in-states per block id (unreachable blocks are absent)."""
    in_states: Dict[int, object] = {cfg.entry: analysis.initial_state()}
    out_states: Dict[int, object] = {}
    order = cfg.rpo()
    position = {block_id: index for index, block_id in enumerate(order)}
    worklist = deque(order)
    queued = set(order)
    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        if block_id == cfg.entry:
            state = in_states[cfg.entry]
        else:
            merged = None
            for pred in block.preds:
                if pred not in out_states:
                    continue
                merged = (
                    out_states[pred]
                    if merged is None
                    else analysis.join(merged, out_states[pred])
                )
            if merged is None:
                continue  # not yet reachable
            in_states[block_id] = state = merged
        for elem in block.elems:
            state = analysis.transfer(elem, state)
        if block_id in out_states and out_states[block_id] == state:
            continue
        out_states[block_id] = state
        for succ in block.succs:
            if succ in position and succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return in_states


# --------------------------------------------------------------------- #
# Reaching definitions
# --------------------------------------------------------------------- #

#: name → frozenset of definition lines.
ReachState = Tuple[Tuple[str, FrozenSet[int]], ...]


def _bound_names(target: ast.AST):
    """Names bound by an assignment target (tuples/lists/stars unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


class ReachingDefinitions(ForwardAnalysis):
    """May-analysis: which definition lines of each local reach a point."""

    def __init__(self, fn: ast.AST):
        self.fn = fn

    def initial_state(self) -> ReachState:
        params = []
        args = self.fn.args
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + ([args.vararg] if args.vararg else [])
            + list(args.kwonlyargs)
            + ([args.kwarg] if args.kwarg else [])
        ):
            params.append((arg.arg, frozenset({self.fn.lineno})))
        return tuple(sorted(params))

    def join(self, left: ReachState, right: ReachState) -> ReachState:
        merged: Dict[str, FrozenSet[int]] = dict(left)
        for name, sites in right:
            merged[name] = merged.get(name, frozenset()) | sites
        return tuple(sorted(merged.items()))

    def transfer(self, elem: ast.AST, state: ReachState) -> ReachState:
        defined = []
        if isinstance(elem, ast.Assign):
            for target in elem.targets:
                defined.extend(_bound_names(target))
        elif isinstance(elem, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(elem.target, ast.Name):
                defined.append(elem.target.id)
        elif isinstance(elem, (ast.For, ast.AsyncFor)):
            defined.extend(_bound_names(elem.target))
        elif isinstance(elem, (ast.With, ast.AsyncWith)):
            for item in elem.items:
                if item.optional_vars is not None:
                    defined.extend(_bound_names(item.optional_vars))
        elif isinstance(elem, ast.ExceptHandler):
            if elem.name:
                defined.append(elem.name)
        elif isinstance(elem, ast.Delete):
            removed = {t.id for t in elem.targets if isinstance(t, ast.Name)}
            if removed:
                return tuple(
                    (name, sites) for name, sites in state if name not in removed
                )
        if not defined:
            return state
        site = frozenset({getattr(elem, "lineno", 0)})
        mapping = dict(state)
        for name in defined:
            mapping[name] = site  # strong update: this def kills prior ones
        return tuple(sorted(mapping.items()))


def defs_at(state: Optional[ReachState], name: str) -> FrozenSet[int]:
    """The definition lines of ``name`` in a state (empty if unknown)."""
    if state is None:
        return frozenset()
    for key, sites in state:
        if key == name:
            return sites
    return frozenset()
