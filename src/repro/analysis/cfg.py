"""Intra-procedural control-flow graphs over Python function bodies.

The flow-sensitive rules (RPL204's shadow-staleness ordering) and the
reaching-definitions analysis need more than ``ast.walk`` order: whether a
mutation *can reach* a read depends on branches, loop back-edges and
exception routing.  :func:`build_cfg` lowers one ``ast.FunctionDef`` into a
graph of basic blocks whose elements are the function's statements (and,
for decomposed conditions, bare test expressions) in evaluation order.

Shape of the graph:

* ``if``/``while``/``for`` produce the usual diamond/loop shapes, with the
  loop head owning the back-edge and ``break``/``continue`` edges routed to
  the innermost loop's after/head blocks.
* Boolean short-circuit is explicit: ``if a and b:`` evaluates ``a`` in its
  own block with an edge that skips ``b`` entirely on the false arm (and
  symmetrically for ``or``), so a dataflow fact established only by ``b``'s
  evaluation does not leak onto the short-circuit path.
* ``try`` is conservative: every block of the protected body gets an edge
  to every handler entry ("an exception may occur anywhere"), the ``else``
  body runs on normal completion, and a ``finally`` body is entered from
  normal and abrupt exits alike.  A ``return``/``break``/``continue``/
  ``raise`` under a pending ``finally`` routes through the finally entry,
  and the finally exit fans out only to the abrupt targets actually
  recorded (plus fall-through) — no spurious exits are invented.
* ``with`` bodies are inline (``__exit__`` is not modeled as a handler);
  an early ``return`` inside ``with`` flows to the function exit like any
  other return.
* Nested function/class definitions are opaque single elements — the
  analysis is strictly intra-procedural.

The builder never executes or imports the analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Statement types appended to the current block with no control effect.
_LINEAR_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Delete,
    ast.Assert,
    ast.Pass,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


@dataclass
class Block:
    """One basic block: elements in evaluation order plus edge lists."""

    id: int
    elems: List[ast.AST] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """The control-flow graph of one function."""

    function: ast.AST
    blocks: Dict[int, Block]
    entry: int
    exit: int

    def block_of(self, node: ast.AST) -> Optional[Block]:
        """The block holding ``node`` as a direct element, if any."""
        for block in self.blocks.values():
            for elem in block.elems:
                if elem is node:
                    return block
        return None

    def rpo(self) -> List[int]:
        """Block ids in reverse postorder from the entry (stable, iterative)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            block_id, child = stack[-1]
            succs = self.blocks[block_id].succs
            if child < len(succs):
                stack[-1] = (block_id, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(block_id)
        order.reverse()
        return order


@dataclass
class _FinallyFrame:
    """A pending ``finally`` body: its entry plus recorded abrupt routes."""

    entry: int
    #: ("return"/"raise", None) and ("break"/"continue", target_block_id).
    abrupt: Set[Tuple[str, Optional[int]]] = field(default_factory=set)


class _Builder:
    def __init__(self, fn: ast.AST):
        self.fn = fn
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.current: Optional[int] = self.entry
        #: (continue_target, break_target) per enclosing loop.
        self.loops: List[Tuple[int, int]] = []
        #: Where an exception raised "here" may land (handler entries).
        self.exc_targets: List[List[int]] = []
        #: Pending finally bodies, innermost last.
        self.finallies: List[_FinallyFrame] = []

    # ------------------------------------------------------------------ #
    # Graph primitives
    # ------------------------------------------------------------------ #
    def _new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block.id

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def _append(self, node: ast.AST) -> None:
        if self.current is not None:
            self.blocks[self.current].elems.append(node)
            self._note_exceptional(self.current)

    def _note_exceptional(self, block_id: int) -> None:
        """Inside a protected region, any block may jump to each handler."""
        if self.exc_targets:
            for handler_entry in self.exc_targets[-1]:
                self._edge(block_id, handler_entry)

    # ------------------------------------------------------------------ #
    # Abrupt exits
    # ------------------------------------------------------------------ #
    def _abrupt(self, kind: str, target: Optional[int]) -> None:
        """Route return/raise/break/continue, honoring pending finallys."""
        if self.current is None:
            return
        if self.finallies:
            frame = self.finallies[-1]
            frame.abrupt.add((kind, target))
            self._edge(self.current, frame.entry)
        elif kind in ("return", "raise"):
            self._edge(self.current, self.exit)
        elif target is not None:
            self._edge(self.current, target)
        self.current = None

    # ------------------------------------------------------------------ #
    # Statement dispatch
    # ------------------------------------------------------------------ #
    def build(self) -> CFG:
        self.visit_body(self.fn.body)
        if self.current is not None:
            self._edge(self.current, self.exit)
        return CFG(
            function=self.fn, blocks=self.blocks, entry=self.entry, exit=self.exit
        )

    def visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if self.current is None:
                break  # unreachable code after return/raise/break
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _LINEAR_STMTS):
            self._append(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._abrupt("return", None)
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            self._abrupt("raise", None)
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            self._abrupt("break", self.loops[-1][1] if self.loops else None)
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            self._abrupt("continue", self.loops[-1][0] if self.loops else None)
        elif isinstance(stmt, ast.If):
            self.visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self.visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self.visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.visit_with(stmt)
        else:
            # FunctionDef/ClassDef/Match/...: opaque single element.
            self._append(stmt)

    # ------------------------------------------------------------------ #
    # Conditions with short-circuit decomposition
    # ------------------------------------------------------------------ #
    def visit_test(self, test: ast.expr, on_true: int, on_false: int) -> None:
        """Lower ``test`` into condition blocks ending in true/false edges."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values[:-1]:
                nxt = self._new_block()
                self.visit_test(value, nxt, on_false)
                self.current = nxt
            self.visit_test(test.values[-1], on_true, on_false)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            for value in test.values[:-1]:
                nxt = self._new_block()
                self.visit_test(value, on_true, nxt)
                self.current = nxt
            self.visit_test(test.values[-1], on_true, on_false)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.visit_test(test.operand, on_false, on_true)
        else:
            self._append(test)
            if self.current is not None:
                self._edge(self.current, on_true)
                self._edge(self.current, on_false)
            self.current = None

    def visit_if(self, stmt: ast.If) -> None:
        then_entry = self._new_block()
        else_entry = self._new_block()
        after = self._new_block()
        self.visit_test(stmt.test, then_entry, else_entry)
        self.current = then_entry
        self.visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, after)
        self.current = else_entry
        self.visit_body(stmt.orelse)
        if self.current is not None:
            self._edge(self.current, after)
        self.current = after

    # ------------------------------------------------------------------ #
    # Loops
    # ------------------------------------------------------------------ #
    def visit_while(self, stmt: ast.While) -> None:
        head = self._new_block()
        body_entry = self._new_block()
        orelse_entry = self._new_block()
        after = self._new_block()
        if self.current is not None:
            self._edge(self.current, head)
        self.current = head
        self.visit_test(stmt.test, body_entry, orelse_entry)
        self.loops.append((head, after))
        self.current = body_entry
        self.visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, head)  # back-edge
        self.loops.pop()
        self.current = orelse_entry
        self.visit_body(stmt.orelse)
        if self.current is not None:
            self._edge(self.current, after)
        self.current = after

    def visit_for(self, stmt) -> None:
        head = self._new_block()
        body_entry = self._new_block()
        orelse_entry = self._new_block()
        after = self._new_block()
        # Iterator construction happens once, before the head.
        self._append(stmt.iter)
        if self.current is not None:
            self._edge(self.current, head)
        # The head element is the For node itself: each arrival re-binds the
        # loop target (transfer functions treat it as target = next(iter)).
        self.current = head
        self._append(stmt)
        self._edge(head, body_entry)
        self._edge(head, orelse_entry)
        self.loops.append((head, after))
        self.current = body_entry
        self.visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, head)  # back-edge
        self.loops.pop()
        self.current = orelse_entry
        self.visit_body(stmt.orelse)
        if self.current is not None:
            self._edge(self.current, after)
        self.current = after

    # ------------------------------------------------------------------ #
    # try / except / else / finally
    # ------------------------------------------------------------------ #
    def visit_try(self, stmt: ast.Try) -> None:
        after = self._new_block()
        handler_entries = [self._new_block() for _ in stmt.handlers]
        fin_entry = self._new_block() if stmt.finalbody else None
        frame: Optional[_FinallyFrame] = None
        if fin_entry is not None:
            frame = _FinallyFrame(entry=fin_entry)
            self.finallies.append(frame)

        # Protected body: every block inside may divert to every handler
        # (or straight to the finally when there is no matching handler).
        body_entry = self._new_block()
        if self.current is not None:
            self._edge(self.current, body_entry)
        self.current = body_entry
        exc_landing = handler_entries if handler_entries else (
            [fin_entry] if fin_entry is not None else []
        )
        self.exc_targets.append(exc_landing)
        self._note_exceptional(body_entry)
        self.visit_body(stmt.body)
        self.exc_targets.pop()
        body_exit = self.current

        # else runs on normal body completion.
        if stmt.orelse:
            self.current = body_exit
            if self.current is not None:
                else_entry = self._new_block()
                self._edge(self.current, else_entry)
                self.current = else_entry
                self.visit_body(stmt.orelse)
            body_exit = self.current

        normal_exit = fin_entry if fin_entry is not None else after
        if body_exit is not None:
            self._edge(body_exit, normal_exit)

        # Handlers: an unmatched/re-raised exception continues outward, so a
        # handler entry also routes to the finally (or the outer context).
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            self._append(handler)  # binds `except E as name`
            self.visit_body(handler.body)
            if self.current is not None:
                self._edge(self.current, normal_exit)
            if fin_entry is not None:
                self._edge(entry, fin_entry)

        # The finally body runs once per route; its exit fans out to the
        # recorded abrupt targets plus normal fall-through.
        if fin_entry is not None and frame is not None:
            self.finallies.pop()
            self.current = fin_entry
            self.visit_body(stmt.finalbody)
            fin_exit = self.current
            if fin_exit is not None:
                self._edge(fin_exit, after)
                for kind, target in sorted(
                    frame.abrupt, key=lambda item: (item[0], item[1] or -1)
                ):
                    if kind in ("return", "raise"):
                        # Chain outward through the next pending finally.
                        if self.finallies:
                            outer = self.finallies[-1]
                            outer.abrupt.add((kind, None))
                            self._edge(fin_exit, outer.entry)
                        else:
                            self._edge(fin_exit, self.exit)
                    elif target is not None:
                        self._edge(fin_exit, target)
        self.current = after

    # ------------------------------------------------------------------ #
    # with
    # ------------------------------------------------------------------ #
    def visit_with(self, stmt) -> None:
        # Context-manager construction and the optional `as name` binding are
        # one element; the body then runs inline.
        self._append(stmt)
        self.visit_body(stmt.body)


def build_cfg(fn: ast.AST) -> CFG:
    """The control-flow graph of one ``FunctionDef``/``AsyncFunctionDef``."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg expects a function node, got {type(fn).__name__}")
    return _Builder(fn).build()
